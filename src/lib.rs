//! # onepass — scalable one-pass analytics using MapReduce
//!
//! A Rust reproduction of *"Towards Scalable One-Pass Analytics Using
//! MapReduce"* (Mazur, Li, Diao, Shenoy; IPPS 2011): a MapReduce engine
//! whose group-by can run either Hadoop's sort-merge way or the paper's
//! hash-based incremental way, plus a discrete-event cluster simulator
//! that regenerates the paper's 10-node study.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use onepass::prelude::*;
//!
//! // Word count, run through the paper's one-pass configuration.
//! fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
//!     for w in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
//!         out.emit(w, &1u64.to_le_bytes());
//!     }
//! }
//!
//! let job = JobSpec::builder("wordcount")
//!     .map_fn(Arc::new(word_map))
//!     .aggregate(Arc::new(SumAgg))
//!     .reducers(2)
//!     .preset_onepass()
//!     .build()
//!     .unwrap();
//!
//! let splits = vec![Split::new(vec![b"a b a".to_vec(), b"b c".to_vec()])];
//! let report = Engine::new().run(&job, splits).unwrap();
//! assert_eq!(report.groups_out, 3); // a, b, c
//! ```
//!
//! ## Crate map
//!
//! * [`core`] — byte-array KV buffers, hash library, memory budgets,
//!   spill-file management, metrics.
//! * [`sketch`] — Space-Saving / Misra-Gries / Lossy Counting
//!   frequent-items summaries.
//! * [`groupby`] — sort-merge, hybrid hash, incremental hash, and
//!   frequent-key hash group-by operators.
//! * [`runtime`] — the multithreaded MapReduce engine (both execution
//!   paths, pull/push shuffle, streaming and windowed sessions).
//! * [`simcluster`] — the deterministic cluster simulator behind the
//!   paper-scale experiments.
//! * [`workloads`] — click-stream / web-document generators and the four
//!   benchmark workloads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use onepass_core as core;
pub use onepass_groupby as groupby;
pub use onepass_runtime as runtime;
pub use onepass_simcluster as simcluster;
pub use onepass_sketch as sketch;
pub use onepass_workloads as workloads;

/// The commonly-used API surface in one import.
pub mod prelude {
    pub use onepass_core::fault::{FaultInjector, FaultPlan};
    pub use onepass_core::governor::{policy_by_name, MemoryGovernor, MemoryPolicy, SpillPolicy};
    pub use onepass_core::hashlib::HashFamily;
    pub use onepass_core::memory::MemoryBudget;
    pub use onepass_core::metrics::Phase;
    pub use onepass_core::obs::{
        snapshots_series, MetricsRegistry, MetricsSampler, MetricsServer, MetricsSnapshot,
        SampleValue,
    };
    pub use onepass_core::trace::{chrome_trace_json, complete_spans, Tracer, Track};
    pub use onepass_groupby::{
        Aggregator, CountAgg, EmitKind, GroupBy, ListAgg, MaxAgg, Sink, SumAgg,
    };
    pub use onepass_runtime::codec::{decode_pair, encode_pair};
    pub use onepass_runtime::map_task::Split;
    pub use onepass_runtime::serve::{
        dump_final_answers, AdmissionConfig, DlqConfig, Frontend, QueryCatalog, ServeConfig,
        Server, StreamingQuery, TenantEvent, TenantHandle, TenantSession,
    };
    pub use onepass_runtime::stream::{SessionOptions, StreamSession};
    pub use onepass_runtime::window::{WindowConfig, WindowedSession};
    pub use onepass_runtime::{
        CacheConfig, CollectOutput, Combine, DatasetCache, Engine, EngineConfig,
        EngineConfigBuilder, InNodeCombine, IterativePlan, JobRegistry, JobSpec, MapEmitter, MapFn,
        MapOutputPersistence, MapSideMode, PairMap, PhaseBreakdown, Plan, PlanBuilder, PlanConfig,
        PlanMode, PlanReport, ReduceBackend, RetryPolicy, RoundContext, ShuffleMode,
        SpeculationConfig, SpillBackend, StageId, StageReport, Transport, WorkerOptions,
    };
    pub use onepass_simcluster::{
        run_sim_job, run_sim_job_traced, ClusterSpec, SimFaults, SimJobSpec, StorageConfig,
        SystemType, WorkloadProfile,
    };
    pub use onepass_sketch::{FrequentItems, SpaceSaving};
}
