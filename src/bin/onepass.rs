//! `onepass` — command-line front end: run the paper's workloads on the
//! real engine or simulate them at cluster scale.
//!
//! ```text
//! onepass run <workload> [--system hadoop|hop|onepass] [--records N]
//!              [--reducers R] [--budget-kb K]
//!              [--hash-family multiply-shift|tabulation]
//!              [--in-node-combine on|off]
//!              [--mem-policy static|largest-consumer|largest-bucket|coldest-keys|round-robin]
//!              [--mem-high-water F]
//!              [--retries N] [--backoff-ms MS] [--speculate]
//!              [--kill-map T] [--kill-reduce P] [--straggle-map T:MS]
//!              [--fault-seed S] [--workers ADDR,ADDR,...]
//!              [--trace-out trace.json] [--report-jsonl report.jsonl]
//! onepass worker --listen ADDR [--slots N] [--die-after-maps N]
//! onepass plan <top-k|df-histogram> [--pipeline|--barrier] [--records N]
//!              [--reducers R] [--k K]
//!              [--hash-family multiply-shift|tabulation]
//!              [--in-node-combine on|off]
//!              [--mem-policy <policy>] [--mem-high-water F]
//!              [--trace-out trace.json] [--report-jsonl report.jsonl]
//! onepass sim <workload> [--system hadoop|hop|onepass]
//!              [--storage single-hdd|hdd+ssd|separated] [--scale F]
//!              [--adaptive-memory]
//!              [--kill-map T] [--kill-reduce P] [--straggle-map T:X]
//!              [--speculate]
//!              [--trace-out trace.json] [--report-jsonl report.jsonl]
//! onepass workloads
//! ```
//!
//! `onepass plan` runs a multi-stage query plan: `top-k` (count clicks
//! per URL, then keep the k most-clicked) or `df-histogram` (build the
//! inverted index, then histogram document frequencies). The default
//! `--pipeline` mode streams stage outputs downstream as they finish
//! so the plan reports a time-to-first-answer well before the total
//! wall clock; `--barrier` materializes each stage before the next
//! starts, the classic multi-job behaviour.
//!
//! `onepass plan pagerank|kmeans` run iterative multi-round loops whose
//! state rides the in-memory dataset cache between rounds (`--rounds`
//! caps the loop, `--converge-eps` stops early once no value moves by
//! more than the threshold); `onepass plan join` runs the hybrid-hash
//! clicks ⋈ users equi-join, probing click records against a cached,
//! partition-aligned user table (`--users` sizes the dimension table).
//!
//! `--trace-out` writes a Chrome trace-event JSON file (open it in
//! Perfetto or `chrome://tracing`); real and simulated runs share one
//! schema, so their timelines render identically. `--report-jsonl`
//! writes a machine-readable job report, one JSON object per line.
//!
//! Fault injection: `--kill-map T` / `--kill-reduce P` make the first
//! attempt of that task fail mid-run (the driver retries it);
//! `--straggle-map T:X` slows the task (a delay in ms on the engine, a
//! compute multiplier in the sim) so `--speculate` has something to
//! race; `--retries` defaults to 3 whenever a fault flag is present.
//!
//! Hashing & combining: `--hash-family` selects the engine-wide hash
//! family (multiply-shift, the default, or tabulation) used by the
//! partitioner and every hash group-by; `--in-node-combine off` disables
//! the worker-scoped combine table that map tasks on the same executor
//! worker drain into before shuffle (it is on by default on every
//! combiner-friendly hash-combine job).
//!
//! Memory governance: `--mem-policy <policy>` pools the reduce budgets
//! under the adaptive governor with the named spill policy (`static`,
//! the default, keeps fixed private budgets); `--mem-high-water F` sets
//! the pool fraction above which map-side pushes backpressure. The sim
//! mirrors the governor with `--adaptive-memory`.
//!
//! Live metrics: `--metrics-addr HOST:PORT` serves Prometheus text
//! exposition over HTTP for the duration of the run (add
//! `--metrics-linger-ms MS` to keep serving briefly after completion so
//! a scraper can catch the final state); `--metrics-out FILE` streams
//! periodic whole-registry snapshots as JSONL. `onepass metrics-validate
//! FILE` checks such a file against the snapshot schema — CI uses it.
//! `onepass sim` publishes the same metric names labeled `source="sim"`
//! so predicted and measured runs join on metric name.
//!
//! Distributed mode: `onepass worker --listen ADDR` starts a worker
//! process serving every benchmark workload by name; `onepass run
//! <workload> --workers a:1,b:2` places that run's map and reduce tasks
//! on those workers over the framed-TCP transport. Killing a worker
//! mid-job (`kill -9`, or `--die-after-maps N` for a scripted drill) is
//! survived: the coordinator replays lost work on survivors and the
//! output stays byte-identical to a single-process run.
//!
//! Workloads: sessionization, page-frequency, per-user-count,
//! inverted-index.

use std::time::Duration;

use onepass::prelude::*;
use onepass::runtime::JobSpecBuilder;
use onepass_core::config::{fmt_bytes, fmt_secs};
use onepass_workloads::{
    inverted_index, join as join_wl, kmeans, make_splits, page_frequency, pagerank,
    per_user_count, sessionization, top_k, ClickGen, ClickGenConfig, DocGen, DocGenConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         onepass run <workload> [--system hadoop|hop|onepass] [--records N] [--reducers R] [--budget-kb K]\n  \
         \x20           [--hash-family multiply-shift|tabulation] [--in-node-combine on|off]\n  \
         \x20           [--mem-policy static|largest-consumer|largest-bucket|coldest-keys|round-robin] [--mem-high-water F]\n  \
         \x20           [--retries N] [--backoff-ms MS] [--speculate] [--kill-map T] [--kill-reduce P]\n  \
         \x20           [--straggle-map T:MS] [--fault-seed S] [--workers ADDR,ADDR,...]\n  \
         \x20           [--trace-out trace.json] [--report-jsonl report.jsonl] [--dump-out FILE]\n  \
         onepass worker --listen ADDR [--slots N] [--die-after-maps N]\n  \
         onepass plan <top-k|df-histogram|pagerank|kmeans|join> [--pipeline|--barrier] [--records N] [--reducers R] [--k K]\n  \
         \x20           [--rounds N] [--converge-eps E] [--users N]\n  \
         \x20           [--hash-family multiply-shift|tabulation] [--in-node-combine on|off]\n  \
         \x20           [--mem-policy <policy>] [--mem-high-water F] [--trace-out trace.json] [--report-jsonl report.jsonl]\n  \
         onepass sim <workload> [--system hadoop|hop|onepass] [--storage single-hdd|hdd+ssd|separated] [--scale F]\n  \
         \x20           [--adaptive-memory] [--kill-map T] [--kill-reduce P] [--straggle-map T:FACTOR] [--speculate]\n  \
         \x20           [--trace-out trace.json] [--report-jsonl report.jsonl]\n  \
         onepass serve [--listen HOST:PORT] [--records N] [--doc-records N] [--batch B]\n  \
         \x20           [--pool-mb MB] [--mem-policy <policy>] [--mem-high-water F] [--max-tenants N]\n  \
         \x20           [--shards S] [--reducers R] [--k K] [--early-every N] [--dlq-retries R]\n  \
         \x20           [--await-tenants N] [--await-timeout-ms MS] [--hash-family F]\n  \
         onepass loadgen --server HOST:PORT --tenants N [--queries a,b,...] [--zipf S] [--seed S]\n  \
         \x20           [--dump-dir DIR] [--report FILE]\n  \
         onepass metrics-validate <snapshots.jsonl>\n  \
         onepass workloads\n\n\
         run/plan/sim/serve also take [--metrics-addr HOST:PORT] [--metrics-out FILE] [--metrics-linger-ms MS]\n\
         plan also takes [--dump-out FILE]\n\n\
         workloads: sessionization | page-frequency | per-user-count | inverted-index"
    );
    std::process::exit(2);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1).cloned())
}

/// A value-less boolean switch (`--speculate`).
fn switch(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == &format!("--{name}"))
}

/// Parse a `TASK:VALUE` pair (e.g. `--straggle-map 0:50`).
fn task_value(spec: &str) -> Option<(usize, f64)> {
    let (t, v) = spec.split_once(':')?;
    Some((t.parse().ok()?, v.parse().ok()?))
}

fn hash_family_flag(args: &[String]) -> HashFamily {
    match flag(args, "hash-family") {
        None => HashFamily::default(),
        Some(v) => HashFamily::parse(&v).unwrap_or_else(|| {
            eprintln!("unknown --hash-family {v:?} (multiply-shift | tabulation)");
            usage();
        }),
    }
}

fn in_node_flag(args: &[String]) -> InNodeCombine {
    match flag(args, "in-node-combine") {
        None => InNodeCombine::default(),
        Some(v) => InNodeCombine::parse(&v).unwrap_or_else(|| {
            eprintln!("unknown --in-node-combine {v:?} (on | off)");
            usage();
        }),
    }
}

/// Live-metrics plumbing shared by `run`, `plan`, and `sim`: a registry
/// plus the exporters the flags asked for. `None` when no metrics flag
/// is present — the engine then skips every probe site.
struct MetricsRig {
    registry: MetricsRegistry,
    sampler: Option<MetricsSampler>,
    server: Option<MetricsServer>,
    out_path: Option<String>,
    linger: Duration,
}

impl MetricsRig {
    fn from_args(args: &[String]) -> Option<MetricsRig> {
        let addr = flag(args, "metrics-addr");
        let out_path = flag(args, "metrics-out");
        if addr.is_none() && out_path.is_none() {
            return None;
        }
        let linger: u64 = flag(args, "metrics-linger-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let registry = MetricsRegistry::new();
        let server = addr.map(|a| {
            let s = MetricsServer::serve(registry.clone(), &a).expect("bind --metrics-addr");
            eprintln!("serving metrics on http://{}/metrics", s.local_addr());
            s
        });
        let sampler = out_path.as_ref().map(|path| {
            let file = std::fs::File::create(path).expect("create --metrics-out file");
            MetricsSampler::start_streaming(
                registry.clone(),
                Duration::from_millis(100),
                Some(Box::new(std::io::BufWriter::new(file))),
            )
        });
        Some(MetricsRig {
            registry,
            sampler,
            server,
            out_path,
            linger: Duration::from_millis(linger),
        })
    }

    /// Flush the final snapshot, keep the HTTP endpoint up for the
    /// requested linger, then shut everything down.
    fn finish(self) {
        if let Some(sampler) = self.sampler {
            sampler.stop();
            if let Some(path) = &self.out_path {
                eprintln!("wrote metrics snapshots to {path}");
            }
        }
        if self.server.is_some() && !self.linger.is_zero() {
            std::thread::sleep(self.linger);
        }
    }
}

/// `onepass metrics-validate FILE` — check every line of a
/// `--metrics-out` file against the snapshot schema. Exits nonzero (with
/// the first offending line) on any violation; prints a summary on
/// success.
fn cmd_metrics_validate(args: &[String]) {
    use onepass_core::json::Json;
    let path = args.first().cloned().unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let fail = |line_no: usize, why: &str| -> ! {
        eprintln!("{path}:{line_no}: {why}");
        std::process::exit(1);
    };
    let mut snapshots = 0usize;
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(doc) = Json::parse(line) else {
            fail(n, "not valid JSON");
        };
        if doc.get("type").and_then(Json::as_str) != Some("metrics") {
            fail(n, "missing \"type\":\"metrics\"");
        }
        if doc.get("at_s").and_then(Json::as_f64).is_none() {
            fail(n, "missing numeric at_s");
        }
        for section in ["counters", "gauges", "histograms"] {
            let Some(entries) = doc.get(section).and_then(Json::as_arr) else {
                fail(n, &format!("missing {section} array"));
            };
            for e in entries {
                if e.get("name").and_then(Json::as_str).is_none() {
                    fail(n, &format!("{section} entry without a name"));
                }
                if e.get("labels").is_none() {
                    fail(n, &format!("{section} entry without labels"));
                }
                let ok = match section {
                    "histograms" => ["count", "sum", "p50", "p95", "p99"]
                        .iter()
                        .all(|k| e.get(k).and_then(Json::as_f64).is_some()),
                    _ => e.get("value").and_then(Json::as_f64).is_some(),
                };
                if !ok {
                    fail(
                        n,
                        &format!("{section} entry with missing/non-numeric values"),
                    );
                }
                samples += 1;
            }
        }
        snapshots += 1;
    }
    if snapshots == 0 {
        eprintln!("{path}: no snapshots found");
        std::process::exit(1);
    }
    println!("{path}: {snapshots} snapshot(s), {samples} sample(s), schema ok");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("run") => cmd_run(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("metrics-validate") => cmd_metrics_validate(&args[1..]),
        Some("workloads") => {
            println!("sessionization    reorder click logs into user sessions (no combiner, heavy intermediate data)");
            println!("page-frequency    COUNT(*) GROUP BY url (combiner-friendly)");
            println!("per-user-count    COUNT(*) GROUP BY user");
            println!("inverted-index    word -> (doc, position) posting lists");
            println!("top-k             [plan] per-URL counts, then the k most-clicked URLs");
            println!("df-histogram      [plan] inverted index, then document-frequency histogram");
        }
        _ => usage(),
    }
}

fn job_builder(workload: &str) -> JobSpecBuilder {
    match workload {
        "sessionization" => sessionization::job(),
        "page-frequency" => page_frequency::job(),
        "per-user-count" => per_user_count::job(),
        "inverted-index" => inverted_index::job(),
        _ => usage(),
    }
}

/// `onepass worker --listen ADDR`: serve jobs to a coordinator. Every
/// benchmark workload is registered by name; the coordinator's `JobInit`
/// overlays its scalar knobs (reducers, map side, backend, budgets) onto
/// the registered spec, so one worker fleet serves any `onepass run
/// --workers` configuration of these workloads.
fn cmd_worker(args: &[String]) {
    let listen = flag(args, "listen").unwrap_or_else(|| usage());
    let slots: usize = flag(args, "slots")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    // Deterministic fault injection for recovery drills: exit the job
    // connection cold after N completed maps (the scripted stand-in for
    // `kill -9` mid-job).
    let die_after_maps = flag(args, "die-after-maps").and_then(|v| v.parse().ok());
    let registry = JobRegistry::new();
    for job in [
        sessionization::job,
        page_frequency::job,
        per_user_count::job,
        inverted_index::job,
    ] {
        registry.register_spec(job().build().expect("workload job is valid"));
    }
    let listener = std::net::TcpListener::bind(&listen)
        .unwrap_or_else(|e| panic!("cannot listen on {listen}: {e}"));
    // Print the *bound* address, not the requested one: `--listen
    // 127.0.0.1:0` picks an ephemeral port, and scripts parse this line
    // to find it (fixed ports collide on shared CI hosts).
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or(listen);
    eprintln!(
        "worker listening on {bound} ({slots} map slots; jobs: {})",
        registry.names().join(", ")
    );
    onepass::runtime::transport::worker::serve(
        listener,
        registry,
        WorkerOptions {
            map_slots: slots,
            die_after_maps,
        },
    )
    .expect("worker accept loop failed");
}

fn cmd_run(args: &[String]) {
    let workload = args.first().cloned().unwrap_or_else(|| usage());
    let system = flag(args, "system").unwrap_or_else(|| "onepass".into());
    let records: usize = flag(args, "records")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let reducers: usize = flag(args, "reducers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let budget_kb: usize = flag(args, "budget-kb")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64 * 1024);

    let hash_family = hash_family_flag(args);
    // --dump-out FILE: retain the final output pairs and write them,
    // sorted, to FILE — the hook the distributed smoke test diffs across
    // single-process and multi-worker runs.
    let dump_out = flag(args, "dump-out");
    let collect_mode = if dump_out.is_some() {
        CollectOutput::Collect
    } else {
        CollectOutput::Discard
    };
    let builder = job_builder(&workload)
        .reducers(reducers)
        .collect_mode(collect_mode)
        .reduce_budget_bytes(budget_kb * 1024)
        .partitioner(std::sync::Arc::new(
            onepass::runtime::job::HashPartitioner::with_family(hash_family),
        ));
    let job = match system.as_str() {
        "hadoop" => builder.preset_hadoop(),
        "hop" => builder.preset_hop(),
        "onepass" => builder.preset_onepass(),
        _ => usage(),
    }
    .build()
    .expect("valid job");

    let splits = if workload == "inverted-index" {
        let mut gen = DocGen::new(DocGenConfig::default());
        make_splits(gen.records(records / 100 + 1), records / 1600 + 1)
    } else {
        let mut gen = ClickGen::new(ClickGenConfig::default());
        make_splits(gen.text_records(records), records / 16 + 1)
    };
    let input_records: u64 = splits.iter().map(|s| s.records.len() as u64).sum();

    let trace_out = flag(args, "trace-out");
    let report_jsonl = flag(args, "report-jsonl");
    let tracer = if trace_out.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };

    // Fault-tolerance knobs: build a deterministic fault plan from the
    // kill/straggle flags (first attempt of the named task dies after a
    // handful of records), then retry/speculation policy around it.
    let mut faults = FaultPlan::new();
    if let Some(seed) = flag(args, "fault-seed").and_then(|v| v.parse().ok()) {
        faults = FaultPlan::seeded(seed, splits.len(), reducers);
    }
    if let Some(t) = flag(args, "kill-map").and_then(|v| v.parse().ok()) {
        faults = faults.fail_map(t, 0, 3);
    }
    if let Some(p) = flag(args, "kill-reduce").and_then(|v| v.parse().ok()) {
        faults = faults.fail_reduce(p, 0, 3);
    }
    if let Some((t, ms)) = flag(args, "straggle-map").as_deref().and_then(task_value) {
        faults = faults.straggle_map(t, 0, Duration::from_millis(ms as u64));
    }
    let retries: usize = flag(args, "retries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if faults.is_empty() { 1 } else { 3 });
    let backoff_ms: u64 = flag(args, "backoff-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let speculate = switch(args, "speculate");

    let memory_policy = match flag(args, "mem-policy").as_deref() {
        None | Some("static") => MemoryPolicy::Static,
        Some(name) => {
            let Some(policy) = policy_by_name(name) else {
                eprintln!("unknown --mem-policy {name:?}");
                usage();
            };
            let high_water = flag(args, "mem-high-water")
                .and_then(|v| v.parse().ok())
                .unwrap_or(onepass_core::governor::DEFAULT_HIGH_WATER);
            MemoryPolicy::Adaptive { policy, high_water }
        }
    };

    let mut config = EngineConfig::builder()
        .tracer(tracer.clone())
        .memory_policy(memory_policy)
        .hash_family(hash_family)
        .in_node_combine(in_node_flag(args))
        .retry(RetryPolicy {
            max_attempts: retries.max(1),
            backoff: Duration::from_millis(backoff_ms),
        });
    if speculate {
        config = config.speculation(SpeculationConfig::on());
    }
    if !faults.is_empty() {
        config = config.faults(faults);
    }
    let rig = MetricsRig::from_args(args);
    if let Some(r) = &rig {
        config = config.metrics(r.registry.clone());
    }
    // Distributed mode: place map/reduce tasks on `onepass worker`
    // processes instead of in-process threads.
    let workers: Vec<String> = flag(args, "workers")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default();
    if !workers.is_empty() {
        config = config.transport(Transport::Tcp { workers });
    }
    let config = config.build();

    eprintln!("running {workload} on the {system} configuration ({input_records} records)...");
    let report = Engine::with_config(config)
        .run(&job, splits)
        .expect("job failed");
    if let Some(r) = rig {
        r.finish();
    }

    if let Some(path) = &trace_out {
        std::fs::write(path, chrome_trace_json(&tracer.drain())).expect("write trace file");
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = &report_jsonl {
        std::fs::write(path, report.to_jsonl()).expect("write report file");
        eprintln!("wrote JSONL report to {path}");
    }
    if let Some(path) = &dump_out {
        let mut lines: Vec<String> = report
            .outputs
            .iter()
            .filter(|o| o.kind == onepass::groupby::EmitKind::Final)
            .map(|o| {
                let mut l = String::from_utf8_lossy(&o.key).into_owned();
                l.push('\t');
                for b in &o.value {
                    l.push_str(&format!("{b:02x}"));
                }
                l
            })
            .collect();
        lines.sort();
        lines.push(String::new()); // trailing newline
        std::fs::write(path, lines.join("\n")).expect("write output dump");
        eprintln!("wrote {} final pairs to {path}", lines.len() - 1);
    }

    println!("job:               {} [{}]", report.name, report.backend);
    println!("wall time:         {}", fmt_secs(report.wall.as_secs_f64()));
    println!(
        "cpu (compute):     {}",
        fmt_secs(report.total_compute_cpu().as_secs_f64())
    );
    println!("map tasks:         {}", report.map_tasks);
    if report.failed_attempts > 0 || report.speculative_launched > 0 {
        println!(
            "attempts:          {} map / {} reduce ({} failed, {} speculative, {} won)",
            report.map_attempts,
            report.reduce_attempts,
            report.failed_attempts,
            report.speculative_launched,
            report.speculative_wins
        );
    }
    println!("input:             {}", fmt_bytes(report.input_bytes));
    println!(
        "shuffled:          {} ({} records, intermediate/input {:.0}%)",
        fmt_bytes(report.shuffled_bytes),
        report.shuffled_records,
        report.intermediate_ratio() * 100.0
    );
    println!(
        "reduce spill:      {}",
        fmt_bytes(report.reduce_spill_traffic())
    );
    println!("groups out:        {}", report.groups_out);
    println!("early answers:     {}", report.early_emits);
    if let Some(t) = report.first_early_at {
        println!(
            "first early at:    {} ({}% of wall)",
            fmt_secs(t.as_secs_f64()),
            (t.as_secs_f64() / report.wall.as_secs_f64() * 100.0) as u32
        );
    }
    let sort = report.map_profile.time(Phase::MapSort);
    println!("map sort cpu:      {}", fmt_secs(sort.as_secs_f64()));
    if report.mem_rebalances > 0 || report.mem_sheds > 0 || report.backpressure_stalls > 0 {
        println!(
            "mem governance:    {} rebalances, {} sheds ({} requested), {} push stalls, pool peak {}",
            report.mem_rebalances,
            report.mem_sheds,
            fmt_bytes(report.mem_shed_bytes),
            report.backpressure_stalls,
            fmt_bytes(report.mem_pool_high_water)
        );
    }
}

/// The engine config every `plan` variant shares: tracer, memory
/// policy, hash family, in-node combine, optional metrics rig.
fn plan_engine_parts(args: &[String]) -> (EngineConfig, Option<MetricsRig>, Tracer, Option<String>) {
    let trace_out = flag(args, "trace-out");
    let tracer = if trace_out.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let memory_policy = match flag(args, "mem-policy").as_deref() {
        None | Some("static") => MemoryPolicy::Static,
        Some(name) => {
            let Some(policy) = policy_by_name(name) else {
                eprintln!("unknown --mem-policy {name:?}");
                usage();
            };
            let high_water = flag(args, "mem-high-water")
                .and_then(|v| v.parse().ok())
                .unwrap_or(onepass_core::governor::DEFAULT_HIGH_WATER);
            MemoryPolicy::Adaptive { policy, high_water }
        }
    };
    let mut config = EngineConfig::builder()
        .tracer(tracer.clone())
        .memory_policy(memory_policy)
        .hash_family(hash_family_flag(args))
        .in_node_combine(in_node_flag(args));
    let rig = MetricsRig::from_args(args);
    if let Some(r) = &rig {
        config = config.metrics(r.registry.clone());
    }
    (config.build(), rig, tracer, trace_out)
}

fn cmd_plan(args: &[String]) {
    let workload = args.first().cloned().unwrap_or_else(|| usage());
    let records: usize = flag(args, "records")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let reducers: usize = flag(args, "reducers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let k: usize = flag(args, "k").and_then(|v| v.parse().ok()).unwrap_or(10);
    let mode = if switch(args, "barrier") {
        PlanMode::Barrier
    } else {
        PlanMode::Pipelined
    };

    if matches!(workload.as_str(), "pagerank" | "kmeans" | "join") {
        return cmd_plan_iterative(&workload, args, records, reducers, mode);
    }

    let (plan, splits) = match workload.as_str() {
        "top-k" => {
            let mut gen = ClickGen::new(ClickGenConfig::default());
            (
                top_k::plan(k, reducers).expect("valid plan"),
                make_splits(gen.text_records(records), records / 16 + 1),
            )
        }
        "df-histogram" => {
            let mut gen = DocGen::new(DocGenConfig::default());
            (
                inverted_index::df_histogram_plan(reducers).expect("valid plan"),
                make_splits(gen.records(records / 100 + 1), records / 1600 + 1),
            )
        }
        _ => usage(),
    };
    let input_records: u64 = splits.iter().map(|s| s.records.len() as u64).sum();

    let report_jsonl = flag(args, "report-jsonl");
    let (config, rig, tracer, trace_out) = plan_engine_parts(args);

    eprintln!(
        "running the {workload} plan ({} stages, {} mode, {input_records} records)...",
        plan.stage_count(),
        mode.label()
    );
    let report = Engine::with_config(config)
        .run_plan(&plan, splits, &PlanConfig::new(mode))
        .expect("plan failed");
    if let Some(r) = rig {
        r.finish();
    }

    if let Some(path) = &trace_out {
        std::fs::write(path, chrome_trace_json(&tracer.drain())).expect("write trace file");
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = &report_jsonl {
        std::fs::write(path, report.to_jsonl()).expect("write report file");
        eprintln!("wrote JSONL report to {path}");
    }
    if let Some(path) = flag(args, "dump-out") {
        // Same format as `run --dump-out`: the sink stage's finals,
        // sorted, key<TAB>hex(value), trailing newline.
        let mut lines: Vec<String> = report
            .sorted_final_outputs()
            .iter()
            .map(|(key, value)| {
                let mut l = String::from_utf8_lossy(key).into_owned();
                l.push('\t');
                for b in value {
                    l.push_str(&format!("{b:02x}"));
                }
                l
            })
            .collect();
        lines.sort();
        lines.push(String::new());
        std::fs::write(&path, lines.join("\n")).expect("write output dump");
        eprintln!("wrote {} final pairs to {path}", lines.len() - 1);
    }

    println!("plan:              {workload} [{}]", report.mode);
    println!("wall time:         {}", fmt_secs(report.wall.as_secs_f64()));
    if let Some(t) = report.first_final_at {
        println!(
            "first answer at:   {} ({}% of wall)",
            fmt_secs(t.as_secs_f64()),
            (t.as_secs_f64() / report.wall.as_secs_f64() * 100.0) as u32
        );
    }
    for s in &report.stages {
        let sink = if s.is_sink { " -> output" } else { "" };
        println!(
            "stage {}:           {} [{}] done at {} ({} groups{}{})",
            s.stage,
            s.name,
            s.report.backend,
            fmt_secs(s.report.wall.as_secs_f64()),
            s.report.groups_out,
            if s.decode_errors > 0 {
                format!(", {} decode errors", s.decode_errors)
            } else {
                String::new()
            },
            sink
        );
    }
    if workload == "top-k" {
        if let Some((_, out)) = report.sorted_final_outputs().first() {
            println!("top {k} urls:");
            for (url, count) in top_k::decode_top_urls(out) {
                println!("  url {url:<8} {count} clicks");
            }
        }
    }
}

/// The iterative / two-input plans: PageRank and k-means as cached
/// multi-round loops, and the hybrid-hash clicks ⋈ users join probing a
/// cached build side.
fn cmd_plan_iterative(
    workload: &str,
    args: &[String],
    records: usize,
    reducers: usize,
    mode: PlanMode,
) {
    let rounds: usize = flag(args, "rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let eps: Option<u64> = flag(args, "converge-eps").and_then(|v| v.parse().ok());
    let (config, rig, tracer, trace_out) = plan_engine_parts(args);
    let engine = Engine::with_config(config);
    let mut cache = DatasetCache::new(CacheConfig::default());
    if let Some(r) = &rig {
        cache.attach_metrics(&r.registry);
    }
    cache.attach_tracer(&tracer);
    let plan_cfg = PlanConfig::new(mode);
    let started = std::time::Instant::now();

    let rounds_run = match workload {
        "pagerank" => {
            let nodes = records.max(1);
            let graph = pagerank::graph_records(pagerank::GraphConfig {
                nodes,
                ..Default::default()
            });
            let mut cfg = pagerank::PageRankConfig::new(nodes);
            cfg.rounds = rounds;
            cfg.eps = eps;
            cfg.reducers = reducers;
            cfg.plan = plan_cfg;
            eprintln!(
                "running cached pagerank ({nodes} nodes, ≤{rounds} rounds, {} mode)...",
                mode.label()
            );
            let (ranks, rounds_run) =
                pagerank::run_cached(&engine, &cache, &graph, &cfg).expect("pagerank failed");
            let mut top: Vec<(u64, u32)> = ranks.iter().map(|&(n, r)| (r, n)).collect();
            top.sort_unstable_by(|a, b| b.cmp(a));
            println!("top ranks (rank × 1e9):");
            for &(r, n) in top.iter().take(5) {
                println!("  node {n:<8} {r}");
            }
            rounds_run
        }
        "kmeans" => {
            let k: usize = flag(args, "k").and_then(|v| v.parse().ok()).unwrap_or(3);
            let points = pagerank_like_points(records, k);
            let mut cfg = kmeans::KMeansConfig::new(k);
            cfg.rounds = rounds;
            cfg.eps = eps.map(|e| e as i64).or(Some(0));
            cfg.reducers = reducers;
            cfg.plan = plan_cfg;
            eprintln!(
                "running cached k-means ({} points, k={k}, ≤{rounds} rounds, {} mode)...",
                records.max(k),
                mode.label()
            );
            let (centroids, rounds_run) =
                kmeans::run_cached(&engine, &cache, &points, &cfg).expect("k-means failed");
            println!("centroids:");
            for (cid, coords) in &centroids {
                println!("  c{cid}: {coords:?}");
            }
            rounds_run
        }
        "join" => {
            let users: usize = flag(args, "users")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1000);
            let mut gen = ClickGen::new(ClickGenConfig {
                users: users * 2, // half the clicks miss the dimension table
                ..Default::default()
            });
            let clicks = gen.text_records(records);
            eprintln!(
                "running hybrid-hash join ({records} clicks ⋈ {users} users, {} mode)...",
                mode.label()
            );
            let joined = join_wl::run_join(
                &engine,
                &cache,
                &join_wl::user_records(users),
                &clicks,
                reducers,
                8,
                &plan_cfg,
            )
            .expect("join failed");
            println!("joined rows:       {}", joined.len());
            for (uid, cc, url) in joined.iter().take(5) {
                println!("  user {uid:<6} {} url {url}", String::from_utf8_lossy(cc));
            }
            2 // build + probe
        }
        _ => unreachable!("gated by cmd_plan"),
    };

    let wall = started.elapsed();
    let stats = cache.stats();
    println!("plan:              {workload} [{}]", mode.label());
    println!("rounds run:        {rounds_run}");
    println!(
        "wall time:         {} ({} per round)",
        fmt_secs(wall.as_secs_f64()),
        fmt_secs(wall.as_secs_f64() / rounds_run.max(1) as f64)
    );
    println!(
        "cache:             {} resident, {} hits, {} evictions, {} spill reloads",
        fmt_bytes(stats.resident_bytes as u64),
        stats.hits,
        stats.evictions,
        stats.reloads
    );

    if let Some(r) = rig {
        r.finish();
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, chrome_trace_json(&tracer.drain())).expect("write trace file");
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = flag(args, "report-jsonl") {
        use onepass_core::json::fmt_f64;
        let line = format!(
            concat!(
                "{{\"type\":\"plan\",\"plan\":\"{workload}\",\"mode\":\"{mode}\",",
                "\"rounds\":{rounds},\"wall_s\":{wall},\"cache_resident_bytes\":{resident},",
                "\"cache_hits\":{hits},\"cache_evictions\":{evictions},",
                "\"cache_reloads\":{reloads}}}\n"
            ),
            workload = workload,
            mode = mode.label(),
            rounds = rounds_run,
            wall = fmt_f64(wall.as_secs_f64()),
            resident = stats.resident_bytes,
            hits = stats.hits,
            evictions = stats.evictions,
            reloads = stats.reloads,
        );
        std::fs::write(&path, line).expect("write report file");
        eprintln!("wrote JSONL report to {path}");
    }
}

/// Deterministic k-means input sized from `--records`.
fn pagerank_like_points(records: usize, k: usize) -> Vec<Vec<u8>> {
    kmeans::point_records(kmeans::PointsConfig {
        points: records.max(k),
        clusters: k,
        ..Default::default()
    })
}

fn cmd_sim(args: &[String]) {
    let workload_name = args.first().cloned().unwrap_or_else(|| usage());
    let system = match flag(args, "system").as_deref().unwrap_or("hadoop") {
        "hadoop" => SystemType::StockHadoop,
        "hop" => SystemType::Hop,
        "onepass" => SystemType::HashOnePass,
        _ => usage(),
    };
    let storage = match flag(args, "storage").as_deref().unwrap_or("single-hdd") {
        "single-hdd" => StorageConfig::SingleHdd,
        "hdd+ssd" => StorageConfig::HddPlusSsd,
        "separated" => StorageConfig::Separated,
        _ => usage(),
    };
    let scale: f64 = flag(args, "scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    let workload = match workload_name.as_str() {
        "sessionization" => WorkloadProfile::sessionization(),
        "page-frequency" => WorkloadProfile::page_frequency(),
        "per-user-count" => WorkloadProfile::per_user_count(),
        "inverted-index" => WorkloadProfile::inverted_index(),
        _ => usage(),
    }
    .scaled(scale);

    eprintln!(
        "simulating {workload_name} ({}x scale) as {} on {}...",
        scale,
        system.label(),
        storage.label()
    );
    let trace_out = flag(args, "trace-out");
    let report_jsonl = flag(args, "report-jsonl");
    let tracer = if trace_out.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let mut spec = SimJobSpec::new(system, ClusterSpec::paper_cluster(storage), workload);
    if let Some(t) = flag(args, "kill-map").and_then(|v| v.parse().ok()) {
        spec.faults.map_failures.push((t, 1));
    }
    if let Some(p) = flag(args, "kill-reduce").and_then(|v| v.parse().ok()) {
        spec.faults.reduce_failures.push((p, 1));
    }
    if let Some((t, f)) = flag(args, "straggle-map").as_deref().and_then(task_value) {
        spec.faults.map_stragglers.push((t, f));
    }
    spec.faults.speculation = switch(args, "speculate");
    spec.adaptive_memory = switch(args, "adaptive-memory");
    let rig = MetricsRig::from_args(args);
    let r = run_sim_job_traced(spec, tracer.clone());
    if let Some(rig) = rig {
        // Mirror the finished run into the registry under the engine's
        // metric names (labeled source="sim"), then export as requested.
        r.publish_metrics(&rig.registry);
        rig.finish();
    }

    if let Some(path) = &trace_out {
        std::fs::write(path, chrome_trace_json(&tracer.drain())).expect("write trace file");
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = &report_jsonl {
        std::fs::write(path, r.to_jsonl()).expect("write report file");
        eprintln!("wrote JSONL report to {path}");
    }

    println!("completion:        {}", fmt_secs(r.completion_secs));
    println!(
        "map tasks:         {} ({} reducers)",
        r.map_tasks, r.reduce_tasks
    );
    println!("input:             {:.1} GB", r.input_mb / 1024.0);
    println!("map output:        {:.1} GB", r.map_output_mb / 1024.0);
    println!(
        "reduce spill:      {:.1} GB (merge rewrites {:.1} GB)",
        r.reduce_spill_total_mb() / 1024.0,
        r.merge_written_mb / 1024.0
    );
    println!("intermediate/input: {:.0}%", r.intermediate_ratio() * 100.0);
    println!(
        "locality:          {:.0}% of map reads local",
        r.local_map_fraction * 100.0
    );
    println!(
        "mid-job cpu/iowait: {:.0}% / {:.0}%",
        r.mean_cpu_util(0.45, 0.62),
        r.mean_iowait(0.45, 0.62)
    );
    if r.snapshots > 0 {
        println!("snapshots:         {}", r.snapshots);
    }
    if r.faults.retries > 0 || r.faults.speculative_launched > 0 {
        println!(
            "attempts:          {} map ({} retried, {} speculative, {} won)",
            r.faults.map_attempts,
            r.faults.retries,
            r.faults.speculative_launched,
            r.faults.speculative_wins
        );
    }
}

/// `onepass serve`: the multi-tenant streaming front-end. Boots the
/// serving core over the standard catalog, binds the TCP front door
/// (port 0 picks an ephemeral port; the bound address is printed on a
/// parseable line), optionally waits for `--await-tenants` subscribers,
/// then streams the synthetic click + document feeds through every
/// tenant and closes. Final answers per tenant are byte-identical to a
/// solo `onepass run`/`onepass plan` over the same generator settings.
fn cmd_serve(args: &[String]) {
    use onepass_workloads::serving::{standard_catalog, CatalogConfig, CLICKS_INGEST, DOCS_INGEST};
    use std::sync::Arc;

    let listen = flag(args, "listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let records: usize = flag(args, "records")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let doc_records: usize = flag(args, "doc-records")
        .and_then(|v| v.parse().ok())
        .unwrap_or(records / 100 + 1);
    let batch: usize = flag(args, "batch")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
        .max(1);
    let pool_mb: usize = flag(args, "pool-mb")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let policy_name = flag(args, "mem-policy").unwrap_or_else(|| "largest-consumer".into());
    let Some(policy) = policy_by_name(&policy_name) else {
        eprintln!("unknown --mem-policy {policy_name:?}");
        usage();
    };
    let high_water: f64 = flag(args, "mem-high-water")
        .and_then(|v| v.parse().ok())
        .unwrap_or(onepass_core::governor::DEFAULT_HIGH_WATER);
    let max_tenants: usize = flag(args, "max-tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024);
    let shards: usize = flag(args, "shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);
    let reducers: usize = flag(args, "reducers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let k: usize = flag(args, "k").and_then(|v| v.parse().ok()).unwrap_or(10);
    let early_every: u64 = flag(args, "early-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let dlq_retries: u32 = flag(args, "dlq-retries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let await_tenants: usize = flag(args, "await-tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let await_timeout = Duration::from_millis(
        flag(args, "await-timeout-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(120_000),
    );

    let catalog = standard_catalog(CatalogConfig {
        reducers,
        k,
        early_every,
        ..CatalogConfig::default()
    });
    let config = ServeConfig {
        pool_bytes: pool_mb << 20,
        policy,
        high_water,
        admission: AdmissionConfig {
            max_tenants,
            ..AdmissionConfig::default()
        },
        shards,
        dlq: DlqConfig {
            max_retries: dlq_retries,
            ..DlqConfig::default()
        },
        hash_family: hash_family_flag(args),
        ..ServeConfig::default()
    };
    let rig = MetricsRig::from_args(args);
    let server = Arc::new(
        Server::start(config, catalog, rig.as_ref().map(|r| r.registry.clone()))
            .expect("start serving core"),
    );
    let mut front = Frontend::bind(Arc::clone(&server), &listen).expect("bind front door");
    // Scripts parse this line for the bound (possibly ephemeral) port.
    println!("serving tenants on {}", front.local_addr());
    eprintln!(
        "pool {} / {policy_name}, {shards} shard(s), max {max_tenants} tenant(s); \
         feeding {records} click + {doc_records} doc record(s) in batches of {batch}",
        fmt_bytes((pool_mb << 20) as u64),
    );

    if await_tenants > 0 {
        let deadline = std::time::Instant::now() + await_timeout;
        while server.active_tenants() < await_tenants {
            if std::time::Instant::now() >= deadline {
                eprintln!(
                    "timed out waiting for {await_tenants} tenant(s); have {}",
                    server.active_tenants()
                );
                std::process::exit(1);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!(
            "{} tenant(s) subscribed; starting ingest",
            server.active_tenants()
        );
    }

    // Interleave the two feeds proportionally so doc tenants see data
    // throughout the stream rather than in one trailing burst. The
    // generators and their defaults are exactly `onepass run`'s, which is
    // what makes a tenant's finals comparable byte-for-byte to a solo run.
    let mut clicks = ClickGen::new(ClickGenConfig::default());
    let mut docs = DocGen::new(DocGenConfig::default());
    let mut clicks_fed = 0usize;
    let mut docs_fed = 0usize;
    while clicks_fed < records || docs_fed < doc_records {
        if clicks_fed < records {
            let n = batch.min(records - clicks_fed);
            server
                .feed(CLICKS_INGEST, clicks.text_records(n))
                .expect("feed clicks");
            clicks_fed += n;
        }
        // Keep the doc feed at the same fraction of its total as the
        // click feed (everything is due once clicks finish).
        let due = if clicks_fed >= records {
            doc_records
        } else {
            doc_records * clicks_fed / records
        };
        while docs_fed < due {
            let n = batch.min(due - docs_fed);
            server
                .feed(DOCS_INGEST, docs.records(n))
                .expect("feed docs");
            docs_fed += n;
        }
    }
    server.close().expect("close serving core");
    if !front.wait_drained(Duration::from_secs(60)) {
        eprintln!(
            "warning: {} subscriber connection(s) still draining at shutdown",
            front.active_conns()
        );
    }
    front.stop();
    if let Some(r) = rig {
        r.finish();
    }
    let c = server.admission_counters();
    println!(
        "served:            {} record(s) ingested, {} tenant(s) admitted ({} queued, {} rejected)",
        server.ingest_records(),
        c.admitted,
        c.queued,
        c.rejected
    );
}

/// One loadgen tenant's outcome.
struct LoadgenOutcome {
    id: String,
    query: String,
    /// Client-side time from ADMITTED to the first EARLY/FINAL line.
    ttfa: Option<Duration>,
    early: u64,
    /// The tenant's final answers in `--dump-out` format.
    dump: String,
    records_in: u64,
    dlq_dead: u64,
    error: Option<String>,
}

/// `onepass loadgen`: drive a running `onepass serve` with a
/// Zipf-distributed tenant population and report latency + fairness.
/// Exits nonzero if any tenant is rejected or errors, or if two tenants
/// of the same query disagree on their final answers (they must be
/// byte-identical — the server runs one isolated plan per tenant over
/// one shared stream).
fn cmd_loadgen(args: &[String]) {
    use onepass_workloads::serving::{standard_catalog, CatalogConfig};
    use onepass_workloads::tenantgen::{assign_tenants, TenantGenConfig};
    use std::io::Write;

    let server_addr = flag(args, "server").unwrap_or_else(|| usage());
    let tenants: usize = flag(args, "tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let queries: Vec<String> = match flag(args, "queries") {
        Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
        None => standard_catalog(CatalogConfig::default()).names(),
    };
    let mut gen_config = TenantGenConfig::default();
    if let Some(s) = flag(args, "zipf").and_then(|v| v.parse().ok()) {
        gen_config.zipf_s = s;
    }
    if let Some(s) = flag(args, "seed").and_then(|v| v.parse().ok()) {
        gen_config.seed = s;
    }
    let dump_dir = flag(args, "dump-dir");
    let report_path = flag(args, "report");

    let population = assign_tenants(tenants, &queries, &gen_config);
    eprintln!(
        "loadgen: {tenants} tenant(s) over {} query(ies) against {server_addr} (zipf s={})",
        queries.len(),
        gen_config.zipf_s
    );

    let handles: Vec<_> = population
        .into_iter()
        .map(|spec| {
            let addr = server_addr.clone();
            std::thread::Builder::new()
                .name(format!("loadgen-{}", spec.id))
                .spawn(move || drive_tenant(&addr, &spec.id, &spec.query))
                .expect("spawn loadgen tenant")
        })
        .collect();
    let outcomes: Vec<LoadgenOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("loadgen tenant thread panicked"))
        .collect();

    let mut failed = false;
    for o in outcomes.iter().filter(|o| o.error.is_some()) {
        eprintln!(
            "tenant {} ({}): {}",
            o.id,
            o.query,
            o.error.as_deref().unwrap_or("")
        );
        failed = true;
    }

    // Cross-tenant consistency: every tenant of a query must hold
    // byte-identical finals.
    let mut reference: Vec<(&str, &LoadgenOutcome)> = Vec::new();
    for o in outcomes.iter().filter(|o| o.error.is_none()) {
        match reference.iter().find(|(q, _)| *q == o.query) {
            None => reference.push((&o.query, o)),
            Some((_, first)) => {
                if first.dump != o.dump {
                    eprintln!(
                        "DIVERGENCE: tenants {} and {} disagree on query {}",
                        first.id, o.id, o.query
                    );
                    failed = true;
                }
            }
        }
    }

    if let Some(dir) = &dump_dir {
        std::fs::create_dir_all(dir).expect("create --dump-dir");
        for o in outcomes.iter().filter(|o| o.error.is_none()) {
            let path = format!("{dir}/{}.{}.dump", o.id, o.query);
            std::fs::write(&path, &o.dump).expect("write tenant dump");
        }
        eprintln!("wrote per-tenant dumps to {dir}/");
    }
    if let Some(path) = &report_path {
        let mut out =
            std::io::BufWriter::new(std::fs::File::create(path).expect("create --report"));
        for o in &outcomes {
            writeln!(
                out,
                "{{\"type\":\"loadgen\",\"tenant\":\"{}\",\"query\":\"{}\",\"ttfa_s\":{},\"early\":{},\"records\":{},\"dlq_dead\":{},\"ok\":{}}}",
                o.id,
                o.query,
                o.ttfa
                    .map(|d| format!("{:.6}", d.as_secs_f64()))
                    .unwrap_or_else(|| "null".into()),
                o.early,
                o.records_in,
                o.dlq_dead,
                o.error.is_none()
            )
            .expect("write --report line");
        }
        eprintln!("wrote per-tenant report to {path}");
    }

    let mut ttfas: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.ttfa.map(|d| d.as_secs_f64()))
        .collect();
    ttfas.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if ttfas.is_empty() {
            return 0.0;
        }
        ttfas[((ttfas.len() - 1) as f64 * p).round() as usize]
    };
    // Jain's fairness index over per-tenant TTFA: 1.0 = perfectly even.
    let jain = if ttfas.is_empty() {
        1.0
    } else {
        let sum: f64 = ttfas.iter().sum();
        let sq: f64 = ttfas.iter().map(|x| x * x).sum();
        (sum * sum) / (ttfas.len() as f64 * sq).max(f64::MIN_POSITIVE)
    };
    let ok = outcomes.iter().filter(|o| o.error.is_none()).count();
    println!(
        "loadgen:           {ok}/{} tenant(s) ok, {} with a first answer",
        outcomes.len(),
        ttfas.len()
    );
    println!(
        "ttfa:              p50 {} p99 {} (jain fairness {jain:.3})",
        fmt_secs(pct(0.50)),
        fmt_secs(pct(0.99)),
    );
    if failed {
        std::process::exit(1);
    }
}

/// Run one loadgen tenant's subscription over the wire protocol.
fn drive_tenant(addr: &str, id: &str, query: &str) -> LoadgenOutcome {
    use onepass::runtime::serve::front::unhex;
    use std::io::{BufRead, BufReader, Write};

    let mut outcome = LoadgenOutcome {
        id: id.to_string(),
        query: query.to_string(),
        ttfa: None,
        early: 0,
        dump: String::new(),
        records_in: 0,
        dlq_dead: 0,
        error: None,
    };
    let fail = |o: &mut LoadgenOutcome, msg: String| {
        o.error = Some(msg);
    };
    let stream = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            fail(&mut outcome, format!("connect {addr}: {e}"));
            return outcome;
        }
    };
    let mut writer = stream.try_clone().expect("clone socket");
    if writer
        .write_all(format!("SUBSCRIBE {id} {query}\n").as_bytes())
        .is_err()
    {
        fail(&mut outcome, "subscribe write failed".into());
        return outcome;
    }
    let mut admitted_at = None;
    let mut finals: Vec<String> = Vec::new();
    for line in BufReader::new(stream).lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                fail(&mut outcome, format!("read: {e}"));
                return outcome;
            }
        };
        let mut parts = line.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("ADMITTED"), _, _) => admitted_at = Some(std::time::Instant::now()),
            (Some("REJECTED"), a, b) => {
                let reason = [a, b]
                    .iter()
                    .flatten()
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(" ");
                fail(&mut outcome, format!("rejected: {reason}"));
                return outcome;
            }
            (Some(kind @ ("EARLY" | "FINAL")), Some(hexkey), Some(hexval)) => {
                if outcome.ttfa.is_none() {
                    if let Some(at) = admitted_at {
                        outcome.ttfa = Some(at.elapsed());
                    }
                }
                if kind == "EARLY" {
                    outcome.early += 1;
                } else {
                    // Reassemble the server-side `--dump-out` line: the
                    // raw key (lossy utf-8), a tab, the value as hex.
                    let Some(key) = unhex(hexkey) else {
                        fail(&mut outcome, format!("malformed key hex: {hexkey}"));
                        return outcome;
                    };
                    finals.push(format!("{}\t{hexval}", String::from_utf8_lossy(&key)));
                }
            }
            (Some("DONE"), _, _) => {
                for kv in line.split_whitespace().skip(1) {
                    if let Some((k, v)) = kv.split_once('=') {
                        match k {
                            "records" => outcome.records_in = v.parse().unwrap_or(0),
                            "dlq_dead" => outcome.dlq_dead = v.parse().unwrap_or(0),
                            _ => {}
                        }
                    }
                }
                finals.sort();
                finals.push(String::new());
                outcome.dump = finals.join("\n");
                return outcome;
            }
            (Some("ERROR"), _, _) => {
                fail(&mut outcome, line.clone());
                return outcome;
            }
            _ => {
                fail(&mut outcome, format!("unexpected line: {line}"));
                return outcome;
            }
        }
    }
    fail(&mut outcome, "connection closed before DONE".into());
    outcome
}
