#!/bin/sh
# Regenerate every table and figure of the paper plus the supplementary
# experiments. Outputs: console tables/charts + results/*.csv + results/*.svg.
#
# All flags are forwarded to every binary, e.g.:
#   ./run_all_experiments.sh --records 100000
#   ./run_all_experiments.sh --report-jsonl results/jobs.jsonl   # append JSONL job reports
#   ./run_all_experiments.sh --trace-out results/trace.json      # Chrome trace (engine timeline)
# (`onepass run`/`onepass sim` accept the same --trace-out/--report-jsonl flags.)
set -e
cargo build --release -p onepass-bench
for exp in exp_table1 exp_table2 exp_fig2 exp_fig3 exp_fig4 exp_table3 \
           exp_section5 exp_parsing exp_mapwrite exp_calibrate exp_ablation \
           exp_engine_timeline exp_plan exp_phase_breakdown exp_innode \
           exp_serving exp_iterative; do
    echo "=================================================================="
    ./target/release/$exp "$@"
    echo
done
