//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `iter`,
//! `iter_batched`, throughput annotations) over a simple wall-clock
//! harness: each benchmark is calibrated to a target sample duration,
//! run for `sample_size` samples, and reported as the median per-iteration
//! time with min/max spread. There is no statistical regression analysis
//! or plotting, but `--save-baseline NAME` (the flag CI's perf gate
//! passes) is honoured: every measured median is appended as a JSON line
//! to `${CRITERION_HOME:-target/criterion}/NAME.json`, together with a
//! deterministic calibration-anchor time that lets a checker normalise
//! away machine-speed differences (see the workspace's `exp_benchdiff`).

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (shim: ignored, every batch
/// reruns setup).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units processed per iteration, used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// Parameter value alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Per-iteration timing collector handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Median per-iteration time of the last run, for harness use.
    last_median: Duration,
    last_spread: (Duration, Duration),
}

const TARGET_SAMPLE: Duration = Duration::from_millis(20);

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            iters_per_sample: 0,
            samples,
            last_median: Duration::ZERO,
            last_spread: (Duration::ZERO, Duration::ZERO),
        }
    }

    /// Time `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one
        // sample takes roughly TARGET_SAMPLE.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let took = t.elapsed();
            if took >= TARGET_SAMPLE || iters >= 1 << 20 {
                break;
            }
            let grow = if took.is_zero() {
                16
            } else {
                (TARGET_SAMPLE.as_nanos() / took.as_nanos().max(1) + 1) as u64
            };
            iters = (iters * grow.clamp(2, 16)).min(1 << 20);
        }
        self.iters_per_sample = iters;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(t.elapsed() / iters as u32);
        }
        per_iter.sort();
        self.last_median = per_iter[per_iter.len() / 2];
        self.last_spread = (per_iter[0], *per_iter.last().unwrap());
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            per_iter.push(t.elapsed());
        }
        self.iters_per_sample = 1;
        per_iter.sort();
        self.last_median = per_iter[per_iter.len() / 2];
        self.last_spread = (per_iter[0], *per_iter.last().unwrap());
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Medians recorded this process, drained by [`finalize`].
fn recorded() -> &'static Mutex<Vec<(String, u128, u128)>> {
    static RECORDS: OnceLock<Mutex<Vec<(String, u128, u128)>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Deterministic calibration anchor: a fixed integer spin whose wall time
/// scales with single-core machine speed. Baselines record it alongside
/// each median so a checker can compare `median / calibration` ratios
/// across machines instead of raw nanoseconds. Minimum of several runs to
/// shave scheduler noise.
pub fn calibration_anchor_ns() -> u128 {
    fn spin() -> u64 {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..2_000_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        x
    }
    let mut best = u128::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        black_box(spin());
        best = best.min(t.elapsed().as_nanos());
    }
    best.max(1)
}

/// Honour `--save-baseline NAME` (appended by `criterion_main!`): append
/// every recorded benchmark median as a JSON line to
/// `${CRITERION_HOME:-target/criterion}/NAME.json`. Append (not
/// overwrite) so the several bench binaries of one `cargo bench` sweep
/// accumulate into a single baseline file.
pub fn finalize() {
    let args: Vec<String> = std::env::args().collect();
    let Some(at) = args.iter().position(|a| a == "--save-baseline") else {
        return;
    };
    let Some(name) = args.get(at + 1) else {
        eprintln!("--save-baseline needs a name; baseline not saved");
        return;
    };
    let dir = std::env::var("CRITERION_HOME").unwrap_or_else(|_| "target/criterion".into());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create baseline dir {dir}: {e}");
        return;
    }
    let calibration = calibration_anchor_ns();
    let mut out = String::new();
    for (bench, median_ns, min_ns) in recorded().lock().unwrap().drain(..) {
        out.push_str(&format!(
            "{{\"bench\":{:?},\"median_ns\":{median_ns},\"min_ns\":{min_ns},\
             \"calibration_ns\":{calibration}}}\n",
            bench
        ));
    }
    let path = format!("{dir}/{name}.json");
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            if let Err(e) = f.write_all(out.as_bytes()) {
                eprintln!("cannot write baseline {path}: {e}");
            } else {
                println!("baseline appended to {path}");
            }
        }
        Err(e) => eprintln!("cannot open baseline {path}: {e}"),
    }
}

fn report(path: &str, b: &Bencher, throughput: Option<Throughput>) {
    recorded().lock().unwrap().push((
        path.to_string(),
        b.last_median.as_nanos(),
        // The sample minimum: far less scheduler-noise-sensitive than the
        // median, so the perf gate compares minima.
        b.last_spread.0.as_nanos(),
    ));
    let rate = throughput.map(|t| {
        let per_sec = match t {
            Throughput::Elements(n) => (n as f64 / b.last_median.as_secs_f64(), "elem/s"),
            Throughput::Bytes(n) => (n as f64 / b.last_median.as_secs_f64() / 1e6, "MB/s"),
        };
        format!("  ({:.2e} {})", per_sec.0, per_sec.1)
    });
    println!(
        "{path:<50} time: [{} .. {} .. {}]{}",
        fmt_duration(b.last_spread.0),
        fmt_duration(b.last_median),
        fmt_duration(b.last_spread.1),
        rate.unwrap_or_default(),
    );
}

/// Top-level harness handle; one per `criterion_group!` function chain.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name} --");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&id.label, &b, None);
        self
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate benchmarks with units processed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.last_median > Duration::ZERO || b.iters_per_sample > 1);
    }

    #[test]
    fn benchmarks_are_recorded_for_baselines() {
        let mut c = Criterion::default();
        c.bench_function("recorded/one", |b| b.iter(|| black_box(2u64) * 3));
        let records = recorded().lock().unwrap();
        assert!(records.iter().any(|(name, _, _)| name == "recorded/one"));
    }

    #[test]
    fn calibration_anchor_is_positive_and_stable() {
        let a = calibration_anchor_ns();
        let b = calibration_anchor_ns();
        assert!(a > 0 && b > 0);
        // Same machine, back to back: within 8x of each other (the anchor
        // only needs to absorb cross-machine differences, which are far
        // larger than scheduler noise).
        assert!(a / 8 <= b && b / 8 <= a, "anchor unstable: {a} vs {b}");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..10u64).product::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter_batched(
                || vec![n; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1u64 + 1));
    }
}
