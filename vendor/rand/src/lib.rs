//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides exactly the surface the workload generators use: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`]. The generator is xoshiro256++
//! seeded through splitmix64 — statistically strong enough for Zipf
//! sampling and synthetic workload generation, deterministic across
//! platforms, and seed-stable from PR to PR (which the experiment
//! harness relies on). It is *not* the same stream as upstream `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly from its "standard" distribution
/// (the shim analogue of `rand::distributions::Standard`).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value from `rng`, uniform over the range.
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < span/2^64 — irrelevant at these spans.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

/// User-facing generator interface, blanket-implemented for every
/// [`RngCore`] (so it works through `&mut dyn`-style `?Sized` bounds).
pub trait Rng: RngCore {
    /// Draw a value from the type's standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_uniform(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..8);
            seen[v] = true;
            let f = rng.gen_range(1.0..3.0);
            assert!((1.0..3.0).contains(&f));
            let i = rng.gen_range(2u64..=5);
            assert!((2..=5).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2000..3000).contains(&hits),
            "p=0.25 gave {hits}/10000 hits"
        );
    }

    #[test]
    fn uniform01_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
