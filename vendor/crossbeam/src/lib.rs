//! Offline stand-in for the `crossbeam` crate.
//!
//! The engine uses two slices of crossbeam's API: MPMC channels
//! (`channel::{bounded, unbounded}` with cloneable receivers) and scoped
//! threads (`thread::scope` whose spawn closures receive the scope).
//! This shim rebuilds both on `std`: channels as a `Mutex<VecDeque>` +
//! two condvars (blocking sends give bounded channels real backpressure),
//! and scoped threads over `std::thread::scope` with panics surfaced as
//! `Err` like crossbeam does. Throughput is a little lower than the real
//! crate's lock-free queues, but the blocking/disconnection semantics the
//! runtime relies on are identical.

pub mod channel {
    //! MPMC channels with cloneable senders *and* receivers.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message arriving.
        Timeout,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel; cloneable for work-queue fan-out.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if st.queue.len() < self.shared.cap {
                    st.queue.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }

        /// Number of messages currently queued (send-side view, used by
        /// backpressure gates that must not consume from the channel).
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Receive a message, blocking for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(msg) => {
                    self.shared.not_full.notify_one();
                    Ok(msg)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator over messages, ending when all senders
        /// disconnect and the queue drains.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Channel with unlimited capacity; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(usize::MAX)
    }

    /// Channel holding at most `cap` messages; sends block when full.
    ///
    /// Shim deviation: a zero-capacity rendezvous channel is approximated
    /// by capacity one (the engine never asks for capacity zero).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(cap.max(1))
    }
}

pub mod thread {
    //! Scoped threads whose spawn closures receive the scope, allowing
    //! nested spawns, built over `std::thread::scope`.

    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as std_thread;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or panic
        /// payload.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }

        /// Whether the thread has finished running.
        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the
        /// scope so it can spawn further threads, mirroring crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. A panic in any unjoined thread (or in `f` itself) is
    /// returned as `Err` with the panic payload, like crossbeam.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std_thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};
    use super::thread;

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        tx.send(7).unwrap();
        drop(tx);
        let got = rx.try_recv().or_else(|_| rx2.try_recv()).unwrap();
        assert_eq!(got, 7);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!t.is_finished(), "second send must block while full");
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_joins_and_propagates_values() {
        let data = [1u64, 2, 3];
        let sum = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn scope_surfaces_child_panic_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("child dies"));
        });
        assert!(r.is_err());
    }
}
