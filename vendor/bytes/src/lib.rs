//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! handful of external dependencies are vendored as minimal API-compatible
//! shims. Nothing in the workspace currently uses `bytes` types directly;
//! this crate exists so the dependency graph resolves offline. The types
//! are plain `Vec<u8>` wrappers — enough for cheap clone-free reads to be
//! expressed, not a reference-counted slice machine.

use std::ops::Deref;

/// An immutable byte buffer (shim: owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// A mutable byte buffer (shim: owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Create an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Append bytes to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut m = BytesMut::with_capacity(4);
        m.extend_from_slice(b"ab");
        m.extend_from_slice(b"cd");
        let b = m.freeze();
        assert_eq!(&b[..], b"abcd");
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
    }
}
