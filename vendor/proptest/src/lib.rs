//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, range and
//! tuple strategies, `any::<T>()`, `prop::collection::vec`, `prop_map`,
//! and `ProptestConfig::with_cases`. Cases are generated from a
//! deterministic per-test seed (derived from the test function's name),
//! so failures reproduce across runs. There is **no shrinking**: a
//! failing case reports its case index and panics with the generated
//! message instead of minimizing the input.
//!
//! Two pieces of upstream behaviour the CI deep-fuzz job relies on are
//! implemented: the `PROPTEST_CASES` environment variable overrides the
//! configured case count (nightly runs crank it to thousands), and a
//! failing property persists a reproduction note under
//! `proptest-regressions/<test>.txt` (or `$PROPTEST_REGRESSIONS/`) that
//! CI uploads as an artifact. Because generation is deterministic by test
//! name, the note records the case count needed to replay the failure.

pub mod test_runner {
    //! Config, error type, and the deterministic RNG driving generation.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (subset: case count).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the offline suite quick
            // while still exploring a useful slice of the input space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Effective case count: the `PROPTEST_CASES` environment variable
    /// (upstream-compatible) overrides the configured count when set to a
    /// positive integer. CI's nightly deep-fuzz job uses this to run the
    /// same properties at thousands of cases without a code change.
    pub fn resolve_cases(configured: u32) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .trim()
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or(configured),
            Err(_) => configured,
        }
    }

    /// Persist a failure reproduction note, mirroring upstream's
    /// `proptest-regressions/` files. Ours records the deterministic
    /// replay recipe (test name seeds the RNG; the case index pins the
    /// failing input) instead of a seed blob. Returns the path written,
    /// if the write succeeded.
    pub fn persist_regression(test: &str, case: u32, cases: u32, msg: &str) -> Option<String> {
        let dir =
            std::env::var("PROPTEST_REGRESSIONS").unwrap_or_else(|_| "proptest-regressions".into());
        std::fs::create_dir_all(&dir).ok()?;
        let path = format!("{dir}/{test}.txt");
        let note = format!(
            "# {test}: case {case} of {cases} failed.\n\
             # Generation is deterministic by test name; replay with:\n\
             #   PROPTEST_CASES={cases} cargo test {test}\n\
             cc case={case} cases={cases} msg={}\n",
            msg.lines().next().unwrap_or(""),
        );
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .ok()?;
        f.write_all(note.as_bytes()).ok()?;
        Some(path)
    }

    /// A failed property case (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG used to generate case inputs.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// RNG seeded from the test's name, so each property explores a
        /// stable, reproducible input stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrink trees).

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.0.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A / 0);
        (A / 0, B / 1);
        (A / 0, B / 1, C / 2);
        (A / 0, B / 1, C / 2, D / 3);
        (A / 0, B / 1, C / 2, D / 3, E / 4);
    }

    /// Strategy for a fixed value (upstream `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.0.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.gen_bool(0.5)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.0.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generate `Vec`s of `elem` values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case aborts with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let outcome = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    let msg = e.to_string();
                    let persisted = $crate::test_runner::persist_regression(
                        stringify!($name),
                        case + 1,
                        cases,
                        &msg,
                    );
                    panic!(
                        "proptest case {}/{} of `{}` failed{}: {}",
                        case + 1,
                        cases,
                        stringify!($name),
                        match &persisted {
                            ::core::option::Option::Some(p) =>
                                format!(" (regression persisted to {p})"),
                            ::core::option::Option::None => ::std::string::String::new(),
                        },
                        msg
                    );
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u8, bool)>> {
        prop::collection::vec((any::<u8>(), any::<bool>()), 0..20)
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 1usize..=1, v in pairs()) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 1);
            prop_assert!(v.len() < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn prop_map_applies(s in (0u8..4).prop_map(|b| format!("k{b}"))) {
            prop_assert!(s.starts_with('k'));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        // Keep the failure's regression note out of the source tree.
        std::env::set_var(
            "PROPTEST_REGRESSIONS",
            std::env::temp_dir().join("proptest-stub-selftest"),
        );
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn env_var_overrides_case_count() {
        assert_eq!(crate::test_runner::resolve_cases(64), 64);
        std::env::set_var("PROPTEST_CASES", "128");
        assert_eq!(crate::test_runner::resolve_cases(64), 128);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(crate::test_runner::resolve_cases(64), 64);
        std::env::remove_var("PROPTEST_CASES");
    }

    #[test]
    fn regression_note_is_persisted_with_replay_recipe() {
        // Same dir as `failing_property_panics_with_case_info` (tests share
        // the process environment; never unset, to avoid racing it into
        // writing inside the source tree).
        std::env::set_var(
            "PROPTEST_REGRESSIONS",
            std::env::temp_dir().join("proptest-stub-selftest"),
        );
        let path = crate::test_runner::persist_regression("some_prop", 7, 99, "boom\nmore")
            .expect("persist failed");
        let note = std::fs::read_to_string(&path).unwrap();
        assert!(note.contains("case=7 cases=99 msg=boom"));
        assert!(note.contains("PROPTEST_CASES=99 cargo test some_prop"));
    }
}
