#!/bin/sh
# End-to-end smoke test for distributed mode (CI runs this):
#
#   1. run page-frequency single-process and dump its sorted output,
#   2. start two `onepass worker` processes on ephemeral loopback ports
#      (each worker prints its bound address; fixed ports collide on
#      shared CI hosts) and run the same job with `--workers`; the dump
#      must be byte-identical,
#   3. restart one worker with --die-after-maps so it severs its
#      connection mid-job (the scripted `kill -9`); replay onto the
#      survivor must still produce byte-identical output.
#
# Set SMOKE_OUT_DIR to keep logs and dumps (CI uploads it on failure).
set -e

OUT=${SMOKE_OUT_DIR:-$(mktemp -d)}
mkdir -p "$OUT"
WORKER_PIDS=""
cleanup() {
    [ -n "$WORKER_PIDS" ] && kill $WORKER_PIDS 2>/dev/null || true
    [ -z "${SMOKE_OUT_DIR:-}" ] && rm -rf "$OUT" || true
}
trap cleanup EXIT

cargo build --release --bin onepass

RUN="./target/release/onepass run page-frequency --records 100000 --reducers 4"

# Each worker binds port 0 and announces the bound address on stderr;
# poll its log until the announcement lands.
worker_addr() {
    log=$1
    for _ in $(seq 1 40); do
        a=$(sed -n 's/^worker listening on \([^ ]*\) .*/\1/p' "$log")
        if [ -n "$a" ]; then
            echo "$a"
            return 0
        fi
        sleep 0.25
    done
    echo "FAIL: worker never announced its address ($log)" >&2
    return 1
}

# Coordinator dials fail fast if a worker is mid-restart, so retry the
# whole run until the fleet answers.
run_dist() {
    out=$1
    fleet=$2
    for _ in $(seq 1 20); do
        if $RUN --workers "$fleet" --dump-out "$out"; then
            return 0
        fi
        sleep 0.25
    done
    echo "FAIL: distributed run never succeeded"
    exit 1
}

# 1. Single-process reference.
$RUN --dump-out "$OUT/solo.tsv"

# 2. Two healthy workers.
./target/release/onepass worker --listen 127.0.0.1:0 2> "$OUT/w1.log" &
P1=$!
./target/release/onepass worker --listen 127.0.0.1:0 2> "$OUT/w2.log" &
P2=$!
WORKER_PIDS="$P1 $P2"
W1=$(worker_addr "$OUT/w1.log")
W2=$(worker_addr "$OUT/w2.log")

run_dist "$OUT/dist.tsv" "$W1,$W2"
if ! cmp -s "$OUT/solo.tsv" "$OUT/dist.tsv"; then
    echo "FAIL: distributed output differs from single-process"
    diff "$OUT/solo.tsv" "$OUT/dist.tsv" | head -20
    exit 1
fi
echo "ok: two-worker output is byte-identical"

# 3. Worker loss mid-job: the first worker dies cold after one completed
# map; the survivor absorbs the replayed maps and reduce partitions.
kill "$P1"
wait "$P1" 2>/dev/null || true
WORKER_PIDS="$P2"
./target/release/onepass worker --listen 127.0.0.1:0 --slots 1 --die-after-maps 1 \
    2> "$OUT/w1b.log" &
P1=$!
WORKER_PIDS="$P1 $P2"
W1=$(worker_addr "$OUT/w1b.log")

run_dist "$OUT/killed.tsv" "$W1,$W2"
if ! cmp -s "$OUT/solo.tsv" "$OUT/killed.tsv"; then
    echo "FAIL: output diverged after mid-job worker loss"
    diff "$OUT/solo.tsv" "$OUT/killed.tsv" | head -20
    exit 1
fi
echo "ok: output survives a mid-job worker kill byte-identically"

echo "transport smoke: all checks passed"
