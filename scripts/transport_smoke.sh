#!/bin/sh
# End-to-end smoke test for distributed mode (CI runs this):
#
#   1. run page-frequency single-process and dump its sorted output,
#   2. start two `onepass worker` processes on loopback ports and run the
#      same job with `--workers`; the dump must be byte-identical,
#   3. restart one worker with --die-after-maps so it severs its
#      connection mid-job (the scripted `kill -9`); replay onto the
#      survivor must still produce byte-identical output.
set -e

W1=127.0.0.1:41751
W2=127.0.0.1:41752
OUT=$(mktemp -d)
WORKER_PIDS=""
cleanup() {
    [ -n "$WORKER_PIDS" ] && kill $WORKER_PIDS 2>/dev/null || true
    rm -rf "$OUT"
}
trap cleanup EXIT

cargo build --release --bin onepass

RUN="./target/release/onepass run page-frequency --records 100000 --reducers 4"

# Coordinator dials fail fast while a worker is still binding its
# listener, so retry the whole run until the fleet answers.
run_dist() {
    out=$1
    for _ in $(seq 1 20); do
        if $RUN --workers "$W1,$W2" --dump-out "$out"; then
            return 0
        fi
        sleep 0.25
    done
    echo "FAIL: distributed run never succeeded"
    exit 1
}

# 1. Single-process reference.
$RUN --dump-out "$OUT/solo.tsv"

# 2. Two healthy workers.
./target/release/onepass worker --listen "$W1" &
P1=$!
./target/release/onepass worker --listen "$W2" &
P2=$!
WORKER_PIDS="$P1 $P2"

run_dist "$OUT/dist.tsv"
if ! cmp -s "$OUT/solo.tsv" "$OUT/dist.tsv"; then
    echo "FAIL: distributed output differs from single-process"
    diff "$OUT/solo.tsv" "$OUT/dist.tsv" | head -20
    exit 1
fi
echo "ok: two-worker output is byte-identical"

# 3. Worker loss mid-job: the first worker dies cold after one completed
# map; the survivor absorbs the replayed maps and reduce partitions.
kill "$P1"
wait "$P1" 2>/dev/null || true
WORKER_PIDS="$P2"
./target/release/onepass worker --listen "$W1" --slots 1 --die-after-maps 1 &
P1=$!
WORKER_PIDS="$P1 $P2"

run_dist "$OUT/killed.tsv"
if ! cmp -s "$OUT/solo.tsv" "$OUT/killed.tsv"; then
    echo "FAIL: output diverged after mid-job worker loss"
    diff "$OUT/solo.tsv" "$OUT/killed.tsv" | head -20
    exit 1
fi
echo "ok: output survives a mid-job worker kill byte-identically"

echo "transport smoke: all checks passed"
