#!/bin/sh
# End-to-end smoke test for the multi-tenant serving front-end (CI runs
# this):
#
#   1. boot `onepass serve` on an ephemeral port, gated on TENANTS
#      subscribers before ingest starts,
#   2. drive TENANTS Zipf-assigned tenants with `onepass loadgen` (which
#      also cross-checks tenants of the same query against each other and
#      reports TTFA percentiles + Jain fairness),
#   3. diff every tenant's final dump against a solo `onepass run` /
#      `onepass plan` over the same generator settings — all must be
#      byte-identical,
#   4. scrape the metrics endpoint for a nonzero per-tenant TTFA gauge
#      for every tenant.
#
# Set SMOKE_OUT_DIR to keep logs/dumps/reports (CI uploads it on
# failure). TENANTS/RECORDS scale the load (nightly runs them up).
set -e

TENANTS=${TENANTS:-200}
RECORDS=${RECORDS:-20000}
# `run inverted-index --records N` generates N/100+1 documents; the
# served doc feed must match for byte-identity.
DOCS=$((RECORDS / 100 + 1))
OUT=${SMOKE_OUT_DIR:-$(mktemp -d)}
mkdir -p "$OUT"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -z "${SMOKE_OUT_DIR:-}" ] && rm -rf "$OUT" || true
}
trap cleanup EXIT

cargo build --release --bin onepass

./target/release/onepass serve --listen 127.0.0.1:0 \
    --records "$RECORDS" --doc-records "$DOCS" --batch 512 --pool-mb 64 \
    --reducers 2 --await-tenants "$TENANTS" --await-timeout-ms 120000 \
    --metrics-addr 127.0.0.1:0 --metrics-linger-ms 20000 \
    > "$OUT/serve.log" 2> "$OUT/serve.err" &
SERVE_PID=$!

# Both listen addresses are ephemeral — parse the bound ports from the
# server's own announcements instead of configuring fixed ones.
ADDR=""
for _ in $(seq 1 120); do
    ADDR=$(sed -n 's/^serving tenants on //p' "$OUT/serve.log")
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.25
done
[ -n "$ADDR" ] || { echo "FAIL: serve never printed its address"; cat "$OUT/serve.err"; exit 1; }
METRICS=$(sed -n 's/^serving metrics on //p' "$OUT/serve.err")
[ -n "$METRICS" ] || { echo "FAIL: serve never printed its metrics address"; cat "$OUT/serve.err"; exit 1; }
echo "serve is up on $ADDR (metrics $METRICS)"

./target/release/onepass loadgen --server "$ADDR" --tenants "$TENANTS" \
    --dump-dir "$OUT/dumps" --report "$OUT/loadgen.jsonl"

# Scrape while the post-run linger keeps the endpoint alive: every tenant
# must have recorded a (necessarily nonzero) time-to-first-answer gauge.
SEEN=0
for _ in $(seq 1 40); do
    curl -sf "$METRICS" > "$OUT/metrics.prom" 2>/dev/null || true
    SEEN=$(grep -c '^onepass_serve_tenant_ttfa_seconds{tenant="' "$OUT/metrics.prom" || true)
    [ "$SEEN" -ge "$TENANTS" ] && break
    sleep 0.25
done
[ "$SEEN" -ge "$TENANTS" ] || { echo "FAIL: only $SEEN/$TENANTS per-tenant TTFA gauges"; exit 1; }
if grep '^onepass_serve_tenant_ttfa_seconds{' "$OUT/metrics.prom" | grep -q '} 0$'; then
    echo "FAIL: a tenant reported a zero TTFA"
    exit 1
fi
echo "ok: $SEEN nonzero per-tenant TTFA gauges"

# Solo references over the same generator settings, then the
# byte-identity sweep across every tenant dump.
for w in sessionization page-frequency per-user-count inverted-index; do
    ./target/release/onepass run "$w" --records "$RECORDS" --reducers 2 \
        --dump-out "$OUT/solo.$w.dump" > /dev/null
done
./target/release/onepass plan top-k --records "$RECORDS" --reducers 2 --k 10 \
    --dump-out "$OUT/solo.top-k.dump" > /dev/null
./target/release/onepass plan df-histogram --records "$RECORDS" --reducers 2 \
    --dump-out "$OUT/solo.df-histogram.dump" > /dev/null

FAILED=0
CHECKED=0
for f in "$OUT"/dumps/*.dump; do
    q=$(basename "$f" .dump | cut -d. -f2)
    if ! cmp -s "$f" "$OUT/solo.$q.dump"; then
        echo "FAIL: $(basename "$f") differs from the solo $q run"
        FAILED=1
    fi
    CHECKED=$((CHECKED + 1))
done
[ "$CHECKED" -eq "$TENANTS" ] || { echo "FAIL: expected $TENANTS dumps, found $CHECKED"; exit 1; }
[ "$FAILED" -eq 0 ] || exit 1
echo "ok: all $TENANTS tenant dumps are byte-identical to solo runs"

wait "$SERVE_PID"
SERVE_PID=""
echo "serving smoke: all checks passed"
