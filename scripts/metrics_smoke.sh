#!/bin/sh
# End-to-end smoke test for the live-metrics exporters (CI runs this):
#
#   1. run a pipelined plan with --metrics-addr + --metrics-out on an
#      ephemeral port (the run announces the bound address; fixed ports
#      collide on shared CI hosts),
#   2. curl the Prometheus endpoint while the plan is live (the linger
#      keeps it up even if the run finishes first),
#   3. check the exposition contains per-stage progress gauges, a
#      nonzero TTFA histogram, and phase busy-time counters,
#   4. validate the JSONL snapshot stream with `onepass metrics-validate`.
#
# Set SMOKE_OUT_DIR to keep the logs and snapshots (CI uploads it on
# failure).
set -e

OUT=${SMOKE_OUT_DIR:-$(mktemp -d)}
mkdir -p "$OUT"
cleanup() {
    [ -z "${SMOKE_OUT_DIR:-}" ] && rm -rf "$OUT" || true
}
trap cleanup EXIT

cargo build --release --bin onepass

./target/release/onepass plan top-k --records 300000 \
    --metrics-addr 127.0.0.1:0 --metrics-out "$OUT/snaps.jsonl" \
    --metrics-linger-ms 4000 2> "$OUT/plan.err" &
PLAN_PID=$!

# The bound address is announced on stderr ("serving metrics on URL").
URL=""
for _ in $(seq 1 40); do
    URL=$(sed -n 's/^serving metrics on //p' "$OUT/plan.err")
    [ -n "$URL" ] && break
    sleep 0.25
done
[ -n "$URL" ] || { echo "FAIL: plan never announced its metrics address"; cat "$OUT/plan.err"; exit 1; }

# Scrape as soon as the listener answers; retry while the plan warms up.
EXPO=""
for _ in $(seq 1 40); do
    if EXPO=$(curl -sf "$URL" 2>/dev/null) && [ -n "$EXPO" ]; then
        break
    fi
    sleep 0.25
done
[ -n "$EXPO" ] || { echo "FAIL: metrics endpoint never answered"; exit 1; }
echo "$EXPO" | head -5

# A second scrape near the end of the run (during linger) sees the
# final state: progress at 1, TTFA observed.
wait_for_final() {
    for _ in $(seq 1 40); do
        FINAL=$(curl -sf "$URL" 2>/dev/null) || FINAL=""
        if echo "$FINAL" | grep -q '^onepass_plan_ttfa_seconds_count{[^}]*} [1-9]'; then
            echo "$FINAL"
            return 0
        fi
        sleep 0.25
    done
    echo "$FINAL"
}
FINAL=$(wait_for_final)
echo "$FINAL" > "$OUT/final.prom"

check() {
    if echo "$FINAL" | grep -qE "$2"; then
        echo "ok: $1"
    else
        echo "FAIL: $1 (pattern: $2)"
        echo "$FINAL" | head -40
        exit 1
    fi
}

check "exposition TYPE lines"        '^# TYPE onepass_stage_progress_ratio gauge'
check "per-stage progress gauges"    '^onepass_stage_progress_ratio\{stage="[^"]+"\} '
check "nonzero TTFA histogram"       '^onepass_plan_ttfa_seconds_count\{[^}]*\} [1-9]'
check "TTFA quantiles"               '^onepass_plan_ttfa_seconds\{[^}]*quantile="0.99"[^}]*\} '
check "phase busy-time counters"     '^onepass_engine_phase_micros_total\{[^}]*phase="[a-z_]+"'
check "shuffle byte counters"        '^onepass_engine_shuffle_bytes_total\{stage="[^"]+"\} [0-9]'
# Both plan stages are in-node-eligible one-pass jobs, so their worker
# combiners must have flushed (and observed the ratio) at least once.
check "in-node combine ratio histogram" '^onepass_innode_combine_ratio_count\{[^}]*\} [1-9]'

wait "$PLAN_PID"

# JSONL schema round-trip, and the snapshot stream must carry the
# in-node combine ratio family the exposition check saw.
./target/release/onepass metrics-validate "$OUT/snaps.jsonl"
grep -q '"name":"onepass_innode_combine_ratio"' "$OUT/snaps.jsonl" \
    || { echo "FAIL: snapshots missing onepass_innode_combine_ratio"; exit 1; }

echo "metrics smoke: all checks passed"
