#!/usr/bin/env bash
# Refresh the committed perf-gate baseline (BENCH_BASELINE.json).
#
# Runs the three gated benchmark suites with the vendored criterion's
# --save-baseline, then rewrites BENCH_BASELINE.json via exp_benchdiff
# --refresh (which dedups and normalises the file). Run on a quiet
# machine and commit the result whenever an intentional perf change
# trips the CI bench-regress job.
set -euo pipefail
cd "$(dirname "$0")/.."

export CRITERION_HOME="${CRITERION_HOME:-$PWD/target/criterion}"
rm -f "$CRITERION_HOME/refresh.json"

# Each suite runs several times; the checker keeps the best-scoring run
# per benchmark, so transient machine noise doesn't land in the baseline.
runs="${ONEPASS_BENCH_RUNS:-3}"
for i in $(seq "$runs"); do
  for bench in bench_segment bench_pipeline bench_merge; do
    cargo bench -q -p onepass-bench --bench "$bench" -- --save-baseline refresh
  done
done

cargo run -q --release -p onepass-bench --bin exp_benchdiff -- \
  --refresh --current refresh
