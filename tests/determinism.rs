//! Determinism and robustness: the simulator must be bit-identical
//! across runs; the engine's final output must be independent of worker
//! counts, shuffle mode, split sizes, and spill backends.

use std::collections::BTreeMap;

use onepass::prelude::*;
use onepass_runtime::driver::{EngineConfig, SpillBackend};
use onepass_workloads::{make_splits, page_frequency, ClickGen, ClickGenConfig};

fn final_map(report: &onepass_runtime::JobReport) -> BTreeMap<Vec<u8>, Vec<u8>> {
    report
        .outputs
        .iter()
        .filter(|o| o.kind == EmitKind::Final)
        .map(|o| (o.key.clone(), o.value.clone()))
        .collect()
}

fn records() -> Vec<Vec<u8>> {
    let mut gen = ClickGen::new(ClickGenConfig {
        users: 200,
        urls: 150,
        ..Default::default()
    });
    gen.text_records(8_000)
}

#[test]
fn sim_is_bit_deterministic() {
    let run = || {
        run_sim_job(SimJobSpec::new(
            SystemType::Hop,
            ClusterSpec::paper_cluster(StorageConfig::HddPlusSsd),
            WorkloadProfile::inverted_index().scaled(0.05),
        ))
    };
    let a = run();
    let b = run();
    assert_eq!(a.completion_secs, b.completion_secs);
    assert_eq!(a.events, b.events);
    assert_eq!(a.spill_written_mb, b.spill_written_mb);
    assert_eq!(a.series.cpu_util_pct.points, b.series.cpu_util_pct.points);
    assert_eq!(a.series.iowait_pct.points, b.series.iowait_pct.points);
}

#[test]
fn output_independent_of_worker_count() {
    let recs = records();
    let mut reference = None;
    for workers in [1, 2, 8] {
        let job = page_frequency::job()
            .reducers(3)
            .preset_hadoop()
            .build()
            .unwrap();
        let engine = Engine::with_config(EngineConfig::builder().map_workers(workers).build());
        let report = engine.run(&job, make_splits(recs.clone(), 500)).unwrap();
        let got = final_map(&report);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "{workers} workers diverged"),
        }
    }
}

#[test]
fn output_independent_of_split_size() {
    let recs = records();
    let mut reference = None;
    for per_split in [100, 1000, 8000] {
        let job = page_frequency::job()
            .reducers(2)
            .preset_onepass()
            .build()
            .unwrap();
        let report = Engine::new()
            .run(&job, make_splits(recs.clone(), per_split))
            .unwrap();
        let got = final_map(&report);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "split size {per_split} diverged"),
        }
    }
}

#[test]
fn output_independent_of_shuffle_mode_and_granularity() {
    let recs = records();
    let mut reference = None;
    for shuffle in [
        ShuffleMode::Pull,
        ShuffleMode::Push { granularity: 7 },
        ShuffleMode::Push { granularity: 5000 },
    ] {
        let job = page_frequency::job()
            .reducers(2)
            .shuffle(shuffle)
            .build()
            .unwrap();
        let report = Engine::new()
            .run(&job, make_splits(recs.clone(), 800))
            .unwrap();
        let got = final_map(&report);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "{shuffle:?} diverged"),
        }
    }
}

#[test]
fn output_independent_of_spill_backend_and_budget() {
    let recs = records();
    let mut reference = None;
    for (spill, budget) in [
        (SpillBackend::Memory, usize::MAX / 4),
        (SpillBackend::Memory, 16 * 1024),
        (SpillBackend::TempFiles, 16 * 1024),
    ] {
        let job = page_frequency::job()
            .reducers(2)
            .preset_hadoop()
            .reduce_budget_bytes(budget)
            .build()
            .unwrap();
        let engine = Engine::with_config(EngineConfig::builder().spill(spill).build());
        let report = engine.run(&job, make_splits(recs.clone(), 500)).unwrap();
        let got = final_map(&report);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "{spill:?}/{budget} diverged"),
        }
    }
}
