//! Multi-tenant serving: isolation, admission, poison handling.
//!
//! The serving layer's contract is that multiplexing changes *nothing*
//! about answers: every admitted tenant's final output is byte-identical
//! to running its query solo over the same records, no matter how many
//! other tenants share the governor pool, which spill policy arbitrates
//! shed pressure, or how many poison records the stream carries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use onepass::prelude::*;
use onepass_groupby::SumAgg;
use onepass_runtime::serve::{dump_final_answers, DEFAULT_INGEST};
use onepass_runtime::stream::SessionOptions;
use onepass_workloads::serving::{
    ingest_family, standard_catalog, CatalogConfig, CLICKS_INGEST, DOCS_INGEST,
};
use onepass_workloads::tenantgen::{assign_tenants, TenantGenConfig};
use onepass_workloads::{ClickGen, ClickGenConfig, DocGen, DocGenConfig};

fn click_records(n: usize) -> Vec<Vec<u8>> {
    ClickGen::new(ClickGenConfig::default()).text_records(n)
}

fn doc_records(n: usize) -> Vec<Vec<u8>> {
    DocGen::new(DocGenConfig::default()).records(n)
}

/// Run `query` solo (no governor, no multiplexing) over `records` and
/// dump its finals — the reference the serving layer must match.
fn solo_dump(catalog: &QueryCatalog, query: &str, records: &[Vec<u8>]) -> String {
    let compiled = catalog.resolve(query).expect("known query");
    let mut session = TenantSession::open(
        "solo",
        query,
        &compiled,
        &SessionOptions::default(),
        DlqConfig::default(),
    )
    .expect("open solo session");
    for chunk in records.chunks(512) {
        session.feed(chunk).expect("solo feed");
    }
    let close = session.close().expect("solo close");
    dump_final_answers(&close.answers)
}

#[test]
fn served_tenants_match_solo_batch_runs_across_all_queries() {
    let catalog = standard_catalog(CatalogConfig::default());
    let clicks = click_records(6_000);
    let docs = doc_records(80);

    let config = ServeConfig {
        pool_bytes: 8 << 20,
        shards: 3,
        ..ServeConfig::default()
    };
    let server = Server::start(config, catalog.clone(), None).expect("start server");

    // Two tenants per query so shards multiplex unlike queries.
    let mut handles = Vec::new();
    for round in 0..2 {
        for query in catalog.names() {
            let id = format!("t-{query}-{round}");
            handles.push(server.subscribe(&id, &query).expect("admit"));
        }
    }
    for chunk in clicks.chunks(512) {
        server
            .feed(CLICKS_INGEST, chunk.to_vec())
            .expect("feed clicks");
    }
    for chunk in docs.chunks(512) {
        server.feed(DOCS_INGEST, chunk.to_vec()).expect("feed docs");
    }
    server.close().expect("close server");

    for h in handles {
        let (_earlies, close) = h.wait_final().expect("final answers");
        let records: &[Vec<u8>] = if ingest_family(&h.query) == DOCS_INGEST {
            &docs
        } else {
            &clicks
        };
        assert_eq!(
            dump_final_answers(&close.answers),
            solo_dump(&catalog, &h.query, records),
            "tenant {} ({}) diverged from its solo run",
            h.id,
            h.query
        );
        assert_eq!(close.records_in, records.len() as u64);
        assert_eq!(close.dlq_poisoned, 0);
    }
}

#[test]
fn early_answers_surface_before_close() {
    let catalog = standard_catalog(CatalogConfig::default());
    let clicks = click_records(8_000);
    let server = Server::start(ServeConfig::default(), catalog, None).expect("start");
    let h = server
        .subscribe("early-bird", "page-frequency")
        .expect("admit");
    for chunk in clicks.chunks(1024) {
        server.feed(CLICKS_INGEST, chunk.to_vec()).expect("feed");
    }
    server.close().expect("close");
    let mut saw_early = false;
    loop {
        match h.events().recv().expect("event") {
            TenantEvent::Early(a) => saw_early = saw_early || !a.is_empty(),
            TenantEvent::Final(_) => break,
            TenantEvent::Error(e) => panic!("tenant failed: {e}"),
        }
    }
    assert!(
        saw_early,
        "frequent-key backend should emit early answers mid-stream"
    );
}

#[test]
fn admission_rejects_beyond_capacity_and_frees_seats_on_close() {
    let catalog = standard_catalog(CatalogConfig::default());
    let mut config = ServeConfig::default();
    config.admission.max_tenants = 2;
    config.admission.max_waiting = 0;
    let server = Server::start(config, catalog, None).expect("start");
    let _a = server.subscribe("a", "page-frequency").expect("admit a");
    let _b = server.subscribe("b", "per-user-count").expect("admit b");
    let err = server.subscribe("c", "page-frequency").unwrap_err();
    assert!(
        err.to_string().contains("rejected"),
        "expected rejection, got: {err}"
    );
    assert_eq!(server.active_tenants(), 2);
    server.close().expect("close");
    assert_eq!(server.active_tenants(), 0);
}

/// A query whose map panics on records tagged `POISON` — permanently, or
/// only for the first `transient` attempts per record (0 = always).
fn poisonable_catalog(transient: u32) -> QueryCatalog {
    let mut cat = QueryCatalog::new();
    let attempts = Arc::new(AtomicUsize::new(0));
    cat.register("poisonable-count", move || {
        let attempts = Arc::clone(&attempts);
        let map = move |record: &[u8], out: &mut dyn MapEmitter| {
            if record.starts_with(b"POISON") {
                if transient == 0 {
                    panic!("permanent poison");
                }
                let n = attempts.fetch_add(1, Ordering::SeqCst);
                if (n as u32) < transient {
                    panic!("transient poison");
                }
            }
            let key = record.split(|&b| b == b' ').next().unwrap_or(b"?");
            out.emit(key, &1u64.to_le_bytes());
        };
        Ok(StreamingQuery::single(
            JobSpec::builder("poisonable-count")
                .map_fn(Arc::new(map))
                .aggregate(Arc::new(SumAgg))
                .reducers(2)
                .preset_onepass()
                .build()?,
        ))
    });
    cat
}

#[test]
fn permanent_poison_is_buried_and_leaves_clean_answers() {
    let catalog = poisonable_catalog(0);
    let server = Server::start(ServeConfig::default(), catalog.clone(), None).expect("start");
    let h = server
        .subscribe("victim", "poisonable-count")
        .expect("admit");
    let mut records: Vec<Vec<u8>> = (0..500u32)
        .map(|i| format!("k{} x", i % 7).into_bytes())
        .collect();
    records.insert(100, b"POISON one".to_vec());
    records.insert(300, b"POISON two".to_vec());
    server.feed(DEFAULT_INGEST, records.clone()).expect("feed");
    server.close().expect("close");
    let (_earlies, close) = h.wait_final().expect("final");

    // The poisons died; the clean records all counted.
    assert_eq!(close.dlq_poisoned, 2);
    assert_eq!(close.dlq_dead, 2);
    assert_eq!(close.dlq_recovered, 0);
    assert_eq!(close.records_in, 500);
    let clean: Vec<Vec<u8>> = records
        .iter()
        .filter(|r| !r.starts_with(b"POISON"))
        .cloned()
        .collect();
    assert_eq!(
        dump_final_answers(&close.answers),
        solo_dump(&catalog, "poisonable-count", &clean)
    );
}

#[test]
fn transient_poison_recovers_and_is_counted() {
    // Panics on the first two attempts (the batch-level feed and the
    // per-record isolation pass); the DLQ retry sweep recovers it.
    let catalog = poisonable_catalog(2);
    let server = Server::start(ServeConfig::default(), catalog, None).expect("start");
    let h = server
        .subscribe("flaky", "poisonable-count")
        .expect("admit");
    let mut records: Vec<Vec<u8>> = (0..200u32)
        .map(|i| format!("k{}", i % 5).into_bytes())
        .collect();
    records.insert(50, b"POISON flaky".to_vec());
    server.feed(DEFAULT_INGEST, records).expect("feed");
    server.close().expect("close");
    let (_earlies, close) = h.wait_final().expect("final");
    assert_eq!(close.dlq_poisoned, 1);
    assert_eq!(close.dlq_recovered, 1);
    assert_eq!(close.dlq_dead, 0);
    // The recovered record's key appears in the finals.
    let dump = dump_final_answers(&close.answers);
    assert!(
        dump.contains("POISON\t"),
        "recovered record must contribute its key: {dump}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole isolation property: N concurrent tenants over a
    /// shared governor pool under shed pressure, with seeded poison in
    /// the stream, all produce finals byte-identical to their solo runs —
    /// across spill policies.
    #[test]
    fn tenant_isolation_under_pressure_and_poison(
        policy_idx in 0usize..3,
        tenants in 2usize..5,
        poison_every in 40usize..90,
        records_n in 2_000usize..4_000,
    ) {
        let policy_name = ["largest-consumer", "round-robin", "coldest-keys"][policy_idx];
        let catalog = standard_catalog(CatalogConfig::default());
        let clicks = click_records(records_n);

        // A tiny pool forces the governor over high water, so sheds and
        // backpressure actually engage.
        let config = ServeConfig {
            pool_bytes: 256 * 1024,
            policy: policy_by_name(policy_name).expect("known policy"),
            high_water: 0.5,
            shards: 2,
            ..ServeConfig::default()
        };
        let server = Server::start(config, catalog.clone(), None).expect("start");

        let queries: Vec<String> = vec![
            "page-frequency".into(),
            "per-user-count".into(),
            "sessionization".into(),
            "top-k".into(),
        ];
        let specs = assign_tenants(tenants, &queries, &TenantGenConfig::default());
        let handles: Vec<TenantHandle> = specs
            .iter()
            .map(|t| server.subscribe(&t.id, &t.query).expect("admit"))
            .collect();

        // Click maps skip malformed records, so poison here exercises the
        // graceful-skip path inside every tenant at once.
        let mut stream = clicks.clone();
        let mut i = poison_every;
        while i < stream.len() {
            stream.insert(i, b"\xff\xfenot a click".to_vec());
            i += poison_every;
        }
        for chunk in stream.chunks(256) {
            server.feed(CLICKS_INGEST, chunk.to_vec()).expect("feed");
        }
        server.close().expect("close");

        for (spec, h) in specs.iter().zip(handles) {
            let (_earlies, close) = h.wait_final().expect("final");
            // Malformed clicks are skipped by the map, so the solo
            // reference over the *clean* stream must match (the poisons
            // emit nothing).
            prop_assert_eq!(
                dump_final_answers(&close.answers),
                solo_dump(&catalog, &spec.query, &stream),
                "tenant {} ({}) diverged under policy {}",
                &spec.id, &spec.query, policy_name
            );
        }
    }
}
