//! Stress tests: moderately large end-to-end runs with real file I/O and
//! constrained memory, verifying exactness, resource cleanup and that no
//! temp files leak. The `#[ignore]`d variants run the same checks at 10×
//! the size (`cargo test --release -- --ignored`).

use std::collections::BTreeMap;

use onepass::prelude::*;
use onepass_runtime::driver::{EngineConfig, SpillBackend};
use onepass_workloads::{make_splits, per_user_count, sessionization, ClickGen, ClickGenConfig};

fn temp_spill_dirs() -> usize {
    std::fs::read_dir(std::env::temp_dir())
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| {
                    e.file_name()
                        .to_string_lossy()
                        .starts_with("onepass-spill-")
                })
                .count()
        })
        .unwrap_or(0)
}

fn run_pair(records: usize) {
    let mut gen = ClickGen::new(ClickGenConfig {
        users: 20_000,
        user_skew: 1.1,
        ..Default::default()
    });
    let data = gen.text_records(records);
    let dirs_before = temp_spill_dirs();

    let engine = Engine::with_config(
        EngineConfig::builder()
            .spill(SpillBackend::TempFiles)
            .build(),
    );
    let mut finals: Vec<BTreeMap<Vec<u8>, Vec<u8>>> = Vec::new();
    for preset_onepass in [false, true] {
        let builder = sessionization::job()
            .reducers(4)
            .reduce_budget_bytes(256 * 1024); // tight: forces real spills
        let job = if preset_onepass {
            builder.preset_onepass()
        } else {
            builder.preset_hadoop()
        }
        .build()
        .unwrap();
        let report = engine
            .run(&job, make_splits(data.clone(), records / 64))
            .unwrap();
        assert!(
            report.reduce_spill_io.bytes_written > 0,
            "tight budget must force spilling"
        );
        finals.push(
            report
                .outputs
                .iter()
                .filter(|o| o.kind == EmitKind::Final)
                .map(|o| (o.key.clone(), o.value.clone()))
                .collect(),
        );
    }
    assert_eq!(finals[0], finals[1], "paths disagree under file I/O");
    assert!(!finals[0].is_empty());
    assert_eq!(
        temp_spill_dirs(),
        dirs_before,
        "temp spill directories leaked"
    );
}

#[test]
fn file_backed_spilling_agrees_and_cleans_up() {
    run_pair(120_000);
}

#[test]
#[ignore = "10x-size variant; run with --ignored"]
fn file_backed_spilling_agrees_and_cleans_up_large() {
    run_pair(1_200_000);
}

#[test]
fn counting_workload_under_pressure_is_exact() {
    let records = 150_000;
    let mut gen = ClickGen::new(ClickGenConfig {
        users: 50_000,
        ..Default::default()
    });
    let data = gen.text_records(records);
    let mut truth: BTreeMap<u32, u64> = BTreeMap::new();
    for r in &data {
        let c = onepass_workloads::clickgen::Click::from_text(r).unwrap();
        *truth.entry(c.user).or_default() += 1;
    }

    let job = per_user_count::job()
        .reducers(4)
        .preset_onepass()
        .reduce_budget_bytes(128 * 1024)
        .build()
        .unwrap();
    let report = Engine::new().run(&job, make_splits(data, 2000)).unwrap();
    let mut total = 0u64;
    let mut groups = 0usize;
    for o in report.outputs.iter().filter(|o| o.kind == EmitKind::Final) {
        let user = u32::from_le_bytes(o.key.as_slice().try_into().unwrap());
        let n = u64::from_le_bytes(o.value.as_slice().try_into().unwrap());
        assert_eq!(truth[&user], n, "user {user}");
        total += n;
        groups += 1;
    }
    assert_eq!(total, records as u64);
    assert_eq!(groups, truth.len());
}
