//! Cross-crate integration tests: full MapReduce jobs through the public
//! facade, checked against brute-force reference computations.

use std::collections::BTreeMap;
use std::sync::Arc;

use onepass::prelude::*;
use onepass_workloads::clickgen::Click;
use onepass_workloads::sessionization::SessionizeAgg;
use onepass_workloads::{
    make_splits, page_frequency, per_user_count, sessionization, ClickGen, ClickGenConfig,
};

fn clicks(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut gen = ClickGen::new(ClickGenConfig {
        users: 500,
        urls: 300,
        seed,
        ..Default::default()
    });
    gen.text_records(n)
}

fn final_map(report: &onepass_runtime::JobReport) -> BTreeMap<Vec<u8>, Vec<u8>> {
    report
        .outputs
        .iter()
        .filter(|o| o.kind == EmitKind::Final)
        .map(|o| (o.key.clone(), o.value.clone()))
        .collect()
}

fn dec(v: &[u8]) -> u64 {
    u64::from_le_bytes(v.try_into().unwrap())
}

#[test]
fn page_frequency_all_presets_match_brute_force() {
    let records = clicks(20_000, 1);
    let mut truth: BTreeMap<u32, u64> = BTreeMap::new();
    for r in &records {
        *truth.entry(Click::from_text(r).unwrap().url).or_default() += 1;
    }

    for (label, job) in [
        (
            "hadoop",
            page_frequency::job()
                .reducers(3)
                .preset_hadoop()
                .build()
                .unwrap(),
        ),
        (
            "hop",
            page_frequency::job()
                .reducers(3)
                .preset_hop()
                .build()
                .unwrap(),
        ),
        (
            "onepass",
            page_frequency::job()
                .reducers(3)
                .preset_onepass()
                .build()
                .unwrap(),
        ),
    ] {
        let report = Engine::new()
            .run(&job, make_splits(records.clone(), 1500))
            .unwrap();
        let got = final_map(&report);
        assert_eq!(got.len(), truth.len(), "{label}: group count");
        for (url, count) in &truth {
            let v = got
                .get(url.to_le_bytes().as_slice())
                .unwrap_or_else(|| panic!("{label}: url {url} missing"));
            assert_eq!(dec(v), *count, "{label}: count for url {url}");
        }
    }
}

#[test]
fn sessionization_agrees_across_backends_and_memory_pressure() {
    let records = clicks(15_000, 2);
    let reference = {
        let job = sessionization::job()
            .reducers(2)
            .preset_hadoop()
            .build()
            .unwrap();
        let report = Engine::new()
            .run(&job, make_splits(records.clone(), 2000))
            .unwrap();
        final_map(&report)
    };
    assert!(!reference.is_empty());

    // Constrained memory + hash backends must produce identical sessions.
    for backend in [
        ReduceBackend::HybridHash { fanout: 4 },
        ReduceBackend::IncHash { early: None },
        ReduceBackend::FreqHash(Default::default()),
    ] {
        let label = backend.label();
        let job = sessionization::job()
            .reducers(2)
            .map_side(MapSideMode::HashPartitionOnly)
            .backend(backend)
            .reduce_budget_bytes(64 * 1024)
            .build()
            .unwrap();
        let report = Engine::new()
            .run(&job, make_splits(records.clone(), 2000))
            .unwrap();
        assert_eq!(final_map(&report), reference, "{label} diverged");
    }
}

#[test]
fn sessions_never_contain_cross_gap_clicks() {
    let records = clicks(8_000, 3);
    let job = sessionization::job()
        .reducers(2)
        .preset_onepass()
        .build()
        .unwrap();
    let report = Engine::new().run(&job, make_splits(records, 1000)).unwrap();
    let gap = onepass_workloads::sessionization::DEFAULT_GAP_S;
    let mut sessions_checked = 0;
    for (_, v) in final_map(&report) {
        for session in SessionizeAgg::decode_sessions(&v) {
            sessions_checked += 1;
            for w in session.windows(2) {
                assert!(w[1].0 >= w[0].0, "session must be time-ordered");
                assert!(
                    w[1].0 - w[0].0 <= gap,
                    "session contains a gap larger than the threshold"
                );
            }
        }
    }
    assert!(sessions_checked > 0);
}

#[test]
fn per_user_count_streaming_equals_batch() {
    let records = clicks(10_000, 4);
    // Batch run.
    let job = per_user_count::job()
        .reducers(2)
        .preset_onepass()
        .build()
        .unwrap();
    let batch = Engine::new()
        .run(&job, make_splits(records.clone(), 1000))
        .unwrap();
    let batch_counts = final_map(&batch);

    // Streaming run over the same data.
    let job = per_user_count::job()
        .reducers(2)
        .backend(ReduceBackend::IncHash { early: None })
        .build()
        .unwrap();
    let mut session = StreamSession::new(job).unwrap();
    for chunk in records.chunks(500) {
        session.feed(chunk.iter().map(|r| r.as_slice())).unwrap();
    }
    let (answers, _) = session.close().unwrap();
    let stream_counts: BTreeMap<Vec<u8>, Vec<u8>> = answers
        .into_iter()
        .filter(|a| a.kind == EmitKind::Final)
        .map(|a| (a.key, a.value))
        .collect();

    assert_eq!(batch_counts, stream_counts);
}

#[test]
fn early_output_happens_before_final_under_hop() {
    let records = clicks(20_000, 5);
    let job = page_frequency::job()
        .reducers(2)
        .preset_hop()
        .build()
        .unwrap();
    let report = Engine::new().run(&job, make_splits(records, 500)).unwrap();
    assert!(report.snapshots > 0, "HOP must snapshot");
    let first_early = report.first_early_at.expect("early output exists");
    let first_final = report.first_final_at.expect("final output exists");
    assert!(first_early <= first_final);
}

#[test]
fn collect_output_off_still_reports_stats() {
    let records = clicks(5_000, 6);
    let job = page_frequency::job()
        .reducers(2)
        .collect_mode(CollectOutput::Discard)
        .preset_hadoop()
        .build()
        .unwrap();
    let report = Engine::new().run(&job, make_splits(records, 1000)).unwrap();
    assert!(report.outputs.is_empty());
    assert!(report.groups_out > 0);
    assert!(report.input_records == 5_000);
}

#[test]
fn avg_session_gap_via_algebraic_aggregate() {
    // AVG inter-click gap per user: algebraic aggregate end-to-end, with
    // map-side combining, checked against brute force.
    use onepass_groupby::AvgAgg;
    let records = clicks(6_000, 9);
    // value = url id as a stand-in numeric metric.
    fn metric_map(record: &[u8], out: &mut dyn onepass_runtime::MapEmitter) {
        if let Some(c) = Click::from_text(record) {
            out.emit(&c.user.to_le_bytes(), &(c.url as u64).to_le_bytes());
        }
    }
    let mut sums: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for r in &records {
        let c = Click::from_text(r).unwrap();
        let e = sums.entry(c.user).or_default();
        e.0 += c.url as u64;
        e.1 += 1;
    }

    let job = onepass_runtime::JobSpec::builder("avg-metric")
        .map_fn(Arc::new(metric_map))
        .aggregate(Arc::new(AvgAgg))
        .reducers(3)
        .preset_onepass()
        .build()
        .unwrap();
    assert_eq!(job.map_side, MapSideMode::HashCombine, "AVG is combinable");
    let report = Engine::new().run(&job, make_splits(records, 500)).unwrap();
    let got = final_map(&report);
    assert_eq!(got.len(), sums.len());
    for (user, (sum, count)) in sums {
        let mean = AvgAgg::decode_mean(&got[user.to_le_bytes().as_slice()]);
        let expect = sum as f64 / count as f64;
        assert!(
            (mean - expect).abs() < 1e-9,
            "user {user}: mean {mean} vs {expect}"
        );
    }
}

#[test]
fn approximate_top_k_tracks_exact_counts() {
    use onepass_workloads::top_k::TopKUrls;
    let records = clicks(30_000, 11);
    // Exact counts via the engine.
    let job = page_frequency::job()
        .reducers(2)
        .preset_hadoop()
        .build()
        .unwrap();
    let report = Engine::new()
        .run(&job, make_splits(records.clone(), 3000))
        .unwrap();
    let mut exact: Vec<(u32, u64)> = final_map(&report)
        .into_iter()
        .map(|(k, v)| {
            (
                u32::from_le_bytes(k.as_slice().try_into().unwrap()),
                dec(&v),
            )
        })
        .collect();
    exact.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

    // Streaming approximate top-k.
    let mut topk = TopKUrls::new(5, 40);
    for r in &records {
        topk.observe_text(r);
    }
    let approx = topk.top();
    // The top-1 must agree outright; the approximate top-5 must be a
    // subset of the exact top-10 (sketch bounds allow local swaps).
    assert_eq!(approx[0].0, exact[0].0, "top-1 url must match");
    let exact_top10: Vec<u32> = exact.iter().take(10).map(|&(u, _)| u).collect();
    for (url, _, _) in &approx {
        assert!(
            exact_top10.contains(url),
            "approx top-5 member {url} outside exact top-10"
        );
    }
}

#[test]
fn engine_handles_single_record_and_single_reducer() {
    let job = page_frequency::job()
        .reducers(1)
        .preset_onepass()
        .build()
        .unwrap();
    let one = Click {
        ts: 1,
        user: 2,
        url: 3,
    };
    let report = Engine::new()
        .run(&job, vec![Split::new(vec![one.to_text()])])
        .unwrap();
    let got = final_map(&report);
    assert_eq!(got.len(), 1);
    assert_eq!(dec(&got[3u32.to_le_bytes().as_slice()]), 1);
}
