//! The paper's headline claims, asserted as tests. Each test names the
//! section it covers; together they are the executable form of
//! EXPERIMENTS.md's shape checks.

use onepass::prelude::*;
use onepass_simcluster::SimReport;
use onepass_workloads::{make_splits, per_user_count, sessionization, ClickGen, ClickGenConfig};

fn sim(system: SystemType, storage: StorageConfig, scale: f64) -> SimReport {
    let mut spec = SimJobSpec::new(
        system,
        ClusterSpec::paper_cluster(storage),
        WorkloadProfile::sessionization().scaled(scale),
    );
    // Scale the reducer buffer with the data so the runs-per-reducer
    // regime (and hence the multi-pass merge behaviour) matches the
    // full-scale run.
    spec.reduce_mem_mb *= scale;
    run_sim_job(spec)
}

const SCALE: f64 = 0.25; // quarter-scale keeps the suite fast; shapes hold

#[test]
fn s3b3_sorting_consumes_substantial_map_cpu() {
    // Table II: sorting is 39-48% of map-phase CPU on the real engine.
    let mut gen = ClickGen::new(ClickGenConfig::default());
    let splits = make_splits(gen.text_records(60_000), 4_000);
    let job = per_user_count::job()
        .reducers(2)
        .collect_mode(CollectOutput::Discard)
        .preset_hadoop()
        .build()
        .unwrap();
    let r = Engine::new().run(&job, splits).unwrap();
    let map_fn = r.map_profile.time(Phase::MapFn).as_secs_f64();
    let sort = r.map_profile.time(Phase::MapSort).as_secs_f64();
    let share = sort / (map_fn + sort);
    assert!(
        share > 0.15,
        "sort share of map CPU should be substantial, got {share:.2}"
    );
}

#[test]
fn s3b4_multipass_merge_blocks_and_costs_io() {
    let r = sim(SystemType::StockHadoop, StorageConfig::SingleHdd, SCALE);
    // Reduce-side spill exceeds map output? No — it exceeds zero and the
    // merge re-reads data (I/O amplification).
    assert!(r.spill_written_mb > 0.0);
    assert!(
        r.merge_read_mb > r.spill_written_mb * 0.5,
        "merge re-reads spilled data"
    );
    // Blocking: a merge phase exists between map and reduce phases.
    assert!(r.series.merge_tasks.max_y().unwrap_or(0.0) >= 1.0);
    // The CPU valley: mid-job utilization drops below the map phase's.
    let early = r.mean_cpu_util(0.1, 0.4);
    let valley = r.mean_cpu_util(0.48, 0.6);
    assert!(
        valley < early,
        "expected utilization valley: early {early:.0}% vs mid {valley:.0}%"
    );
    // And iowait spikes there (Fig. 2c).
    assert!(r.mean_iowait(0.48, 0.6) > r.mean_iowait(0.1, 0.4));
}

#[test]
fn s3c_storage_variants_help_but_do_not_unblock() {
    let base = sim(SystemType::StockHadoop, StorageConfig::SingleHdd, SCALE);
    let ssd = sim(SystemType::StockHadoop, StorageConfig::HddPlusSsd, SCALE);
    assert!(
        ssd.completion_secs < base.completion_secs,
        "SSD must reduce running time"
    );
    // But the blocking merge phase is still present.
    assert!(ssd.series.merge_tasks.max_y().unwrap_or(0.0) >= 1.0);

    let sep = sim(
        SystemType::StockHadoop,
        StorageConfig::Separated,
        SCALE * 0.5,
    );
    assert!(sep.series.merge_tasks.max_y().unwrap_or(0.0) >= 1.0);
}

#[test]
fn s3d_hop_is_slower_and_still_blocked() {
    let base = sim(SystemType::StockHadoop, StorageConfig::SingleHdd, SCALE);
    let hop = sim(SystemType::Hop, StorageConfig::SingleHdd, SCALE);
    assert!(
        hop.completion_secs > base.completion_secs,
        "paper: HOP total running time is longer than stock Hadoop"
    );
    assert!(hop.snapshots > 0);
    assert!(hop.series.merge_tasks.max_y().unwrap_or(0.0) >= 1.0);
}

#[test]
fn s5_hash_system_wins_on_time_and_spill_in_simulation() {
    let base = sim(SystemType::StockHadoop, StorageConfig::SingleHdd, SCALE);
    let hash = sim(SystemType::HashOnePass, StorageConfig::SingleHdd, SCALE);
    assert!(hash.completion_secs < base.completion_secs * 0.8);
    assert!(hash.merge_written_mb == 0.0, "no multi-pass merge at all");
    assert!(hash.spill_written_mb < base.spill_written_mb * 0.5);
}

#[test]
fn s5_engine_cpu_and_spill_savings() {
    // The §V prototype comparison on the real engine, small scale.
    let records = 150_000;
    let run = |preset_onepass: bool| {
        let mut gen = ClickGen::new(ClickGenConfig {
            users: 5_000,
            user_skew: 1.15,
            ..Default::default()
        });
        let splits = make_splits(gen.text_records(records), 150);
        let builder = sessionization::job()
            .reducers(2)
            .collect_mode(CollectOutput::Discard);
        let job = if preset_onepass {
            builder.preset_onepass()
        } else {
            builder.preset_hadoop()
        }
        .reduce_budget_bytes(8 * 1024 * 1024)
        .build()
        .unwrap();
        Engine::new().run(&job, splits).unwrap()
    };
    let hadoop = run(false);
    let onepass = run(true);
    assert_eq!(hadoop.groups_out, onepass.groups_out);
    let h_cpu = hadoop.total_compute_cpu().as_secs_f64();
    let o_cpu = onepass.total_compute_cpu().as_secs_f64();
    assert!(
        o_cpu < h_cpu,
        "hash path must save CPU: {o_cpu:.3}s vs {h_cpu:.3}s"
    );
    assert!(
        onepass.reduce_spill_traffic() * 10 < hadoop.reduce_spill_traffic().max(1),
        "hash path must spill at least 10x less: {} vs {}",
        onepass.reduce_spill_traffic(),
        hadoop.reduce_spill_traffic()
    );
    // No sorting anywhere on the hash path.
    assert_eq!(
        onepass.map_profile.time(Phase::MapSort),
        std::time::Duration::ZERO
    );
}

#[test]
fn table1_volume_ratios() {
    // The four intermediate/input ratios of Table I, from the simulator.
    let expect = [
        (WorkloadProfile::sessionization(), 2.5, 0.35),
        (WorkloadProfile::page_frequency(), 0.004, 0.6),
        (WorkloadProfile::per_user_count(), 0.016, 0.6),
        (WorkloadProfile::inverted_index(), 0.70, 0.25),
    ];
    for (w, paper_ratio, tolerance) in expect {
        let name = w.name;
        let r = run_sim_job(SimJobSpec::new(
            SystemType::StockHadoop,
            ClusterSpec::paper_cluster(StorageConfig::SingleHdd),
            w.scaled(SCALE),
        ));
        let got = r.intermediate_ratio();
        let dev = (got - paper_ratio).abs() / paper_ratio;
        assert!(
            dev <= tolerance,
            "{name}: intermediate ratio {got:.3} vs paper {paper_ratio:.3}"
        );
    }
}

#[test]
fn table1_completion_time_ordering() {
    let times: Vec<f64> = [
        WorkloadProfile::per_user_count(),
        WorkloadProfile::page_frequency(),
        WorkloadProfile::sessionization(),
        WorkloadProfile::inverted_index(),
    ]
    .into_iter()
    .map(|w| {
        run_sim_job(SimJobSpec::new(
            SystemType::StockHadoop,
            ClusterSpec::paper_cluster(StorageConfig::SingleHdd),
            w.scaled(SCALE),
        ))
        .completion_secs
    })
    .collect();
    // Paper: 24 < 40 < 76 < 118 minutes.
    assert!(
        times[0] < times[1] && times[1] < times[2] && times[2] < times[3],
        "completion ordering violated: {times:?}"
    );
}
