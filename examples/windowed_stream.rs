//! Windowed stream analytics: per-minute top pages over a live click
//! stream, with watermark-driven window closing and bounded lateness —
//! the stream-processing end state the paper's architecture targets.
//!
//! Run: `cargo run --release --example windowed_stream`

use std::sync::Arc;

use onepass::prelude::*;
use onepass_workloads::clickgen::Click;
use onepass_workloads::{ClickGen, ClickGenConfig};

fn main() {
    println!("per-minute page counts over a live click stream\n");

    // Map: url is the key; event time comes from the click timestamp.
    let job = JobSpec::builder("per-minute-pages")
        .map_fn(Arc::new(|record: &[u8], out: &mut dyn MapEmitter| {
            if let Some(c) = Click::from_text(record) {
                out.emit(&c.url.to_le_bytes(), &[]);
            }
        }))
        .aggregate(Arc::new(CountAgg))
        .reducers(2)
        .backend(ReduceBackend::IncHash { early: None })
        .build()
        .unwrap();

    let mut session = WindowedSession::new(
        job,
        Arc::new(|record: &[u8]| Click::from_text(record).map(|c| c.ts as u64)),
        WindowConfig {
            window_len: 60,      // 1-minute tumbling windows
            allowed_lateness: 5, // tolerate 5 s of disorder
        },
    )
    .unwrap();

    // session_break_p = 0 keeps event time near-monotonic: this example
    // is about windows, not out-of-order handling (allowed_lateness
    // absorbs the generator's small per-user reorderings).
    let mut gen = ClickGen::new(ClickGenConfig {
        urls: 500,
        url_skew: 1.3,
        mean_interarrival_s: 0.01,
        session_break_p: 0.0,
        ..Default::default()
    });

    let mut windows_seen = 0;
    let mut total_clicks = 0u64;
    let mut windowed_clicks = 0u64;
    for _batch in 0..40 {
        let records = gen.text_records(2_000);
        total_clicks += records.len() as u64;
        let closed = session.feed(records.iter().map(|r| r.as_slice())).unwrap();
        for w in closed {
            windows_seen += 1;
            windowed_clicks += w
                .answers
                .iter()
                .filter(|a| a.kind == EmitKind::Final)
                .map(|a| u64::from_le_bytes(a.value.as_slice().try_into().unwrap()))
                .sum::<u64>();
            let mut top: Vec<(u32, u64)> = w
                .answers
                .iter()
                .filter(|a| a.kind == EmitKind::Final)
                .map(|a| {
                    (
                        u32::from_le_bytes(a.key.as_slice().try_into().unwrap()),
                        u64::from_le_bytes(a.value.as_slice().try_into().unwrap()),
                    )
                })
                .collect();
            top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            let head: Vec<String> = top
                .iter()
                .take(3)
                .map(|(u, c)| format!("/page/{u} ({c})"))
                .collect();
            if windows_seen <= 6 {
                println!(
                    "  window [{:>6}, {:>6}): {:5} clicks | top: {}",
                    w.start,
                    w.end,
                    top.iter().map(|(_, c)| c).sum::<u64>(),
                    head.join(", ")
                );
            }
        }
    }
    let session_late = session.late_dropped() + session.malformed();
    let tail = session.flush().unwrap();
    let tail_clicks: u64 = tail
        .iter()
        .flat_map(|w| &w.answers)
        .filter(|a| a.kind == EmitKind::Final)
        .map(|a| u64::from_le_bytes(a.value.as_slice().try_into().unwrap()))
        .sum();

    let late = session_late;
    println!(
        "\n{} windows closed while streaming, {} flushed at end; \
         {} of {total_clicks} clicks windowed exactly once ({} dropped as late).",
        windows_seen,
        tail.len(),
        windowed_clicks + tail_clicks,
        late
    );
    assert!(windows_seen > 0);
    assert_eq!(windowed_clicks + tail_clicks + late, total_clicks);
}
