//! Online aggregation / stream processing: the one-pass API that the
//! whole paper argues MapReduce should support.
//!
//! A live click stream is fed into a [`StreamSession`] batch by batch.
//! Two incremental behaviours are demonstrated:
//!
//! 1. **threshold alerts** — "output a group as soon as the count of its
//!    items has reached the threshold" (§IV-3), via the incremental-hash
//!    early-emit policy;
//! 2. **approximate top-k at any time** — hot-page tracking with a
//!    mergeable Space-Saving summary, answers long before the stream
//!    ends.
//!
//! Run: `cargo run --release --example online_aggregation`

use std::sync::Arc;

use onepass::prelude::*;
use onepass_groupby::inc_hash::CountThreshold;
use onepass_workloads::top_k::TopKUrls;
use onepass_workloads::{ClickGen, ClickGenConfig};

fn main() {
    let batches = 20;
    let batch_size = 5_000;
    println!(
        "streaming {} clicks in {batches} batches of {batch_size}\n",
        batches * batch_size
    );

    // 1. Threshold alerts on per-URL counts.
    let alert_at = 2_000;
    let job = JobSpec::builder("url-alerts")
        .map_fn(Arc::new(|record: &[u8], out: &mut dyn MapEmitter| {
            if let Some(c) = onepass_workloads::clickgen::Click::from_text(record) {
                out.emit(&c.url.to_le_bytes(), &[]);
            }
        }))
        .aggregate(Arc::new(CountAgg))
        .reducers(2)
        .backend(ReduceBackend::IncHash {
            early: Some(Arc::new(CountThreshold(alert_at))),
        })
        .build()
        .unwrap();
    let mut session = StreamSession::new(job).unwrap();

    let mut gen = ClickGen::new(ClickGenConfig {
        urls: 1_000,
        url_skew: 1.3,
        ..Default::default()
    });
    let mut topk = TopKUrls::new(5, 20);
    let mut alerts = 0;

    for batch_no in 0..batches {
        let records = gen.text_records(batch_size);
        for r in &records {
            topk.observe_text(r);
        }
        let answers = session.feed(records.iter().map(|r| r.as_slice())).unwrap();
        for a in &answers {
            let url = u32::from_le_bytes(a.key.as_slice().try_into().unwrap());
            alerts += 1;
            if alerts <= 5 {
                println!(
                    "  [batch {batch_no:2}] ALERT url /page/{url} crossed {alert_at} visits \
                     (stream still running)"
                );
            }
        }
        if batch_no == batches / 2 {
            println!("\n  top-5 pages at half-stream (approximate, ±error):");
            for (url, count, err) in topk.top() {
                println!("    /page/{url:<6} ~{count} visits (±{err})");
            }
            println!();
        }
    }
    println!("  ... {alerts} alerts total while streaming\n");

    // Close: exact final counts for every URL.
    let (finals, stats) = session.close().unwrap();
    let final_answers: Vec<_> = finals
        .iter()
        .filter(|a| a.kind == EmitKind::Final)
        .collect();
    let total: u64 = final_answers
        .iter()
        .map(|a| u64::from_le_bytes(a.value.as_slice().try_into().unwrap()))
        .sum();
    assert_eq!(total, (batches * batch_size) as u64);
    println!(
        "closed: {} urls, {} clicks accounted for exactly; reduce-side spill {} B",
        final_answers.len(),
        total,
        stats.iter().map(|s| s.spill_traffic()).sum::<u64>()
    );
    println!(
        "\nEvery alert and the top-k answers arrived while data was still \
         streaming — no data load, no blocking merge (the paper's §IV goal)."
    );
    assert!(alerts > 0, "the skewed stream must trip some alerts");
}
