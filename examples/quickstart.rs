//! Quickstart: the same word-count job run three ways — stock Hadoop
//! (sort-merge), MapReduce Online (pipelined + snapshots), and the
//! paper's hash-based one-pass configuration — with a side-by-side look
//! at CPU phases and spill I/O.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;

use onepass::prelude::*;
use onepass_core::table::Table;

fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
    for w in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
        out.emit(w, &1u64.to_le_bytes());
    }
}

fn lines() -> Vec<Split> {
    let text = "the quick brown fox jumps over the lazy dog \
                the dog barks and the fox runs the end";
    // Repeat the sentence to give the engine something to chew on.
    let records: Vec<Vec<u8>> = (0..2000)
        .map(|i| format!("{text} extra{w}", w = i % 50).into_bytes())
        .collect();
    records
        .chunks(200)
        .map(|c| Split::new(c.to_vec()))
        .collect()
}

fn main() {
    println!("onepass quickstart: word count under three execution models\n");

    let mut table = Table::new(
        "word count, 2000 lines",
        &[
            "system",
            "groups",
            "early answers",
            "sort CPU (ms)",
            "reduce spill (B)",
            "wall (ms)",
        ],
    );

    for (name, builder) in [
        ("stock Hadoop", JobSpec::builder("wc").preset_hadoop()),
        ("MapReduce Online", JobSpec::builder("wc").preset_hop()),
        ("one-pass (hash)", JobSpec::builder("wc").preset_onepass()),
    ] {
        let job = builder
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .build()
            .expect("valid job");
        let report = Engine::new().run(&job, lines()).expect("job runs");

        // Sanity: "the" appears 5x per line.
        let the = report
            .outputs
            .iter()
            .find(|o| o.key == b"the" && o.kind == EmitKind::Final)
            .map(|o| u64::from_le_bytes(o.value.as_slice().try_into().unwrap()))
            .expect("'the' counted");
        assert_eq!(the, 5 * 2000);

        table.row(&[
            name.to_string(),
            report.groups_out.to_string(),
            report.early_emits.to_string(),
            format!(
                "{:.1}",
                report.map_profile.time(Phase::MapSort).as_secs_f64() * 1000.0
            ),
            report.reduce_spill_traffic().to_string(),
            format!("{:.1}", report.wall.as_secs_f64() * 1000.0),
        ]);
    }

    println!("{}", table.to_text());
    println!(
        "Note the one-pass row: zero sort CPU (hash group-by) and early answers\n\
         available before the job finished — the paper's Table III in action."
    );
}
