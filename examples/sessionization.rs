//! Sessionization over a synthetic click stream — the paper's flagship
//! workload (§III-A), run end-to-end on the real engine under both the
//! Hadoop baseline and the one-pass configuration, with verification that
//! the two agree and a look at the intermediate-data blow-up.
//!
//! Run: `cargo run --release --example sessionization`

use std::collections::BTreeMap;

use onepass::prelude::*;
use onepass_workloads::sessionization::{self, SessionizeAgg};
use onepass_workloads::{make_splits, ClickGen, ClickGenConfig};

fn session_stats(report: &onepass_runtime::JobReport) -> (usize, usize, BTreeMap<Vec<u8>, usize>) {
    let mut per_user = BTreeMap::new();
    let mut sessions = 0;
    let mut clicks = 0;
    for o in report.outputs.iter().filter(|o| o.kind == EmitKind::Final) {
        let s = SessionizeAgg::decode_sessions(&o.value);
        sessions += s.len();
        clicks += s.iter().map(|x| x.len()).sum::<usize>();
        per_user.insert(o.key.clone(), s.len());
    }
    (sessions, clicks, per_user)
}

fn main() {
    let n_clicks = 100_000;
    println!("sessionization over {n_clicks} synthetic clicks\n");

    let mut gen = ClickGen::new(ClickGenConfig {
        users: 2_000,
        session_break_p: 0.05,
        ..Default::default()
    });
    let records = gen.text_records(n_clicks);
    let splits = make_splits(records, 8_000);

    let hadoop_job = sessionization::job()
        .reducers(4)
        .preset_hadoop()
        .build()
        .unwrap();
    let onepass_job = sessionization::job()
        .reducers(4)
        .preset_onepass()
        .build()
        .unwrap();

    let h = Engine::new().run(&hadoop_job, splits.clone()).unwrap();
    let o = Engine::new().run(&onepass_job, splits).unwrap();

    let (hs, hc, hu) = session_stats(&h);
    let (os, oc, ou) = session_stats(&o);
    assert_eq!(hc, n_clicks, "every click lands in exactly one session");
    assert_eq!(oc, n_clicks);
    assert_eq!(hu, ou, "both engines build identical sessions per user");
    assert_eq!(hs, os);

    println!("users:            {}", hu.len());
    println!("sessions:         {hs}");
    println!("clicks/session:   {:.1}", n_clicks as f64 / hs as f64);
    println!();
    println!(
        "intermediate/input ratio: {:.0}% (the paper's sessionization hits 250%)",
        h.intermediate_ratio() * 100.0
    );
    println!(
        "Hadoop reduce spill: {} B | one-pass reduce spill: {} B",
        h.reduce_spill_traffic(),
        o.reduce_spill_traffic()
    );
    println!(
        "Hadoop sort CPU: {:.1} ms | one-pass sort CPU: {:.1} ms",
        h.map_profile.time(Phase::MapSort).as_secs_f64() * 1000.0,
        o.map_profile.time(Phase::MapSort).as_secs_f64() * 1000.0
    );
    println!("\nBoth engines agree exactly; only the plumbing differs.");
}
