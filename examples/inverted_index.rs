//! Inverted-index construction over synthetic web documents — the
//! paper's web-document analysis workload (§III-A, Fig. 3) — followed by
//! using the index to answer a phrase-ish query.
//!
//! Run: `cargo run --release --example inverted_index`

use std::collections::HashMap;

use onepass::prelude::*;
use onepass_workloads::docgen::{parse_doc, DocGen, DocGenConfig};
use onepass_workloads::inverted_index::{self, PostingListAgg};
use onepass_workloads::make_splits;

fn main() {
    let n_docs = 3_000;
    println!("building an inverted index over {n_docs} synthetic documents\n");

    let mut gen = DocGen::new(DocGenConfig {
        vocabulary: 5_000,
        ..Default::default()
    });
    let docs = gen.records(n_docs);
    let total_tokens: usize = docs
        .iter()
        .map(|d| parse_doc(d).map(|(_, w)| w.count()).unwrap_or(0))
        .sum();

    let job = inverted_index::job()
        .reducers(4)
        .preset_hadoop()
        .build()
        .unwrap();
    let report = Engine::new()
        .run(&job, make_splits(docs.clone(), 250))
        .unwrap();

    // Collect the index.
    let mut index: HashMap<Vec<u8>, Vec<_>> = HashMap::new();
    for o in &report.outputs {
        index.insert(o.key.clone(), PostingListAgg::decode(&o.value));
    }
    let total_postings: usize = index.values().map(|p| p.len()).sum();
    assert_eq!(
        total_postings, total_tokens,
        "every token becomes exactly one posting"
    );

    println!("vocabulary covered: {} words", index.len());
    println!("postings:           {total_postings}");
    println!(
        "intermediate/input: {:.0}% (the paper's inverted index: ~70%)",
        report.intermediate_ratio() * 100.0
    );

    // Query: documents containing both of the two most common words.
    let mut by_len: Vec<(&Vec<u8>, usize)> = index.iter().map(|(w, p)| (w, p.len())).collect();
    by_len.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let (w1, _) = by_len[0];
    let (w2, _) = by_len[1];
    let docs1: std::collections::BTreeSet<u32> = index[w1].iter().map(|p| p.doc).collect();
    let docs2: std::collections::BTreeSet<u32> = index[w2].iter().map(|p| p.doc).collect();
    let both: Vec<u32> = docs1.intersection(&docs2).copied().collect();
    println!(
        "\nquery: docs containing both {:?} and {:?}: {} of {}",
        String::from_utf8_lossy(w1),
        String::from_utf8_lossy(w2),
        both.len(),
        n_docs
    );

    // Verify the query answer against a brute-force scan.
    let brute: Vec<u32> = docs
        .iter()
        .filter_map(|d| {
            let (id, words) = parse_doc(d)?;
            let ws: Vec<&[u8]> = words.collect();
            (ws.contains(&w1.as_slice()) && ws.contains(&w2.as_slice())).then_some(id)
        })
        .collect();
    assert_eq!(both, brute, "index query must match brute-force scan");
    println!("verified against a brute-force scan.");
}
