//! Cluster-scale what-if analysis with the discrete-event simulator:
//! re-run the paper's sessionization study (256 GB, 10 nodes) under all
//! three systems and all three storage architectures in milliseconds of
//! wall time.
//!
//! Run: `cargo run --release --example cluster_sim`

use onepass::prelude::*;
use onepass_core::table::Table;

fn main() {
    println!("simulating sessionization (256 GB, 10 nodes) across systems and storage\n");

    let mut table = Table::new(
        "completion time and reduce-side I/O",
        &[
            "system",
            "storage",
            "completion",
            "spill GB",
            "merge rewrite GB",
            "mid-job CPU%",
            "mid-job iowait%",
        ],
    );

    let configs = [
        (SystemType::StockHadoop, StorageConfig::SingleHdd),
        (SystemType::StockHadoop, StorageConfig::HddPlusSsd),
        (SystemType::StockHadoop, StorageConfig::Separated),
        (SystemType::Hop, StorageConfig::SingleHdd),
        (SystemType::HashOnePass, StorageConfig::SingleHdd),
    ];

    let mut hadoop_baseline = 0.0;
    let mut hash_time = 0.0;
    for (system, storage) in configs {
        let workload = if storage == StorageConfig::Separated {
            // The paper halves the input for the separated configuration
            // "to keep the running time comparable".
            WorkloadProfile::sessionization().scaled(0.5)
        } else {
            WorkloadProfile::sessionization()
        };
        let r = run_sim_job(SimJobSpec::new(
            system,
            ClusterSpec::paper_cluster(storage),
            workload,
        ));
        if system == SystemType::StockHadoop && storage == StorageConfig::SingleHdd {
            hadoop_baseline = r.completion_secs;
        }
        if system == SystemType::HashOnePass {
            hash_time = r.completion_secs;
        }
        table.row(&[
            r.system.to_string(),
            r.storage.to_string(),
            format!("{:.0} min", r.completion_secs / 60.0),
            format!("{:.0}", r.spill_written_mb / 1024.0),
            format!("{:.0}", r.merge_written_mb / 1024.0),
            format!("{:.0}", r.mean_cpu_util(0.45, 0.62)),
            format!("{:.0}", r.mean_iowait(0.45, 0.62)),
        ]);
    }
    println!("{}", table.to_text());

    println!(
        "The hash one-pass system finishes in {:.0}% of stock Hadoop's time and\n\
         eliminates the multi-pass merge entirely (zero rewrite GB) — while the\n\
         storage-architecture variants reduce runtime but never remove the\n\
         blocking merge (§III-C's conclusion).",
        hash_time / hadoop_baseline * 100.0
    );
    assert!(hash_time < hadoop_baseline);
}
