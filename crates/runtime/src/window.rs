//! Tumbling-window stream processing on top of [`StreamSession`].
//!
//! The paper positions its engine as the substrate for "near real-time
//! stream processing" (§IV). Windowing is the missing piece between
//! running aggregates and stream queries: answers per time window, closed
//! by watermark progress. This module provides event-time tumbling
//! windows with bounded lateness — each window is its own incremental
//! hash session, so per-window answers are exact and early emission
//! still works inside the open window.

use std::collections::BTreeMap;
use std::sync::Arc;

use onepass_core::error::{Error, Result};

use crate::job::JobSpec;
use crate::stream::{SessionOptions, StreamAnswer, StreamSession};

/// Extracts an event-time timestamp from an input record.
/// Records yielding `None` are counted as malformed and skipped.
pub trait EventTime: Send + Sync {
    /// The record's event time, in the stream's time unit.
    fn timestamp(&self, record: &[u8]) -> Option<u64>;
}

impl<F> EventTime for F
where
    F: Fn(&[u8]) -> Option<u64> + Send + Sync,
{
    fn timestamp(&self, record: &[u8]) -> Option<u64> {
        self(record)
    }
}

/// Tumbling-window configuration.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Window length in event-time units (> 0).
    pub window_len: u64,
    /// How far event time may lag the watermark before a window closes.
    /// Records older than `watermark − allowed_lateness` whose window has
    /// closed are dropped (and counted).
    pub allowed_lateness: u64,
}

/// The results of one closed window.
#[derive(Debug)]
pub struct WindowResult {
    /// Window start (inclusive), event time.
    pub start: u64,
    /// Window end (exclusive), event time.
    pub end: u64,
    /// Final per-group answers for this window.
    pub answers: Vec<StreamAnswer>,
}

/// An event-time tumbling-window session.
pub struct WindowedSession {
    job: JobSpec,
    timestamper: Arc<dyn EventTime>,
    config: WindowConfig,
    /// Options applied to every per-window session (hash family, shared
    /// memory governor lease).
    options: SessionOptions,
    /// Open windows by window index (start = idx * window_len).
    windows: BTreeMap<u64, StreamSession>,
    watermark: u64,
    /// Largest window index ever closed (+1), to reject re-opens.
    closed_below: u64,
    late_dropped: u64,
    malformed: u64,
}

impl std::fmt::Debug for WindowedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedSession")
            .field("open_windows", &self.windows.len())
            .field("watermark", &self.watermark)
            .field("late_dropped", &self.late_dropped)
            .finish()
    }
}

impl WindowedSession {
    /// Create a windowed session. The job must use an incremental backend
    /// (same constraint as [`StreamSession`]).
    pub fn new(
        job: JobSpec,
        timestamper: Arc<dyn EventTime>,
        config: WindowConfig,
    ) -> Result<Self> {
        Self::with_options(job, timestamper, config, SessionOptions::default())
    }

    /// [`WindowedSession::new`] with explicit [`SessionOptions`] — every
    /// per-window session inherits them, so windows of many tenants can
    /// lease from one shared governor pool.
    pub fn with_options(
        job: JobSpec,
        timestamper: Arc<dyn EventTime>,
        config: WindowConfig,
        options: SessionOptions,
    ) -> Result<Self> {
        if config.window_len == 0 {
            return Err(Error::Config("window length must be > 0".into()));
        }
        // Validate the backend eagerly by constructing (and dropping) a
        // probe session.
        StreamSession::with_options(job.clone(), options.clone())?;
        Ok(WindowedSession {
            job,
            timestamper,
            config,
            options,
            windows: BTreeMap::new(),
            watermark: 0,
            closed_below: 0,
            late_dropped: 0,
            malformed: 0,
        })
    }

    /// Records dropped for arriving after their window closed.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Records skipped because no timestamp could be extracted.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Currently open windows.
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    /// Current watermark (the largest event time seen).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Feed a batch; returns any windows that closed as a consequence
    /// (in window order). Early per-group answers inside open windows are
    /// produced by the underlying sessions' early-emit policy and
    /// returned with each closed window's finals.
    pub fn feed<'r>(
        &mut self,
        records: impl IntoIterator<Item = &'r [u8]>,
    ) -> Result<Vec<WindowResult>> {
        for rec in records {
            let Some(ts) = self.timestamper.timestamp(rec) else {
                self.malformed += 1;
                continue;
            };
            self.watermark = self.watermark.max(ts);
            let idx = ts / self.config.window_len;
            if idx < self.closed_below {
                self.late_dropped += 1;
                continue;
            }
            let session = match self.windows.entry(idx) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(e) => e.insert(
                    StreamSession::with_options(self.job.clone(), self.options.clone())?,
                ),
            };
            session.feed(std::iter::once(rec))?;
        }
        self.close_ripe_windows()
    }

    /// Close every window whose end (+ lateness) is at or below the
    /// watermark.
    fn close_ripe_windows(&mut self) -> Result<Vec<WindowResult>> {
        let mut out = Vec::new();
        while let Some((&idx, _)) = self.windows.iter().next() {
            let end = (idx + 1) * self.config.window_len;
            if end + self.config.allowed_lateness > self.watermark {
                break;
            }
            let session = self.windows.remove(&idx).expect("just observed");
            let (answers, _) = session.close()?;
            self.closed_below = self.closed_below.max(idx + 1);
            out.push(WindowResult {
                start: idx * self.config.window_len,
                end,
                answers,
            });
        }
        Ok(out)
    }

    /// Close all remaining windows (end of stream), in window order.
    pub fn flush(mut self) -> Result<Vec<WindowResult>> {
        let mut out = Vec::new();
        let indices: Vec<u64> = self.windows.keys().copied().collect();
        for idx in indices {
            let session = self.windows.remove(&idx).expect("listed");
            let (answers, _) = session.close()?;
            out.push(WindowResult {
                start: idx * self.config.window_len,
                end: (idx + 1) * self.config.window_len,
                answers,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ReduceBackend;
    use onepass_groupby::{CountAgg, EmitKind};

    /// Records: `"<ts>:<key>"`.
    fn ts_of(record: &[u8]) -> Option<u64> {
        let s = std::str::from_utf8(record).ok()?;
        s.split(':').next()?.parse().ok()
    }

    fn key_map(record: &[u8], out: &mut dyn crate::job::MapEmitter) {
        if let Some(pos) = record.iter().position(|&b| b == b':') {
            out.emit(&record[pos + 1..], &[]);
        }
    }

    fn session(window_len: u64, lateness: u64) -> WindowedSession {
        let job = JobSpec::builder("windowed")
            .map_fn(Arc::new(key_map))
            .aggregate(Arc::new(CountAgg))
            .reducers(2)
            .backend(ReduceBackend::IncHash { early: None })
            .build()
            .unwrap();
        WindowedSession::new(
            job,
            Arc::new(ts_of),
            WindowConfig {
                window_len,
                allowed_lateness: lateness,
            },
        )
        .unwrap()
    }

    fn counts(result: &WindowResult) -> std::collections::BTreeMap<String, u64> {
        result
            .answers
            .iter()
            .filter(|a| a.kind == EmitKind::Final)
            .map(|a| {
                (
                    String::from_utf8(a.key.clone()).unwrap(),
                    u64::from_le_bytes(a.value.as_slice().try_into().unwrap()),
                )
            })
            .collect()
    }

    #[test]
    fn windows_close_on_watermark_with_exact_counts() {
        let mut s = session(10, 0);
        let batch: Vec<&[u8]> = vec![b"1:a", b"3:a", b"5:b", b"9:a"];
        assert!(s.feed(batch).unwrap().is_empty(), "window 0 still open");
        // ts 12 pushes the watermark past window 0's end.
        let closed = s.feed(vec![b"12:c".as_slice()]).unwrap();
        assert_eq!(closed.len(), 1);
        assert_eq!((closed[0].start, closed[0].end), (0, 10));
        let c = counts(&closed[0]);
        assert_eq!(c["a"], 3);
        assert_eq!(c["b"], 1);
        let rest = s.flush().unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(counts(&rest[0])["c"], 1);
    }

    #[test]
    fn lateness_holds_windows_open() {
        let mut s = session(10, 5);
        s.feed(vec![b"1:a".as_slice(), b"12:b".as_slice()]).unwrap();
        // Watermark 12 < end(10) + lateness(5): window 0 still open.
        assert_eq!(s.open_windows(), 2);
        // A late record for window 0 is still accepted.
        let closed = s.feed(vec![b"2:a".as_slice()]).unwrap();
        assert!(closed.is_empty());
        let closed = s.feed(vec![b"15:b".as_slice()]).unwrap();
        assert_eq!(closed.len(), 1);
        assert_eq!(counts(&closed[0])["a"], 2);
    }

    #[test]
    fn too_late_records_are_dropped_and_counted() {
        let mut s = session(10, 0);
        s.feed(vec![b"5:a".as_slice(), b"25:b".as_slice()]).unwrap();
        assert_eq!(s.late_dropped(), 0);
        // Window 0 closed at watermark 25; ts 3 is too late.
        s.feed(vec![b"3:a".as_slice()]).unwrap();
        assert_eq!(s.late_dropped(), 1);
    }

    #[test]
    fn malformed_records_are_counted_not_fatal() {
        let mut s = session(10, 0);
        s.feed(vec![b"nottime:a".as_slice(), b"4:a".as_slice()])
            .unwrap();
        assert_eq!(s.malformed(), 1);
        let out = s.flush().unwrap();
        assert_eq!(counts(&out[0])["a"], 1);
    }

    #[test]
    fn multiple_windows_close_in_order() {
        let mut s = session(10, 0);
        let batch: Vec<&[u8]> = vec![b"5:a", b"15:b", b"25:c", b"45:d"];
        let closed = s.feed(batch).unwrap();
        assert_eq!(closed.len(), 3);
        assert!(closed.windows(2).all(|w| w[0].start < w[1].start));
        assert_eq!(s.open_windows(), 1);
    }

    #[test]
    fn zero_window_len_rejected() {
        let job = JobSpec::builder("w")
            .aggregate(Arc::new(CountAgg))
            .backend(ReduceBackend::IncHash { early: None })
            .build()
            .unwrap();
        let err = WindowedSession::new(
            job,
            Arc::new(ts_of),
            WindowConfig {
                window_len: 0,
                allowed_lateness: 0,
            },
        );
        assert!(err.is_err());
    }
}
