//! Map-side scheduling: the coordinator loop that assigns splits to the
//! worker pool, retries failed attempts, and clones stragglers.
//!
//! Extracted from the old monolithic driver so the policy logic (task
//! queues, retry budgets, speculation) lives apart from the mechanics of
//! spawning workers ([`crate::executor`]) and the public API surface
//! ([`crate::driver`]).
//!
//! The scheduler is generalised over *how input arrives*: a
//! [`SplitFeed::Fixed`] job knows all of its splits up front (the classic
//! batch engine), while a [`SplitFeed::Streamed`] job discovers splits as
//! an upstream pipeline stage produces them. For streamed feeds the
//! scheduler broadcasts
//! [`ShuffleMsg::InputExhausted`](crate::shuffle::ShuffleMsg) once the
//! feed closes, so reducers learn the final map-task count without a
//! barrier.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use onepass_core::error::{Error, Result};
use onepass_core::trace::LocalTracer;

use crate::driver::{RetryPolicy, SpeculationConfig};
use crate::map_task::{MapTaskStats, Split};
use crate::report::TaskSpan;
use crate::shuffle::ShuffleTx;
use crate::telemetry::StageTelemetry;

/// Where a job's input splits come from.
pub(crate) enum SplitFeed {
    /// All splits are known up front (classic batch execution).
    Fixed(Vec<Split>),
    /// Splits arrive over time from an upstream producer (a pipelined
    /// plan edge). An `Err` item poisons the job: the upstream stage
    /// failed, so this job must fail too rather than complete on partial
    /// input. The feed is exhausted when the sender drops.
    Streamed(Receiver<Result<Split>>),
}

/// One unit of map work handed to a worker.
pub(crate) struct MapAssignment {
    pub task: usize,
    pub attempt: usize,
    pub speculative: bool,
    pub split: Arc<Split>,
    pub cancel: Arc<AtomicBool>,
    /// Retry backoff, slept by the worker so the coordinator never blocks.
    pub delay: Duration,
}

/// Worker / feed-forwarder → coordinator notifications.
pub(crate) enum MapEvent {
    Started {
        task: usize,
        attempt: usize,
        at: Duration,
    },
    Finished {
        task: usize,
        attempt: usize,
        speculative: bool,
        span: TaskSpan,
        result: Result<MapTaskStats>,
    },
    /// A streamed feed delivered another split (or an upstream failure).
    NewSplit(Result<Split>),
    /// The streamed feed closed: no more splits will arrive.
    FeedClosed,
}

/// A map attempt the coordinator believes is queued or running.
struct RunningAttempt {
    attempt: usize,
    started: Option<Duration>,
    cancel: Arc<AtomicBool>,
    speculative: bool,
}

/// Per-logical-task scheduling state.
struct TaskState {
    running: Vec<RunningAttempt>,
    completed: bool,
    next_attempt: usize,
    spec_cloned: bool,
}

impl TaskState {
    fn new() -> Self {
        TaskState {
            running: Vec::new(),
            completed: false,
            next_attempt: 1,
            spec_cloned: false,
        }
    }
}

/// What the coordinator loop produced.
pub(crate) struct ScheduleOutcome {
    pub map_results: Vec<(MapTaskStats, TaskSpan)>,
    pub extra_spans: Vec<TaskSpan>,
    pub map_attempts: usize,
    pub failed_attempts: usize,
    pub speculative_launched: usize,
    pub speculative_wins: usize,
    pub fatal: Option<Error>,
    /// Final number of logical map tasks (grows under a streamed feed).
    pub total_map_tasks: usize,
}

/// Scheduler inputs that don't change over the run.
pub(crate) struct SchedulerCtx<'a> {
    pub retry: RetryPolicy,
    pub speculation: SpeculationConfig,
    pub task_tx: Sender<MapAssignment>,
    pub evt_rx: Receiver<MapEvent>,
    pub shuffle_tx: &'a ShuffleTx,
    /// Job (or plan) start time; straggler ages are measured against it.
    pub clock: Instant,
    /// Live metrics for this stage, when the registry is enabled.
    /// Progress gauges and per-task stats publish from inside the loop,
    /// so scrapers see them while the job runs.
    pub telemetry: Option<&'a StageTelemetry>,
}

/// Run the map coordinator loop until every known split has a winning
/// attempt (or the retry budget is exhausted) *and* the feed has closed.
///
/// `initial` holds the up-front splits of a fixed feed; `feed_open` is
/// true when a streamed feed may still deliver more (new splits arrive as
/// [`MapEvent::NewSplit`], closure as [`MapEvent::FeedClosed`]). For open
/// feeds the scheduler broadcasts the final task count to the reducers
/// via [`ShuffleTx::input_exhausted`] once the feed closes.
pub(crate) fn schedule_maps(
    ctx: SchedulerCtx<'_>,
    initial: Vec<Arc<Split>>,
    feed_open: bool,
    driver_trace: &mut LocalTracer,
) -> ScheduleOutcome {
    let retry = ctx.retry;
    let spec = ctx.speculation;
    let mut splits = initial;
    let mut feed_closed = !feed_open;

    let mut out = ScheduleOutcome {
        map_results: Vec::with_capacity(splits.len()),
        extra_spans: Vec::new(),
        map_attempts: 0,
        failed_attempts: 0,
        speculative_launched: 0,
        speculative_wins: 0,
        fatal: None,
        total_map_tasks: splits.len(),
    };

    let mut tasks: Vec<TaskState> = (0..splits.len()).map(|_| TaskState::new()).collect();
    let mut completed_count = 0usize;
    let mut durations: Vec<Duration> = Vec::new();
    let mut outstanding = 0usize;

    let enqueue = |tasks: &mut Vec<TaskState>,
                   splits: &[Arc<Split>],
                   task: usize,
                   attempt: usize,
                   speculative: bool,
                   delay: Duration,
                   outstanding: &mut usize| {
        let cancel = Arc::new(AtomicBool::new(false));
        tasks[task].running.push(RunningAttempt {
            attempt,
            started: None,
            cancel: Arc::clone(&cancel),
            speculative,
        });
        let _ = ctx.task_tx.send(MapAssignment {
            task,
            attempt,
            speculative,
            split: Arc::clone(&splits[task]),
            cancel,
            delay,
        });
        if let Some(t) = ctx.telemetry {
            t.map_attempts.inc(1);
        }
        *outstanding += 1;
    };

    for task in 0..splits.len() {
        enqueue(
            &mut tasks,
            &splits,
            task,
            0,
            false,
            Duration::ZERO,
            &mut outstanding,
        );
    }
    if let Some(t) = ctx.telemetry {
        t.set_progress(0, splits.len());
    }

    while outstanding > 0 || !feed_closed {
        let evt = if spec.enabled {
            match ctx.evt_rx.recv_timeout(spec.poll) {
                Ok(e) => Some(e),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match ctx.evt_rx.recv() {
                Ok(e) => Some(e),
                Err(_) => break,
            }
        };

        match evt {
            None => {} // poll tick: fall through to straggler scan
            Some(MapEvent::NewSplit(Ok(split))) => {
                let task = splits.len();
                splits.push(Arc::new(split));
                tasks.push(TaskState::new());
                out.total_map_tasks = splits.len();
                if out.fatal.is_none() {
                    enqueue(
                        &mut tasks,
                        &splits,
                        task,
                        0,
                        false,
                        Duration::ZERO,
                        &mut outstanding,
                    );
                }
                if let Some(t) = ctx.telemetry {
                    t.set_progress(completed_count, splits.len());
                }
            }
            Some(MapEvent::NewSplit(Err(e))) if out.fatal.is_none() => {
                // Upstream producer failed: this job must not complete on
                // partial input. Cancel everything and drain.
                out.fatal = Some(e);
                for t in &tasks {
                    for r in &t.running {
                        r.cancel.store(true, Ordering::Relaxed);
                    }
                }
            }
            // A later upstream failure while already going down: drop it,
            // the first fatal error wins.
            Some(MapEvent::NewSplit(Err(_))) => {}
            Some(MapEvent::FeedClosed) => {
                feed_closed = true;
                if out.fatal.is_none() {
                    ctx.shuffle_tx.input_exhausted(splits.len());
                }
            }
            Some(MapEvent::Started { task, attempt, at }) => {
                if let Some(r) = tasks[task]
                    .running
                    .iter_mut()
                    .find(|r| r.attempt == attempt)
                {
                    r.started = Some(at);
                }
            }
            Some(MapEvent::Finished {
                task,
                attempt,
                speculative,
                span,
                result,
            }) => {
                outstanding -= 1;
                out.map_attempts += 1;
                tasks[task].running.retain(|r| r.attempt != attempt);
                match result {
                    Ok(stats) => {
                        if tasks[task].completed {
                            // A raced twin also finished; reducers
                            // committed only one of them.
                            out.extra_spans.push(span);
                        } else {
                            tasks[task].completed = true;
                            completed_count += 1;
                            durations.push(span.end.saturating_sub(span.start));
                            if speculative {
                                out.speculative_wins += 1;
                            }
                            // First finisher wins: cancel twins.
                            for r in &tasks[task].running {
                                r.cancel.store(true, Ordering::Relaxed);
                            }
                            if let Some(t) = ctx.telemetry {
                                t.on_map_finished(&stats);
                                t.set_progress(completed_count, splits.len());
                            }
                            out.map_results.push((stats, span));
                        }
                    }
                    Err(Error::Cancelled) => {
                        // Benign: the driver told it to stop.
                        out.extra_spans.push(span);
                    }
                    Err(e) => {
                        out.failed_attempts += 1;
                        if let Some(t) = ctx.telemetry {
                            t.failed_attempts.inc(1);
                        }
                        out.extra_spans.push(span);
                        driver_trace.instant(
                            "task_failed",
                            "fault",
                            &[("task", task as f64), ("attempt", attempt as f64)],
                        );
                        if tasks[task].completed || out.fatal.is_some() {
                            // Another attempt already delivered the task
                            // (or the job is going down); nothing to
                            // recover.
                        } else if tasks[task].next_attempt < retry.max_attempts {
                            let a = tasks[task].next_attempt;
                            tasks[task].next_attempt += 1;
                            driver_trace.instant(
                                "retry",
                                "fault",
                                &[("task", task as f64), ("attempt", a as f64)],
                            );
                            enqueue(
                                &mut tasks,
                                &splits,
                                task,
                                a,
                                false,
                                retry.backoff,
                                &mut outstanding,
                            );
                        } else {
                            // Budget exhausted: fail the job, but keep
                            // draining outstanding attempts so no thread
                            // is left blocked.
                            out.fatal = Some(e);
                            for t in &tasks {
                                for r in &t.running {
                                    r.cancel.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Straggler scan: clone slow first attempts once a median over
        // completed tasks exists.
        if spec.enabled
            && out.fatal.is_none()
            && completed_count >= spec.min_completed.max(1)
            && (completed_count < splits.len() || !feed_closed)
        {
            let mut sorted = durations.clone();
            sorted.sort_unstable();
            let median = sorted[sorted.len() / 2];
            // Floor the threshold so micro-benchmark medians don't flag
            // everything as slow.
            let threshold = median
                .mul_f64(spec.slow_factor)
                .max(Duration::from_millis(1));
            let now = ctx.clock.elapsed();
            for task in 0..splits.len() {
                if tasks[task].completed || tasks[task].spec_cloned {
                    continue;
                }
                let Some(orig) = tasks[task].running.iter().find(|r| !r.speculative) else {
                    continue;
                };
                let Some(started_at) = orig.started else {
                    continue; // still queued, not slow
                };
                if now.saturating_sub(started_at) <= threshold {
                    continue;
                }
                tasks[task].spec_cloned = true;
                out.speculative_launched += 1;
                if let Some(t) = ctx.telemetry {
                    t.stragglers.inc(1);
                }
                let a = tasks[task].next_attempt;
                tasks[task].next_attempt += 1;
                driver_trace.instant(
                    "speculate",
                    "fault",
                    &[("task", task as f64), ("attempt", a as f64)],
                );
                enqueue(
                    &mut tasks,
                    &splits,
                    task,
                    a,
                    true,
                    Duration::ZERO,
                    &mut outstanding,
                );
            }
        }
    }

    out
}
