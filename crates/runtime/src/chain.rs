//! Multi-stage job chaining: run a sequence of MapReduce jobs where each
//! stage's output becomes the next stage's input.
//!
//! Real analytical queries rarely fit one MapReduce job — the paper's
//! related work (Pig, Hive) compiles SQL into job *DAGs*. This module
//! provides the linear-chain case with a defined record codec:
//! each final `(key, value)` emission of stage *i* is encoded as one
//! input record for stage *i + 1* via [`encode_pair`] / [`decode_pair`],
//! and re-split into blocks of `records_per_split`.
//!
//! Early emissions are not forwarded (they are approximations of the
//! finals); collect them from each stage's report if needed.

use onepass_core::error::{Error, Result};

use crate::driver::Engine;
use crate::job::JobSpec;
use crate::map_task::Split;
use crate::plan::{Plan, PlanConfig, PlanMode};
use crate::report::JobReport;

/// Encode a `(key, value)` pair as a chain record:
/// `[u32 klen][key][value]`.
pub fn encode_pair(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(4 + key.len() + value.len());
    rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
    rec.extend_from_slice(key);
    rec.extend_from_slice(value);
    rec
}

/// Decode a chain record back into `(key, value)`.
pub fn decode_pair(record: &[u8]) -> Option<(&[u8], &[u8])> {
    if record.len() < 4 {
        return None;
    }
    let klen = u32::from_le_bytes(record[0..4].try_into().ok()?) as usize;
    if record.len() < 4 + klen {
        return None;
    }
    Some((&record[4..4 + klen], &record[4 + klen..]))
}

/// Options for [`run_chain`].
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Records per split when re-splitting a stage's output. Default 4096.
    pub records_per_split: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            records_per_split: 4096,
        }
    }
}

/// Run `jobs` in sequence over `input`. Every stage except the last must
/// collect output ([`CollectOutput::Collect`](crate::job::CollectOutput)),
/// since its finals feed the next stage. Returns each stage's report, in
/// order.
///
/// This is a thin wrapper over the plan layer: the chain becomes a
/// [`Plan::linear`] executed in [`PlanMode::Barrier`], preserving the
/// historical materialize-then-re-split semantics. Build a [`Plan`]
/// directly for DAG topologies or pipelined inter-stage edges.
pub fn run_chain(
    engine: &Engine,
    jobs: &[JobSpec],
    input: Vec<Split>,
    config: &ChainConfig,
) -> Result<Vec<JobReport>> {
    if jobs.is_empty() {
        return Err(Error::Config(
            "job chain must have at least one stage".into(),
        ));
    }
    for (i, job) in jobs.iter().enumerate() {
        if i + 1 < jobs.len() && !job.collect_output.is_collect() {
            return Err(Error::Config(format!(
                "chain stage {i} ({}) must collect output to feed stage {}",
                job.name,
                i + 1
            )));
        }
    }

    let plan = Plan::linear(jobs.to_vec())?;
    let plan_config = PlanConfig {
        mode: PlanMode::Barrier,
        records_per_split: config.records_per_split,
        ..Default::default()
    };
    let report = engine.run_plan(&plan, input, &plan_config)?;
    Ok(report.stages.into_iter().map(|s| s.report).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{MapEmitter, ReduceBackend};
    use onepass_groupby::{EmitKind, SumAgg};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn pair_codec_roundtrip() {
        let rec = encode_pair(b"key", b"value with \x00 bytes");
        let (k, v) = decode_pair(&rec).unwrap();
        assert_eq!(k, b"key");
        assert_eq!(v, b"value with \x00 bytes");
        // Empty key and value are legal.
        let rec = encode_pair(b"", b"");
        assert_eq!(decode_pair(&rec).unwrap(), (&b""[..], &b""[..]));
        // Truncated records are rejected.
        assert!(decode_pair(b"").is_none());
        assert!(decode_pair(&[200, 0, 0, 0, 1]).is_none());
    }

    /// Stage 1: word count. Stage 2: count-of-counts (how many words
    /// occur exactly k times) — the classic two-job histogram query.
    #[test]
    fn two_stage_histogram() {
        fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
            for w in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                out.emit(w, &1u64.to_le_bytes());
            }
        }
        fn histogram_map(record: &[u8], out: &mut dyn MapEmitter) {
            if let Some((_, count)) = decode_pair(record) {
                out.emit(count, &1u64.to_le_bytes());
            }
        }

        let stage1 = JobSpec::builder("wordcount")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(3)
            .preset_onepass()
            .build()
            .unwrap();
        let stage2 = JobSpec::builder("count-of-counts")
            .map_fn(Arc::new(histogram_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .backend(ReduceBackend::IncHash { early: None })
            .build()
            .unwrap();

        // a:4, b:2, c:2, d:1  ->  histogram {4:1, 2:2, 1:1}
        let input = vec![Split::new(vec![
            b"a b a c".to_vec(),
            b"a d b c".to_vec(),
            b"a".to_vec(),
        ])];
        let reports = run_chain(
            &Engine::new(),
            &[stage1, stage2],
            input,
            &ChainConfig::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].groups_out, 4);

        let hist: BTreeMap<u64, u64> = reports[1]
            .outputs
            .iter()
            .filter(|o| o.kind == EmitKind::Final)
            .map(|o| {
                (
                    u64::from_le_bytes(o.key.as_slice().try_into().unwrap()),
                    u64::from_le_bytes(o.value.as_slice().try_into().unwrap()),
                )
            })
            .collect();
        assert_eq!(hist, BTreeMap::from([(4, 1), (2, 2), (1, 1)]));
    }

    #[test]
    fn stage_without_collect_output_is_rejected() {
        let stage1 = JobSpec::builder("s1")
            .collect_mode(crate::job::CollectOutput::Discard)
            .build()
            .unwrap();
        let stage2 = JobSpec::builder("s2").build().unwrap();
        let err = run_chain(
            &Engine::new(),
            &[stage1, stage2],
            vec![],
            &ChainConfig::default(),
        );
        assert!(matches!(err, Err(Error::Config(_))));
    }

    #[test]
    fn empty_chain_is_rejected() {
        let err = run_chain(&Engine::new(), &[], vec![], &ChainConfig::default());
        assert!(err.is_err());
    }
}
