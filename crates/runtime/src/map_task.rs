//! Map task execution: read a split, apply the map function, and turn the
//! output buffer into shuffle segments under one of the three map-side
//! modes (Fig. 1's map task vs Fig. 5's map module).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use onepass_core::bytes_kv::{KvBuf, SegmentBufBuilder};
use onepass_core::error::{Error, Result};
use onepass_core::fault::{FaultAction, FaultInjector, FaultTarget};
use onepass_core::hashlib::ByteMap;
use onepass_core::io::SpillStore;
use onepass_core::metrics::{Phase, Profile};
use onepass_core::trace::LocalTracer;

use crate::job::{JobSpec, MapEmitter, MapSideMode, ShuffleMode};
use crate::shuffle::{Segment, ShuffleTx};

/// One unit of input: a block of records, the granularity of a map task
/// (Hadoop's 64 MB HDFS block, §II-A).
#[derive(Debug, Clone, Default)]
pub struct Split {
    /// The input records (e.g. click-log lines or documents).
    pub records: Vec<Vec<u8>>,
    /// Already-framed `(key, value)` pairs — a cache-hit split. The
    /// segment is Arc-shared straight out of the
    /// [`DatasetCache`](crate::cache::DatasetCache): no input decode,
    /// no copy. Pairs are mapped after `records` via
    /// [`MapFn::map_pair`](crate::job::MapFn::map_pair).
    pub pairs: Option<onepass_core::SegmentBuf>,
    /// When set, every emission of this split routes to this one
    /// reducer partition, skipping the per-key partitioner hash — the
    /// in-proc shuffle short-circuit for partition-aligned cached
    /// edges. Only valid when the split's keys all belong to that
    /// partition under the consuming job's partitioner (the plan layer
    /// checks partition-count stability before setting it).
    pub aligned: Option<u32>,
}

impl Split {
    /// Create a split from records.
    pub fn new(records: Vec<Vec<u8>>) -> Self {
        Split {
            records,
            ..Default::default()
        }
    }

    /// A zero-copy split over a cached partition's framed pairs.
    pub fn from_segment(pairs: onepass_core::SegmentBuf) -> Self {
        Split {
            pairs: Some(pairs),
            ..Default::default()
        }
    }

    /// Total input records (raw + cached pairs).
    pub fn record_count(&self) -> usize {
        self.records.len() + self.pairs.as_ref().map_or(0, |p| p.len())
    }

    /// Total payload bytes.
    pub fn bytes(&self) -> u64 {
        let raw: u64 = self.records.iter().map(|r| r.len() as u64).sum();
        raw + self.pairs.as_ref().map_or(0, |p| p.payload_bytes() as u64)
    }
}

/// Per-map-task result statistics.
#[derive(Debug, Default, Clone)]
pub struct MapTaskStats {
    /// Input records processed.
    pub input_records: u64,
    /// Input bytes processed.
    pub input_bytes: u64,
    /// Intermediate records emitted by the map function.
    pub output_records: u64,
    /// Intermediate records actually shuffled (after combine).
    pub shuffled_records: u64,
    /// Intermediate bytes actually shuffled (after combine).
    pub shuffled_bytes: u64,
    /// Buffer flushes ("spills").
    pub flushes: u64,
    /// Phase-attributed CPU time.
    pub profile: Profile,
}

/// Execution context for one attempt of a map task: the attempt id that
/// stamps every shuffle message, the fault injector consulted per record,
/// and the driver's cancellation flag (set when another attempt of the
/// same task already committed, so losers stop burning CPU).
#[derive(Clone, Default)]
pub struct MapAttemptCtx {
    /// Attempt number (0 = first execution of the task).
    pub attempt: usize,
    /// Fault schedule; inert by default.
    pub injector: FaultInjector,
    /// Set by the driver when this attempt's result is no longer wanted.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl MapAttemptCtx {
    /// Context for a plain first attempt with no faults or cancellation.
    pub fn first() -> Self {
        Self::default()
    }

    /// Whether the driver has cancelled this attempt.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }
}

/// Emitter collecting map output into a [`KvBuf`], partitioned up front.
///
/// With `partitioner: None` (deferred mode) every pair lands in partition
/// 0 unrouted: the in-node fold fingerprints each key anyway, so it
/// routes from that fingerprint via
/// [`crate::job::Partitioner::partition_fp`] and the
/// per-emit partition call would be a second hash of the same bytes.
struct BufEmitter<'a> {
    buf: &'a mut KvBuf,
    partitioner: Option<&'a dyn crate::job::Partitioner>,
    reducers: usize,
    /// Partition-aligned cache-hit splits pin every emission to one
    /// partition ([`Split::aligned`]), skipping the per-key hash.
    fixed: Option<u32>,
    emitted: u64,
}

impl MapEmitter for BufEmitter<'_> {
    fn emit(&mut self, key: &[u8], value: &[u8]) {
        let p = match self.fixed {
            Some(p) => p,
            None => self
                .partitioner
                .map_or(0, |pt| pt.partition(key, self.reducers) as u32),
        };
        self.buf.push(p, key, value);
        self.emitted += 1;
    }
}

/// Consult the fault injector for one map record.
fn check_fault(ctx: &MapAttemptCtx, task_id: usize, record_idx: usize) -> Result<()> {
    match ctx
        .injector
        .check(FaultTarget::Map, task_id, ctx.attempt, record_idx as u64)
    {
        Some(FaultAction::Fail) => Err(Error::Io(std::io::Error::other(format!(
            "injected fault: map task {task_id} attempt {} at record {record_idx}",
            ctx.attempt
        )))),
        Some(FaultAction::Panic) => {
            panic!(
                "injected panic: map task {task_id} attempt {} at record {record_idx}",
                ctx.attempt
            );
        }
        Some(FaultAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        None => Ok(()),
    }
}

/// Execute one map task over `split`, sending segments through `tx`.
///
/// * `SortSpill` — sort the buffer on `(partition, key)` (the Table II
///   CPU cost), combine key-streaks when enabled, persist the output via
///   `map_store` (the synchronous map-output write of §III-B.2), then
///   ship per-partition sorted segments.
/// * `HashPartitionOnly` — single partition-clustering scan, no sort, no
///   combine; raw segments.
/// * `HashCombine` — per-partition in-memory hash combine; combined
///   segments.
///
/// Under push shuffle the buffer is additionally flushed every
/// `granularity` emitted records, so reducers receive data while the task
/// is still running.
pub fn run_map_task(
    job: &JobSpec,
    task_id: usize,
    split: &Split,
    tx: &ShuffleTx,
    map_store: Option<&Arc<dyn SpillStore>>,
    trace: &mut LocalTracer,
    ctx: &MapAttemptCtx,
) -> Result<MapTaskStats> {
    run_map_task_with(job, task_id, split, tx, map_store, trace, ctx, None)
}

/// [`run_map_task`] with an optional deferred-output buffer. When
/// `deferred` is `Some` (the executor only passes one for `HashCombine`
/// jobs running under the in-node combiner), the attempt's entire
/// output accumulates in that buffer (unrouted — the fold partitions
/// from its own fingerprints) and nothing is
/// shipped — no segments, no `MapDone`, no mid-task flushes. On success
/// the executor folds the buffer into the worker's shared combine table;
/// see [`crate::in_node`] for the full protocol.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_map_task_with(
    job: &JobSpec,
    task_id: usize,
    split: &Split,
    tx: &ShuffleTx,
    map_store: Option<&Arc<dyn SpillStore>>,
    trace: &mut LocalTracer,
    ctx: &MapAttemptCtx,
    deferred: Option<&mut KvBuf>,
) -> Result<MapTaskStats> {
    let mut stats = MapTaskStats {
        input_records: split.record_count() as u64,
        input_bytes: split.bytes(),
        ..Default::default()
    };
    let mut local = KvBuf::new();
    let defer = deferred.is_some();
    let buf: &mut KvBuf = match deferred {
        Some(b) => b,
        None => &mut local,
    };
    let push_granularity = match job.shuffle {
        ShuffleMode::Push { granularity } => Some(granularity.max(1)),
        ShuffleMode::Pull => None,
    };
    let mut since_flush = 0usize;

    // The aligned short-circuit only applies on the routed (non-
    // deferred) path; the in-node fold routes from its own fingerprints
    // either way, which agrees with the partitioner by construction.
    let fixed = if defer { None } else { split.aligned };

    // Raw records and cached pairs share one flush/fault/stat protocol;
    // cached pairs continue the record index so fault schedules hit the
    // same logical positions either way.
    macro_rules! map_one {
        ($record_idx:expr, $apply:expr) => {{
            if ctx.cancelled() {
                return Err(Error::Cancelled);
            }
            check_fault(ctx, task_id, $record_idx)?;
            let map_start = std::time::Instant::now();
            let mut emitter = BufEmitter {
                buf,
                partitioner: (!defer).then(|| job.partitioner.as_ref()),
                reducers: job.reducers,
                fixed,
                emitted: 0,
            };
            #[allow(clippy::redundant_closure_call)]
            $apply(&mut emitter);
            let emitted = emitter.emitted;
            stats.output_records += emitted;
            since_flush += emitted as usize;
            stats.profile.add_time(Phase::MapFn, map_start.elapsed());

            // Deferred mode buffers the whole attempt: granularity and
            // buffer-bytes checkpoints don't apply (the arena is bounded
            // by the split's output; the worker's combine budget governs
            // the shared table instead).
            if !defer {
                let buffer_full = buf.arena_bytes() >= job.map_buffer_bytes;
                let push_due = push_granularity.is_some_and(|g| since_flush >= g);
                if buffer_full || push_due {
                    flush_buffer(
                        job,
                        task_id,
                        ctx.attempt,
                        buf,
                        tx,
                        map_store,
                        &mut stats,
                        trace,
                    )?;
                    since_flush = 0;
                }
            }
        }};
    }

    for (record_idx, record) in split.records.iter().enumerate() {
        map_one!(record_idx, |em: &mut BufEmitter<'_>| job
            .map_fn
            .map(record, em));
    }
    if let Some(pairs) = &split.pairs {
        let base = split.records.len();
        for i in 0..pairs.len() {
            let (key, value) = pairs.get(i);
            map_one!(base + i, |em: &mut BufEmitter<'_>| job
                .map_fn
                .map_pair(key, value, em));
        }
    }
    if ctx.cancelled() {
        return Err(Error::Cancelled);
    }
    if !defer {
        flush_buffer(
            job,
            task_id,
            ctx.attempt,
            buf,
            tx,
            map_store,
            &mut stats,
            trace,
        )?;
        tx.map_done(task_id, ctx.attempt);
    }
    Ok(stats)
}

/// Turn the buffer into segments according to the map-side mode.
#[allow(clippy::too_many_arguments)]
fn flush_buffer(
    job: &JobSpec,
    task_id: usize,
    attempt: usize,
    buf: &mut KvBuf,
    tx: &ShuffleTx,
    map_store: Option<&Arc<dyn SpillStore>>,
    stats: &mut MapTaskStats,
    trace: &mut LocalTracer,
) -> Result<()> {
    if buf.is_empty() {
        return Ok(());
    }
    stats.flushes += 1;
    trace.instant(
        "flush",
        "map",
        &[("buffer_bytes", buf.arena_bytes() as f64)],
    );
    let combine_on = job.combine.is_on() && job.agg.combinable();

    let segments: Vec<Segment> = match job.map_side {
        MapSideMode::SortSpill => {
            {
                let _t = stats.profile.timed(Phase::MapSort);
                trace.begin(Phase::MapSort.label(), "phase");
                buf.sort_by_partition_key();
                trace.end(Phase::MapSort.label(), "phase");
            }
            if combine_on {
                let ranges = buf.partition_ranges(job.reducers);
                let combine_start = std::time::Instant::now();
                trace.begin(Phase::Combine.label(), "phase");
                let mut segs = Vec::new();
                for (p, range) in ranges.into_iter().enumerate() {
                    if range.is_empty() {
                        continue;
                    }
                    // Collapse each key streak into one partial state.
                    let mut records = SegmentBufBuilder::new();
                    let mut i = range.start;
                    while i < range.end {
                        let start = i;
                        let mut state = job.agg.init(buf.key(i), buf.value(i));
                        i += 1;
                        while i < range.end && buf.key(i) == buf.key(start) {
                            job.agg.update(buf.key(start), &mut state, buf.value(i));
                            i += 1;
                        }
                        records.push(buf.key(start), &state);
                    }
                    segs.push(Segment {
                        map_task: task_id,
                        attempt,
                        partition: p,
                        sorted: true,
                        combined: true,
                        records: records.finish(),
                    });
                }
                stats
                    .profile
                    .add_time(Phase::Combine, combine_start.elapsed());
                trace.end(Phase::Combine.label(), "phase");
                segs
            } else {
                // Zero copy: the sorted arena is frozen in place and every
                // per-partition segment shares it behind an `Arc`.
                buf.freeze_into_segments(job.reducers)
                    .into_iter()
                    .enumerate()
                    .filter(|(_, r)| !r.is_empty())
                    .map(|(p, records)| Segment {
                        map_task: task_id,
                        attempt,
                        partition: p,
                        sorted: true,
                        combined: false,
                        records,
                    })
                    .collect()
            }
        }
        MapSideMode::HashPartitionOnly => {
            // "The map output is scanned once for partitioning, and no
            // effort is spent for grouping" (§V): the buffer is frozen as
            // is — per-partition entry tables over the shared arena, in
            // arrival order. No sort, no record copies; this mode's
            // grouping CPU is genuinely ~zero.
            buf.freeze_into_segments(job.reducers)
                .into_iter()
                .enumerate()
                .filter(|(_, r)| !r.is_empty())
                .map(|(p, records)| Segment {
                    map_task: task_id,
                    attempt,
                    partition: p,
                    sorted: false,
                    combined: false,
                    records,
                })
                .collect()
        }
        MapSideMode::HashCombine => {
            let _t = stats.profile.timed(Phase::MapHash);
            trace.begin(Phase::MapHash.label(), "phase");
            let mut tables: Vec<ByteMap<Vec<u8>>> =
                (0..job.reducers).map(|_| ByteMap::default()).collect();
            for (p, key, value) in buf.iter() {
                let table = &mut tables[p as usize];
                match table.get_mut(key) {
                    Some(state) => job.agg.update(key, state, value),
                    None => {
                        table.insert(key.to_vec(), job.agg.init(key, value));
                    }
                }
            }
            let segs: Vec<Segment> = tables
                .into_iter()
                .enumerate()
                .filter(|(_, t)| !t.is_empty())
                .map(|(p, table)| {
                    let mut records = SegmentBufBuilder::new();
                    for (k, state) in table {
                        records.push(&k, &state);
                    }
                    Segment {
                        map_task: task_id,
                        attempt,
                        partition: p,
                        sorted: false,
                        combined: true,
                        records: records.finish(),
                    }
                })
                .collect();
            trace.end(Phase::MapHash.label(), "phase");
            segs
        }
    };
    buf.clear();

    // Persist map output for fault tolerance — "a mapper completes after
    // its output has been persisted" (§II-A). The write is synchronous and
    // attributed to MapWrite; data is dropped immediately after (reducers
    // get it via the channel, as Hadoop reducers usually get it from the
    // mapper's memory, §II-A). Each segment goes down as one batched
    // framed write.
    if let Some(store) = map_store {
        let write_start = std::time::Instant::now();
        trace.begin(Phase::MapWrite.label(), "phase");
        let mut w = store.begin_run()?;
        for seg in &segments {
            w.write_segment(&seg.records)?;
        }
        let meta = w.finish()?;
        store.delete_run(meta.id)?;
        stats
            .profile
            .add_time(Phase::MapWrite, write_start.elapsed());
        trace.end(Phase::MapWrite.label(), "phase");
    }

    let mut sent_records = 0u64;
    let mut sent_bytes = 0u64;
    for seg in segments {
        sent_records += seg.len() as u64;
        sent_bytes += seg.payload_bytes();
        tx.send_segment(seg);
    }
    stats.shuffled_records += sent_records;
    stats.shuffled_bytes += sent_bytes;
    if sent_records > 0 {
        trace.instant(
            "shuffle_send",
            "shuffle",
            &[
                ("records", sent_records as f64),
                ("bytes", sent_bytes as f64),
            ],
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, MapEmitter};
    use crate::shuffle::{shuffle_fabric, ShuffleMsg};
    use onepass_groupby::SumAgg;

    fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
        for w in record.split(|&b| b == b' ') {
            if !w.is_empty() {
                out.emit(w, &1u64.to_le_bytes());
            }
        }
    }

    fn drain_segments(rxs: Vec<crossbeam::channel::Receiver<ShuffleMsg>>) -> (Vec<Segment>, usize) {
        let mut segs = Vec::new();
        let mut dones = 0;
        for rx in rxs {
            while let Ok(msg) = rx.try_recv() {
                match msg {
                    ShuffleMsg::Segment(s) => segs.push(s),
                    ShuffleMsg::MapDone { .. } => dones += 1,
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        (segs, dones)
    }

    fn run_with(job: JobSpec) -> (Vec<Segment>, MapTaskStats) {
        let (tx, rxs) = shuffle_fabric(job.reducers, 1024);
        let split = Split::new(vec![b"a b a".to_vec(), b"b c".to_vec(), b"a".to_vec()]);
        let stats = run_map_task(
            &job,
            0,
            &split,
            &tx,
            None,
            &mut LocalTracer::disabled(),
            &MapAttemptCtx::first(),
        )
        .unwrap();
        let (segs, dones) = drain_segments(rxs);
        assert_eq!(dones, job.reducers, "MapDone must reach every reducer");
        (segs, stats)
    }

    #[test]
    fn sort_spill_produces_sorted_combined_segments() {
        let job = JobSpec::builder("t")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .build()
            .unwrap();
        let (segs, stats) = run_with(job);
        assert_eq!(stats.input_records, 3);
        assert_eq!(stats.output_records, 6); // a,b,a,b,c,a
                                             // Combine collapsed duplicates: only distinct words shuffle.
        assert_eq!(stats.shuffled_records, 3);
        for seg in &segs {
            assert!(seg.sorted && seg.combined);
            let mut keys: Vec<_> = seg.records.iter().map(|(k, _)| k.to_vec()).collect();
            let orig = keys.clone();
            keys.sort();
            assert_eq!(keys, orig, "segment must be key-sorted");
        }
        // Sum of all states equals total emissions.
        let total: u64 = segs
            .iter()
            .flat_map(|s| s.records.iter())
            .map(|(_, v)| u64::from_le_bytes(v.try_into().unwrap()))
            .sum();
        assert_eq!(total, 6);
        assert!(stats.profile.time(Phase::MapSort) > std::time::Duration::ZERO);
    }

    #[test]
    fn hash_partition_only_neither_sorts_nor_combines() {
        let job = JobSpec::builder("t")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .map_side(MapSideMode::HashPartitionOnly)
            .build()
            .unwrap();
        let (segs, stats) = run_with(job);
        assert_eq!(stats.shuffled_records, 6, "no combine: all records shuffle");
        for seg in &segs {
            assert!(!seg.sorted && !seg.combined);
        }
        assert_eq!(
            stats.profile.time(Phase::MapSort),
            std::time::Duration::ZERO
        );
    }

    #[test]
    fn hash_combine_collapses_without_sorting() {
        let job = JobSpec::builder("t")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .map_side(MapSideMode::HashCombine)
            .build()
            .unwrap();
        let (segs, stats) = run_with(job);
        assert_eq!(stats.shuffled_records, 3);
        for seg in &segs {
            assert!(!seg.sorted && seg.combined);
        }
        assert_eq!(
            stats.profile.time(Phase::MapSort),
            std::time::Duration::ZERO
        );
    }

    #[test]
    fn push_mode_flushes_mid_task() {
        let job = JobSpec::builder("t")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .shuffle(ShuffleMode::Push { granularity: 2 })
            .combine_mode(crate::job::Combine::Off)
            .build()
            .unwrap();
        let (segs, stats) = run_with(job);
        assert!(
            stats.flushes >= 2,
            "push granularity must force early flushes"
        );
        assert!(segs.len() >= 2);
    }

    #[test]
    fn map_write_is_accounted_when_store_present() {
        let store: Arc<dyn SpillStore> = Arc::new(onepass_core::io::SharedMemStore::new());
        let job = JobSpec::builder("t")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .build()
            .unwrap();
        let (tx, _rxs) = shuffle_fabric(1, 64);
        let split = Split::new(vec![b"x y z".to_vec()]);
        let stats = run_map_task(
            &job,
            0,
            &split,
            &tx,
            Some(&store),
            &mut LocalTracer::disabled(),
            &MapAttemptCtx::first(),
        )
        .unwrap();
        assert!(
            store.stats().bytes_written > 0,
            "map output must be persisted"
        );
        assert!(stats.profile.time(Phase::MapWrite) > std::time::Duration::ZERO);
    }

    #[test]
    fn traced_flush_emits_phase_spans() {
        use onepass_core::trace::{complete_spans, Tracer, Track};
        let job = JobSpec::builder("t")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .build()
            .unwrap();
        let tracer = Tracer::enabled();
        let mut trace = tracer.local(Track::new("map", 0));
        let (tx, _rxs) = shuffle_fabric(2, 1024);
        let split = Split::new(vec![b"a b a".to_vec(), b"b c".to_vec()]);
        run_map_task(
            &job,
            0,
            &split,
            &tx,
            None,
            &mut trace,
            &MapAttemptCtx::first(),
        )
        .unwrap();
        drop(trace);
        let events = tracer.drain();
        assert!(events.iter().any(|e| e.name == "flush"));
        assert!(
            events.iter().any(|e| e.name == "shuffle_send"
                && e.args.iter().any(|&(k, v)| k == "records" && v > 0.0)),
            "shuffle_send instant must carry record counts"
        );
        let spans = complete_spans(&events).unwrap();
        assert!(spans.iter().any(|s| s.name == Phase::MapSort.label()));
        assert!(spans.iter().any(|s| s.name == Phase::Combine.label()));
    }

    #[test]
    fn cancelled_attempt_exits_early_without_map_done() {
        let job = JobSpec::builder("t")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .build()
            .unwrap();
        let ctx = MapAttemptCtx {
            attempt: 1,
            injector: FaultInjector::none(),
            cancel: Some(Arc::new(AtomicBool::new(true))),
        };
        let (tx, rxs) = shuffle_fabric(1, 8);
        let split = Split::new(vec![b"a b".to_vec()]);
        let err = run_map_task(
            &job,
            0,
            &split,
            &tx,
            None,
            &mut LocalTracer::disabled(),
            &ctx,
        )
        .unwrap_err();
        assert!(matches!(err, Error::Cancelled));
        let (segs, dones) = drain_segments(rxs);
        assert!(
            segs.is_empty() && dones == 0,
            "cancelled attempt stays silent"
        );
    }

    #[test]
    fn injected_fault_stops_mid_split() {
        let job = JobSpec::builder("t")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .build()
            .unwrap();
        let ctx = MapAttemptCtx {
            attempt: 0,
            injector: onepass_core::fault::FaultPlan::new()
                .fail_map(0, 0, 1)
                .into_injector(),
            cancel: None,
        };
        let (tx, rxs) = shuffle_fabric(1, 8);
        let split = Split::new(vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        let err = run_map_task(
            &job,
            0,
            &split,
            &tx,
            None,
            &mut LocalTracer::disabled(),
            &ctx,
        )
        .unwrap_err();
        assert!(matches!(err, Error::Io(_)));
        assert_eq!(ctx.injector.triggered(), 1);
        let (_segs, dones) = drain_segments(rxs);
        assert_eq!(dones, 0, "failed attempt must not announce MapDone");
    }

    #[test]
    fn empty_split_still_reports_done() {
        let job = JobSpec::builder("t").reducers(2).build().unwrap();
        let (tx, rxs) = shuffle_fabric(2, 8);
        let stats = run_map_task(
            &job,
            3,
            &Split::default(),
            &tx,
            None,
            &mut LocalTracer::disabled(),
            &MapAttemptCtx::first(),
        )
        .unwrap();
        assert_eq!(stats.output_records, 0);
        let (segs, dones) = drain_segments(rxs);
        assert!(segs.is_empty());
        assert_eq!(dones, 2);
    }
}
