//! Multi-round iterative plans, in the Goodrich et al. round-complexity
//! framing (arXiv:1101.1902): an algorithm is a sequence of MapReduce
//! rounds, each round a [`Plan`] whose state rides the
//! [`DatasetCache`] between rounds instead of being re-scanned and
//! re-shuffled.
//!
//! The body closure builds the round's plan (typically: round 0 parses
//! raw input and caches the initial state; later rounds read the state
//! through [`PlanBuilder::cached_input`](crate::plan::PlanBuilder) and
//! overwrite it via
//! [`PlanBuilder::cache_output`](crate::plan::PlanBuilder)). Because
//! cache capture partitions by the producing stage's own partitioner
//! and reducer count, a body that keeps those stable gets
//! partition-stable placement: every round's cached partitions line up
//! with the next round's reducers, and with
//! `cached_input_aligned` the inter-round shuffle disappears.
//!
//! A killed or replayed round is safe to re-run: cache capture happens
//! once, after the round's plan (with all its task retries) succeeds,
//! and `put` replaces the dataset atomically — re-running round *k*
//! against round *k−1*'s state is idempotent.

use onepass_core::error::Result;

use crate::cache::DatasetCache;
use crate::driver::Engine;
use crate::map_task::Split;
use crate::plan::{Plan, PlanConfig};
use crate::report::PlanReport;

/// What a convergence check sees after each round.
pub struct RoundContext<'a> {
    /// Round index, starting at 0.
    pub round: usize,
    /// The cache, holding every dataset the round published.
    pub cache: &'a DatasetCache,
    /// The round's full plan report.
    pub report: &'a PlanReport,
}

/// A loop driver re-running a plan body against a [`DatasetCache`].
///
/// ```no_run
/// # use onepass_runtime::prelude::*;
/// # use onepass_core::error::Result;
/// # fn round_plan(round: usize) -> Result<(Plan, Vec<Split>)> { unimplemented!() }
/// let engine = Engine::new();
/// let cache = DatasetCache::new(CacheConfig::default());
/// let mut iter = IterativePlan::new(PlanConfig::default(), |round, _cache| round_plan(round));
/// let reports = iter
///     .run_until(&engine, &cache, 10, |ctx| Ok(ctx.round >= 9))
///     .unwrap();
/// ```
pub struct IterativePlan<F> {
    config: PlanConfig,
    body: F,
}

impl<F> IterativePlan<F>
where
    F: FnMut(usize, &DatasetCache) -> Result<(Plan, Vec<Split>)>,
{
    /// A loop whose rounds run under `config`. `body` builds each
    /// round's plan and record input (usually empty after round 0 —
    /// later rounds are cache-fed).
    pub fn new(config: PlanConfig, body: F) -> Self {
        IterativePlan { config, body }
    }

    /// Run rounds until `converged` returns true or `max_rounds` rounds
    /// have run, whichever is first. Returns every round's report, in
    /// order; the convergence check runs after each round, so at least
    /// one round always executes (with `max_rounds > 0`).
    pub fn run_until<C>(
        &mut self,
        engine: &Engine,
        cache: &DatasetCache,
        max_rounds: usize,
        mut converged: C,
    ) -> Result<Vec<PlanReport>>
    where
        C: FnMut(&RoundContext<'_>) -> Result<bool>,
    {
        let mut reports = Vec::new();
        for round in 0..max_rounds {
            let (plan, input) = (self.body)(round, cache)?;
            let report = engine.run_plan_with_cache(&plan, input, &self.config, Some(cache))?;
            let done = converged(&RoundContext {
                round,
                cache,
                report: &report,
            })?;
            reports.push(report);
            if done {
                break;
            }
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::job::{JobSpec, MapEmitter};
    use crate::plan::PlanMode;
    use onepass_groupby::SumAgg;
    use std::sync::Arc;

    /// Iterated doubling: round 0 parses `n` from text and caches it;
    /// each later round doubles every cached value. After r rounds the
    /// value is n * 2^r — exercises cache_output + cached_input_aligned
    /// round-tripping and the convergence cutoff.
    #[test]
    fn doubling_loop_converges_via_cache() {
        fn parse_map(record: &[u8], out: &mut dyn MapEmitter) {
            let n: u64 = std::str::from_utf8(record).unwrap().parse().unwrap();
            out.emit(b"x", &n.to_le_bytes());
        }
        struct DoubleMap;
        impl crate::job::MapFn for DoubleMap {
            fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
                let (k, v) = crate::codec::decode_pair(record).expect("edge record");
                self.map_pair(k, v, out);
            }
            fn map_pair(&self, key: &[u8], value: &[u8], out: &mut dyn MapEmitter) {
                let n = u64::from_le_bytes(value.try_into().unwrap());
                out.emit(key, &(n * 2).to_le_bytes());
            }
        }

        let job = |name: &str, first: bool| -> JobSpec {
            let b = JobSpec::builder(name)
                .aggregate(Arc::new(SumAgg))
                .reducers(2)
                .preset_onepass();
            let b = if first {
                b.map_fn(Arc::new(parse_map))
            } else {
                b.map_fn(Arc::new(DoubleMap))
            };
            b.build().unwrap()
        };

        for mode in [PlanMode::Pipelined, PlanMode::Barrier] {
            let engine = Engine::new();
            let cache = DatasetCache::new(CacheConfig::default());
            let mut iter = IterativePlan::new(PlanConfig::new(mode), |round, _c| {
                let mut b = Plan::builder();
                if round == 0 {
                    let s = b.add_stage(job("parse", true));
                    b.cache_output(s, "state");
                    Ok((b.build()?, vec![Split::new(vec![b"5".to_vec()])]))
                } else {
                    let s = b.add_stage(job("double", false));
                    b.cached_input_aligned(s, "state");
                    b.cache_output(s, "state");
                    Ok((b.build()?, Vec::new()))
                }
            });
            let reports = iter
                .run_until(&engine, &cache, 10, |ctx| {
                    let state = ctx.cache.get("state").unwrap().unwrap();
                    let v: u64 = state
                        .iter()
                        .flat_map(|p| p.iter().map(|(_, v)| u64::from_le_bytes(v.try_into().unwrap())))
                        .sum();
                    Ok(v >= 40) // 5 -> 10 -> 20 -> 40: stops after round 3
                })
                .unwrap();
            assert_eq!(reports.len(), 4, "{mode:?}");
            let state = cache.get("state").unwrap().unwrap();
            let total: u64 = state
                .iter()
                .flat_map(|p| p.iter().map(|(_, v)| u64::from_le_bytes(v.try_into().unwrap())))
                .sum();
            assert_eq!(total, 40, "{mode:?}");
            assert!(cache.stats().hits > 0, "{mode:?}");
        }
    }
}
