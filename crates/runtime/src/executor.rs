//! Job execution mechanics: worker pools, shuffle wiring, shared
//! backend-construction services, and report assembly.
//!
//! The executor is the layer between the public [`Engine`](crate::Engine)
//! facade and the [`crate::scheduler`] policy loop. It owns everything a
//! single job run needs — spawning map/reduce workers, building spill
//! stores and groupers, timing output — while the scheduler decides *what*
//! to run next. The plan layer ([`crate::plan`]) calls [`execute`]
//! directly, once per stage, with a streamed split feed and an output tap
//! that forwards finals to downstream stages.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::unbounded;

use onepass_core::bytes_kv::KvBuf;
use onepass_core::error::{Error, Result};
use onepass_core::governor::{MemoryGovernor, MemoryPolicy};
use onepass_core::hashlib::{HashFamily, SeededFamily};
use onepass_core::io::{FileSpillStore, SharedMemStore, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_core::metrics::Phase;
use onepass_core::trace::{LocalTracer, Track};
use onepass_groupby::{
    Aggregator, EmitKind, FreqHashGrouper, GroupBy, HybridHashGrouper, IncHashGrouper, Sink,
};

use crate::driver::{EngineConfig, SpillBackend};
use crate::in_node::{innode_eligible, WorkerCombiner};
use crate::job::{JobSpec, ReduceBackend};
use crate::map_task::{run_map_task_with, MapAttemptCtx};
use crate::reduce_task::{panic_message, run_reduce_task_open, ReduceResult, ReduceRetryOpts};
use crate::report::{JobOutput, JobReport, TaskKind, TaskSpan};
use crate::scheduler::{schedule_maps, MapAssignment, MapEvent, SchedulerCtx, SplitFeed};
use crate::shuffle::shuffle_fabric;
use crate::telemetry::{SinkObs, StageTelemetry};
use crate::transport::coordinator::{SinkFactory, TcpCluster};
use crate::transport::wire::WireJob;
use crate::transport::Transport;

/// Per-partition observer invoked on every sink emission, in addition to
/// normal output collection. The plan layer uses it to stream a stage's
/// final answers into the next stage's split feed while the stage is
/// still running.
pub(crate) type ReduceTap = Box<dyn FnMut(&[u8], &[u8], EmitKind) + Send>;

/// Builds the [`ReduceTap`] for one reduce partition. A factory (rather
/// than one shared closure) lets each partition own private buffering
/// state, so concurrently-draining reducers never contend on a lock in
/// the emission hot path.
pub(crate) type TapFactory = Arc<dyn Fn(usize) -> ReduceTap + Send + Sync>;

/// Everything one job execution needs.
pub(crate) struct ExecParams<'a> {
    pub config: &'a EngineConfig,
    pub job: &'a JobSpec,
    pub feed: SplitFeed,
    /// Time base for spans and output timestamps. The engine passes the
    /// job start; a plan passes the *plan* start so time-to-first-answer
    /// is comparable across stages.
    pub clock: Instant,
    /// Optional per-partition emission observer (see [`TapFactory`]).
    pub tap: Option<TapFactory>,
    /// Governor override. `Some` pools this job's reducers with other
    /// concurrently-live stages of a plan; `None` derives a governor (or
    /// static budgets) from `config.memory_policy` as a standalone job.
    pub governor: Option<MemoryGovernor>,
    /// Added to every trace track id so concurrent stages of a plan don't
    /// collide in the flamegraph (stage `i` uses `i * 1_000_000`).
    pub track_offset: u64,
}

/// Build a spill store for `spill`.
pub(crate) fn make_store(spill: SpillBackend) -> Result<Arc<dyn SpillStore>> {
    Ok(match spill {
        SpillBackend::Memory => Arc::new(SharedMemStore::new()),
        SpillBackend::TempFiles => Arc::new(FileSpillStore::temp()?),
    })
}

/// Build a hash group-by operator for `backend`. The shared construction
/// service used by reduce attempts and (via
/// [`build_incremental_grouper`]) stream sessions, so backend wiring
/// lives in exactly one place.
pub(crate) fn build_hash_grouper(
    backend: &ReduceBackend,
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    agg: Arc<dyn Aggregator>,
    tracer: Option<LocalTracer>,
    family: HashFamily,
) -> Result<Box<dyn GroupBy>> {
    let seeded = SeededFamily::of(family);
    Ok(match backend {
        ReduceBackend::HybridHash { fanout } => {
            let mut g = HybridHashGrouper::with_family(store, budget, *fanout, agg, seeded)?;
            if let Some(t) = tracer {
                g.set_tracer(t);
            }
            Box::new(g)
        }
        ReduceBackend::IncHash { early } => {
            // Incremental hash probes only its resident table (no bucket
            // routing), so the family choice has nothing to configure.
            let mut g = IncHashGrouper::with_early(store, budget, agg, early.clone());
            if let Some(t) = tracer {
                g.set_tracer(t);
            }
            Box::new(g)
        }
        ReduceBackend::FreqHash(cfg) => {
            let mut g = FreqHashGrouper::with_family(store, budget, agg, cfg.clone(), seeded);
            if let Some(t) = tracer {
                g.set_tracer(t);
            }
            Box::new(g)
        }
        ReduceBackend::SortMerge { .. } => {
            return Err(Error::InvalidState(
                "sort-merge is not a hash backend".into(),
            ))
        }
    })
}

/// Build an *incremental* grouper (IncHash / FreqHash), rejecting blocking
/// backends with a config error. Used by
/// [`StreamSession`](crate::stream::StreamSession).
pub(crate) fn build_incremental_grouper(
    backend: &ReduceBackend,
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    agg: Arc<dyn Aggregator>,
    family: HashFamily,
) -> Result<Box<dyn GroupBy>> {
    match backend {
        ReduceBackend::IncHash { .. } | ReduceBackend::FreqHash(_) => {
            build_hash_grouper(backend, store, budget, agg, None, family)
        }
        other => Err(Error::Config(format!(
            "incremental grouping requires an incremental backend; {} is blocking",
            other.label()
        ))),
    }
}

/// Execute one job: spawn map workers, one reducer per partition, run the
/// scheduler's coordinator loop, and assemble the report.
pub(crate) fn execute(params: ExecParams<'_>) -> Result<JobReport> {
    let ExecParams {
        config,
        job,
        feed,
        clock,
        tap,
        governor,
        track_offset,
    } = params;
    job.validate()?;
    let mut retry = config.retry;
    if retry.max_attempts == 0 {
        return Err(Error::Config("retry.max_attempts must be >= 1".into()));
    }
    let tcp_workers = match &config.transport {
        Transport::InProc => None,
        Transport::Tcp { workers } => {
            if workers.is_empty() {
                return Err(Error::Config(
                    "transport tcp requires at least one worker address".into(),
                ));
            }
            // Worker loss is survived by re-running lost attempts on
            // survivors; guarantee the retry budget can absorb losing
            // every worker once.
            retry.max_attempts = retry.max_attempts.max(workers.len() + 2);
            Some(workers.as_slice())
        }
    };
    let spec = config.speculation;
    let injector = config.faults.clone();
    // Attempt-aware shuffle dedup is only needed when a map task can run
    // more than once; otherwise reducers keep the eager commit-on-arrival
    // fast path.
    let ft_active = retry.max_attempts > 1 || spec.enabled || injector.is_active();

    let start = clock;
    let (initial, feed_rx) = match feed {
        SplitFeed::Fixed(splits) => (splits.into_iter().map(Arc::new).collect::<Vec<_>>(), None),
        SplitFeed::Streamed(rx) => (Vec::new(), Some(rx)),
    };
    // A fixed feed knows its map-task count up front; a streamed feed's
    // reducers run open-ended until the scheduler broadcasts the total.
    let known_total = if feed_rx.is_none() {
        Some(initial.len())
    } else {
        None
    };
    let (shuffle_tx, shuffle_rxs) = shuffle_fabric(job.reducers, config.channel_depth);

    // Adaptive governance: pool the per-reducer budgets job-wide and gate
    // map pushes on pool pressure. Static keeps the seed behaviour: a
    // fixed private budget per reduce attempt. A plan-supplied governor
    // (pooling across stages) takes precedence.
    let governor = match governor {
        Some(g) => Some(g),
        None => match &config.memory_policy {
            MemoryPolicy::Static => None,
            MemoryPolicy::Adaptive { policy, high_water } => Some(MemoryGovernor::new(
                job.reduce_budget_bytes.saturating_mul(job.reducers.max(1)),
                Arc::clone(policy),
                *high_water,
            )),
        },
    };
    let shuffle_tx = match &governor {
        Some(g) => shuffle_tx.with_pressure(g.clone(), config.channel_depth),
        None => shuffle_tx,
    };

    // Live metrics: one handle set per executed job, labeled by job name
    // (which is the stage name inside a plan).
    let telemetry = config
        .metrics
        .as_ref()
        .map(|m| StageTelemetry::new(m, &job.name));
    let shuffle_tx = match &telemetry {
        Some(t) => shuffle_tx.with_metrics(
            t.shuffle_bytes.clone(),
            t.shuffle_segments.clone(),
            t.backpressure_stalls.clone(),
        ),
        None => shuffle_tx,
    };

    // Map-side persistence store (shared; only totals are read). Remote
    // map tasks never persist output — recovery is re-execution from the
    // coordinator-held split.
    let map_store = if tcp_workers.is_none() && config.persist_map_output.is_persist() {
        Some(make_store(config.spill)?)
    } else {
        None
    };
    let spill = config.spill;
    let hash_family = config.hash_family;
    // In-node combining: map tasks on the same worker drain into one
    // shared combine table that flushes far less often than per-task
    // combining ships (see `crate::in_node` for eligibility + protocol).
    // Worker-scoped combining doesn't cross process boundaries, so it's
    // off for remote maps (per-task HashCombine still applies there).
    let innode = tcp_workers.is_none() && innode_eligible(config, job);

    // Work queue + event stream between coordinator and map workers.
    let (task_tx, task_rx) = unbounded::<MapAssignment>();
    let (evt_tx, evt_rx) = unbounded::<MapEvent>();
    let (red_res_tx, red_res_rx) = unbounded::<Result<(ReduceResult, TaskSpan, TimedSink)>>();

    let tracer = &config.tracer;
    let mut driver_trace = tracer.local(Track::new("driver", track_offset));
    driver_trace.begin("job", "job");

    // Distributed mode: dial the worker fleet up front. Reduces run
    // remotely only when nothing taps emissions locally (a plan's
    // interior stages keep local reducers feeding downstream stages; maps
    // still go remote).
    let remote_reduce = tcp_workers.is_some() && tap.is_none();
    let cluster = match tcp_workers {
        Some(addrs) => {
            let wire = WireJob::from_job(job, retry.max_attempts, spill, hash_family);
            let collect = job.collect_output.is_collect();
            let sink_telemetry = telemetry.clone();
            let sink_factory: SinkFactory<'_> = Box::new(move |_p| {
                TimedSink::new(
                    start,
                    collect,
                    None,
                    sink_telemetry.as_ref().map(SinkObs::new),
                )
            });
            Some(TcpCluster::connect(
                addrs,
                &job.name,
                wire,
                job.reducers,
                remote_reduce,
                start,
                config.metrics.as_ref(),
                tracer,
                track_offset,
                sink_factory,
            )?)
        }
        None => None,
    };

    let mut outcome = None;

    crossbeam::thread::scope(|scope| {
        if let Some(c) = &cluster {
            // Distributed map side: dispatcher threads bridge the
            // scheduler's queue onto worker connections; reader threads
            // feed worker segments back into the local fabric.
            c.set_bail(task_rx.clone(), evt_tx.clone());
            c.spawn_io(scope, &shuffle_tx, red_res_tx.clone());
            c.spawn_map_dispatch(
                scope,
                task_rx.clone(),
                evt_tx.clone(),
                config.map_workers.max(1),
            );
        }
        // Map workers (in-proc; none when maps run on remote workers).
        let local_map_workers = if cluster.is_some() {
            0
        } else {
            config.map_workers.max(1)
        };
        for _ in 0..local_map_workers {
            let task_rx = task_rx.clone();
            let shuffle_tx = shuffle_tx.clone();
            let evt_tx = evt_tx.clone();
            let map_store = map_store.clone();
            let injector = injector.clone();
            let governor = governor.clone();
            let innode_ratio = telemetry.as_ref().map(|t| t.innode_combine_ratio.clone());
            scope.spawn(move |_| {
                // Worker-scoped combine table, governor-leased so its
                // bytes are debited from the same pool as reduce tables.
                let mut combiner = innode.then(|| {
                    let budget = match &governor {
                        Some(g) => g.lease(job.map_buffer_bytes),
                        None => MemoryBudget::new(job.map_buffer_bytes),
                    };
                    WorkerCombiner::new(job.reducers, budget)
                });
                // Reusable deferred-output arena: each attempt's full map
                // output lands here before the post-success fold.
                let mut deferred_buf = KvBuf::new();
                while let Ok(asg) = task_rx.recv() {
                    if !asg.delay.is_zero() {
                        std::thread::sleep(asg.delay);
                    }
                    let MapAssignment {
                        task,
                        attempt,
                        speculative,
                        split,
                        cancel,
                        ..
                    } = asg;
                    let t0 = start.elapsed();
                    let _ = evt_tx.send(MapEvent::Started {
                        task,
                        attempt,
                        at: t0,
                    });
                    let mut trace = tracer.local(Track::new("map", track_offset + task as u64));
                    trace.begin("map_task", "task");
                    let ctx = MapAttemptCtx {
                        attempt,
                        injector: injector.clone(),
                        cancel: Some(cancel),
                    };
                    // In deferred mode persistence moves to the worker
                    // flush (what goes down is what actually shuffles).
                    let task_store = if combiner.is_some() {
                        None
                    } else {
                        map_store.as_ref()
                    };
                    deferred_buf.clear();
                    let deferred = combiner.as_ref().map(|_| &mut deferred_buf);
                    // A panicking map function is a task failure, not an
                    // engine failure: convert it to Err so the retry
                    // budget applies.
                    let mut result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_map_task_with(
                            job,
                            task,
                            &split,
                            &shuffle_tx,
                            task_store,
                            &mut trace,
                            &ctx,
                            deferred,
                        )
                    }))
                    .unwrap_or_else(|p| {
                        Err(Error::InvalidState(format!(
                            "map task panicked: {}",
                            panic_message(p.as_ref())
                        )))
                    });
                    // Only a *successful* attempt reaches the shared
                    // table — a failed or cancelled attempt's buffer is
                    // simply discarded, exactly as a failed attempt never
                    // announces MapDone.
                    if let (Some(c), Ok(stats)) = (combiner.as_mut(), result.as_mut()) {
                        let fold_start = std::time::Instant::now();
                        trace.begin(Phase::MapHash.label(), "phase");
                        c.fold_task(
                            task,
                            attempt,
                            &deferred_buf,
                            job.partitioner.as_ref(),
                            job.agg.as_ref(),
                        );
                        trace.end(Phase::MapHash.label(), "phase");
                        stats.profile.add_time(Phase::MapHash, fold_start.elapsed());
                        if c.should_flush()
                            && c.flush(&shuffle_tx, map_store.as_ref(), innode_ratio.as_ref())
                                .is_err()
                        {
                            shuffle_tx.abort();
                        }
                    }
                    trace.end("map_task", "task");
                    drop(trace);
                    let span = TaskSpan {
                        kind: TaskKind::Map,
                        id: task,
                        attempt,
                        start: t0,
                        end: start.elapsed(),
                    };
                    let _ = evt_tx.send(MapEvent::Finished {
                        task,
                        attempt,
                        speculative,
                        span,
                        result,
                    });
                }
                // Task queue closed (scheduler exited): drain the table.
                // Segments ship first, then the deferred MapDones, so the
                // reducers waiting on those tasks can now finish.
                if let Some(mut c) = combiner {
                    if c.flush(&shuffle_tx, map_store.as_ref(), innode_ratio.as_ref())
                        .is_err()
                    {
                        shuffle_tx.abort();
                    }
                }
            });
        }

        // Streamed feed forwarder: turn arriving splits into scheduler
        // events so the coordinator stays a single recv loop.
        if let Some(rx) = feed_rx {
            let evt_tx = evt_tx.clone();
            scope.spawn(move |_| {
                for item in rx.iter() {
                    let _ = evt_tx.send(MapEvent::NewSplit(item));
                }
                let _ = evt_tx.send(MapEvent::FeedClosed);
            });
        }
        drop(evt_tx);

        // Reduce side: remote partitions are forwarded to their owning
        // workers (with a retained log for replay); otherwise local
        // reduce workers, one per partition.
        let shuffle_rxs = match &cluster {
            Some(c) if remote_reduce => {
                c.spawn_partition_forwarders(scope, shuffle_rxs);
                Vec::new()
            }
            _ => shuffle_rxs,
        };
        for (partition, rx) in shuffle_rxs.into_iter().enumerate() {
            let red_res_tx = red_res_tx.clone();
            let injector = injector.clone();
            let governor = governor.clone();
            let tap = tap.clone();
            let sink_obs = telemetry.as_ref().map(SinkObs::new);
            scope.spawn(move |_| {
                let mut trace = tracer.local(Track::new("reduce", track_offset + partition as u64));
                trace.begin("reduce_task", "task");
                let t0 = start.elapsed();
                let tap = tap.as_ref().map(|factory| factory(partition));
                let mut sink =
                    TimedSink::new(start, job.collect_output.is_collect(), tap, sink_obs);
                // Each reduce attempt gets a fresh store + budget, so
                // state a failed attempt abandoned can never starve or
                // corrupt its successor.
                let mut resources = || -> Result<(Arc<dyn SpillStore>, MemoryBudget)> {
                    let store = make_store(spill)?;
                    // Under the governor, a retry's fresh lease starts
                    // back at the nominal share; whatever the failed
                    // attempt was holding drained back to the pool when
                    // its budget dropped.
                    let budget = match &governor {
                        Some(g) => g.lease(job.reduce_budget_bytes),
                        None => MemoryBudget::new(job.reduce_budget_bytes),
                    };
                    Ok((store, budget))
                };
                let opts = ReduceRetryOpts {
                    max_attempts: retry.max_attempts,
                    backoff: retry.backoff,
                    dedup_attempts: ft_active,
                    injector,
                    hash_family,
                };
                let res = run_reduce_task_open(
                    job,
                    partition,
                    &rx,
                    known_total,
                    &mut resources,
                    &mut sink,
                    &mut trace,
                    &opts,
                );
                let attempt = res
                    .as_ref()
                    .map_or(retry.max_attempts.saturating_sub(1), |r| r.attempts - 1);
                let span = TaskSpan {
                    kind: TaskKind::Reduce,
                    id: partition,
                    attempt,
                    start: t0,
                    end: start.elapsed(),
                };
                trace.end("reduce_task", "task");
                drop(trace);
                let _ = red_res_tx.send(res.map(|r| (r, span, sink)));
            });
        }
        drop(red_res_tx);

        // ---- Map coordinator (this thread). ----
        let ctx = SchedulerCtx {
            retry,
            speculation: spec,
            task_tx,
            evt_rx,
            shuffle_tx: &shuffle_tx,
            clock: start,
            telemetry: telemetry.as_ref(),
        };
        let feed_open = known_total.is_none();
        let mut out = schedule_maps(ctx, initial, feed_open, &mut driver_trace);

        if let Some(c) = &cluster {
            if out.fatal.is_none() {
                // Fixed feeds never broadcast the task total locally
                // (reducers are born knowing it) — remote reduces aren't,
                // so tell them now that every map has committed.
                if known_total.is_some() {
                    shuffle_tx.input_exhausted(out.total_map_tasks);
                }
                if remote_reduce {
                    if let Err(e) = c.await_remote_reduces(job.reducers) {
                        out.fatal = Some(e);
                    }
                }
            }
            if out.fatal.is_some() {
                // A job rejection (unregistered name, bad knobs) is the
                // root cause behind whatever the scheduler saw.
                if let Some(reason) = c.rejection() {
                    out.fatal = Some(Error::Config(reason));
                }
                c.set_aborting();
            }
        }
        // All attempts drained (SchedulerCtx::task_tx dropped with the
        // ctx). On failure, unblock reducers still waiting for MapDones
        // that will never arrive.
        if out.fatal.is_some() {
            shuffle_tx.abort();
        }
        if let Some(c) = &cluster {
            c.close();
        }
        outcome = Some(out);
    })
    .map_err(|_| Error::InvalidState("engine worker panicked".into()))?;

    driver_trace.end("job", "job");
    drop(driver_trace);

    let outcome = outcome.expect("scheduler outcome present");
    if let Some(e) = outcome.fatal {
        return Err(e);
    }

    // Assemble the report.
    let mut report = JobReport {
        name: job.name.clone(),
        backend: job.backend.label().to_string(),
        ..Default::default()
    };
    for (stats, span) in &outcome.map_results {
        report.absorb_map(stats);
        report.task_spans.push(*span);
    }
    report.task_spans.extend(outcome.extra_spans);
    report.map_attempts = outcome.map_attempts;
    report.failed_attempts = outcome.failed_attempts;
    report.speculative_launched = outcome.speculative_launched;
    report.speculative_wins = outcome.speculative_wins;
    if report.map_tasks != outcome.total_map_tasks {
        return Err(Error::InvalidState(format!(
            "expected {} map results, got {}",
            outcome.total_map_tasks, report.map_tasks
        )));
    }
    let mut early_total = 0u64;
    for res in red_res_rx.iter() {
        let (result, span, mut sink) = res?;
        sink.flush_obs();
        if let Some(t) = &telemetry {
            t.publish_profile("reduce", &result.stats.profile);
        }
        report.absorb_reduce(&result);
        report.task_spans.push(span);
        early_total += sink.early_seen;
        if let Some(t) = sink.first_early {
            report.first_early_at = Some(match report.first_early_at {
                Some(cur) => cur.min(t),
                None => t,
            });
        }
        if let Some(t) = sink.first_final {
            report.first_final_at = Some(match report.first_final_at {
                Some(cur) => cur.min(t),
                None => t,
            });
        }
        report.outputs.extend(sink.outputs);
    }
    // Early emissions = what the sinks actually saw: covers backend early
    // output *and* HOP snapshots uniformly, independent of whether
    // outputs were collected.
    report.early_emits = early_total;
    report.shuffled_bytes = shuffle_tx.shuffled_bytes();
    report.shuffled_records = shuffle_tx.shuffled_records();
    if let Some(ms) = &map_store {
        report.map_write_io = ms.stats();
    }
    if let Some(g) = &governor {
        let c = g.counters();
        report.mem_rebalances = c.rebalances;
        report.mem_sheds = c.sheds;
        report.mem_shed_bytes = c.shed_bytes_requested;
        report.mem_pool_high_water = g.pool().high_water() as u64;
    }
    report.backpressure_stalls = shuffle_tx.backpressure_stalls();
    report.wall = start.elapsed();
    if let Some(t) = &telemetry {
        t.publish_governor(
            report.mem_rebalances,
            report.mem_sheds,
            report.mem_shed_bytes,
            report.mem_pool_high_water,
        );
        t.publish_wall(report.wall);
    }
    Ok(report)
}

/// Sink that timestamps emissions, optionally stores them, and optionally
/// forwards each one to an [`OutputTap`].
pub(crate) struct TimedSink {
    start: Instant,
    collect: bool,
    tap: Option<ReduceTap>,
    obs: Option<SinkObs>,
    pub(crate) outputs: Vec<JobOutput>,
    pub(crate) early_seen: u64,
    pub(crate) final_seen: u64,
    pub(crate) first_early: Option<std::time::Duration>,
    pub(crate) first_final: Option<std::time::Duration>,
}

impl std::fmt::Debug for TimedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedSink")
            .field("collect", &self.collect)
            .field("outputs", &self.outputs.len())
            .field("early_seen", &self.early_seen)
            .field("final_seen", &self.final_seen)
            .finish()
    }
}

impl TimedSink {
    fn new(start: Instant, collect: bool, tap: Option<ReduceTap>, obs: Option<SinkObs>) -> Self {
        TimedSink {
            start,
            collect,
            tap,
            obs,
            outputs: Vec::new(),
            early_seen: 0,
            final_seen: 0,
            first_early: None,
            first_final: None,
        }
    }

    /// Flush buffered emission counts to the live registry (end of task).
    pub(crate) fn flush_obs(&mut self) {
        if let Some(o) = self.obs.as_mut() {
            o.flush();
        }
    }
}

impl Sink for TimedSink {
    fn emit(&mut self, key: &[u8], value: &[u8], kind: EmitKind) {
        let at = self.start.elapsed();
        match kind {
            EmitKind::Early => {
                self.early_seen += 1;
                self.first_early.get_or_insert(at);
            }
            EmitKind::Final => {
                self.final_seen += 1;
                self.first_final.get_or_insert(at);
            }
        }
        if let Some(o) = self.obs.as_mut() {
            o.on_emit(kind == EmitKind::Final, at);
        }
        if let Some(tap) = self.tap.as_mut() {
            tap(key, value, kind);
        }
        if self.collect {
            self.outputs.push(JobOutput {
                key: key.to_vec(),
                value: value.to_vec(),
                kind,
                at,
            });
        }
    }
}
