//! # onepass-runtime
//!
//! A real, multithreaded MapReduce execution engine with the two execution
//! paths the paper contrasts:
//!
//! * the **Hadoop baseline**: map-side block sort on `(partition, key)`
//!   with combine-on-spill, synchronous map-output write, pull shuffle,
//!   reduce-side multi-pass merge with factor `F` (§II-A, Fig. 1);
//! * the paper's **hash-based one-pass paths**: map-side hash partitioning
//!   (no sort) or hash combine, push (pipelined) shuffle, and reduce-side
//!   hybrid hash / incremental hash / frequent-key hash (§V, Fig. 5);
//!
//! plus a MapReduce-Online-style variant (pipelined sort-merge with
//! periodic snapshots) for the §III-D comparison.
//!
//! Entry points: build a [`JobSpec`], then run it with
//! [`Engine::run`](driver::Engine::run), compose multi-stage jobs into a
//! [`plan::Plan`] and run them with
//! [`Engine::run_plan`](driver::Engine::run_plan), stream unbounded input
//! through [`stream::StreamSession`], or window it with
//! [`window::WindowedSession`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod codec;
pub mod driver;
mod executor;
pub mod in_node;
pub mod iterate;
pub mod job;
pub mod map_task;
pub mod plan;
pub mod reduce_task;
pub mod report;
mod scheduler;
pub mod serve;
pub mod shuffle;
pub mod stream;
mod telemetry;
pub mod transport;
pub mod window;

pub use cache::{CacheConfig, DatasetCache};
pub use driver::{
    Engine, EngineConfig, EngineConfigBuilder, MapOutputPersistence, RetryPolicy,
    SpeculationConfig, SpillBackend,
};
pub use in_node::InNodeCombine;
pub use iterate::{IterativePlan, RoundContext};
pub use job::{
    CollectOutput, Combine, JobSpec, JobSpecBuilder, MapEmitter, MapFn, MapSideMode, Partitioner,
    ReduceBackend, ShuffleMode,
};
pub use plan::{PairMap, Plan, PlanBuilder, PlanConfig, PlanMode, StageId};
pub use report::{
    JobOutput, JobReport, PhaseBreakdown, PlanReport, StageReport, TaskKind, TaskSpan,
};
pub use serve::{
    AdmissionConfig, DlqConfig, Frontend, QueryCatalog, ServeConfig, Server, StreamingQuery,
    TenantEvent, TenantHandle, TenantSession,
};
pub use transport::{worker::WorkerOptions, JobRegistry, Transport};

/// One-stop imports for building and running jobs.
///
/// ```
/// use onepass_runtime::prelude::*;
/// ```
pub mod prelude {
    pub use crate::cache::{CacheConfig, DatasetCache};
    pub use crate::codec::{decode_pair, encode_pair};
    pub use crate::driver::{
        Engine, EngineConfig, EngineConfigBuilder, MapOutputPersistence, RetryPolicy,
        SpeculationConfig, SpillBackend,
    };
    pub use crate::in_node::InNodeCombine;
    pub use crate::iterate::{IterativePlan, RoundContext};
    pub use crate::job::{
        CollectOutput, Combine, JobSpec, JobSpecBuilder, MapEmitter, MapFn, MapSideMode,
        Partitioner, ReduceBackend, ShuffleMode,
    };
    pub use crate::map_task::Split;
    pub use crate::plan::{PairMap, Plan, PlanBuilder, PlanConfig, PlanMode, StageId};
    pub use crate::report::{
        JobOutput, JobReport, PhaseBreakdown, PlanReport, StageReport, TaskKind, TaskSpan,
    };
    pub use crate::serve::{
        AdmissionConfig, DlqConfig, Frontend, QueryCatalog, ServeConfig, Server, StreamingQuery,
        TenantEvent, TenantHandle, TenantSession,
    };
    pub use crate::transport::{worker::WorkerOptions, JobRegistry, Transport};
    pub use onepass_core::fault::{FaultInjector, FaultPlan};
    pub use onepass_core::governor::{
        policy_by_name, ColdestKeys, LargestBucket, LargestConsumer, MemoryGovernor, MemoryPolicy,
        RoundRobin, SpillPolicy,
    };
    pub use onepass_core::hashlib::HashFamily;
    pub use onepass_core::{OwnedKv, SegmentBuf, SegmentBufBuilder};
}
