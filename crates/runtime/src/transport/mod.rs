//! Transport abstraction for the shuffle fabric and task dispatch.
//!
//! The paper's architecture (§IV) only requires that map output *flows* to
//! reducers without barrier materialization — it does not care whether the
//! flow is an in-process channel or a socket. This module makes that
//! boundary explicit: the executor routes every segment and control
//! message through a [`SegmentSink`], and the engine picks the concrete
//! fabric from [`Transport`]:
//!
//! * [`Transport::InProc`] — the original zero-copy bounded-channel
//!   fabric. Segments are `Arc`-backed [`SegmentBuf`]s; sending one bumps
//!   two refcounts. This is the default and the fast path (M3R-style:
//!   keeping the in-memory topology first-class).
//! * [`Transport::Tcp`] — a length-prefixed framed protocol over TCP.
//!   Map and reduce tasks are placed onto external worker processes
//!   (`onepass worker --listen ADDR`) by a coordinator embedded in the
//!   executor; segments travel as the same framed key/value encoding the
//!   spill files use, so a received payload decodes zero-copy via
//!   [`SegmentBuf::from_framed`].
//!
//! Worker loss is survived by the existing attempt-aware machinery: map
//! attempts on a dead worker fail and are requeued by the scheduler
//! (possibly speculatively), while reduce partitions owned by a dead
//! worker are replayed onto a live one from a coordinator-retained message
//! log — the same retained-segment replay semantics reduce retries already
//! use in-process.
//!
//! [`SegmentBuf`]: onepass_core::SegmentBuf
//! [`SegmentBuf::from_framed`]: onepass_core::SegmentBuf::from_framed

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::job::JobSpec;
use crate::shuffle::{PressureGate, Segment};

pub(crate) mod coordinator;
pub(crate) mod inproc;
pub(crate) mod tcp;
pub(crate) mod wire;
pub mod worker;

/// Which fabric carries shuffle traffic and task dispatch.
///
/// Selected via
/// [`EngineConfigBuilder::transport`](crate::driver::EngineConfigBuilder::transport)
/// or the `--workers` CLI flag.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Transport {
    /// Single-process execution over in-proc channels (zero-copy,
    /// default). Identical behavior to engines built before this knob
    /// existed.
    #[default]
    InProc,
    /// Multi-process execution: map and reduce tasks are dispatched to
    /// `onepass worker` processes over length-prefixed TCP frames.
    Tcp {
        /// Worker addresses (`host:port`), each running
        /// `onepass worker --listen ADDR`. Must be non-empty.
        workers: Vec<String>,
    },
}

/// The sending half of a shuffle fabric.
///
/// [`ShuffleTx`](crate::shuffle::ShuffleTx) counts records/bytes/segments
/// and then hands every message to one of these, so shuffle accounting is
/// transport-agnostic by construction: the numbers are identical whether
/// the sink is an in-proc channel set or a TCP connection.
pub trait SegmentSink: Send + Sync {
    /// Deliver a segment to its destination partition. `gate`, when
    /// present, is the memory-pressure gate the sink should consult
    /// before enqueueing (in-proc fabric); transports with their own
    /// flow control (TCP) may ignore it.
    fn send_segment(&self, seg: Segment, gate: Option<&PressureGate>);
    /// Announce a completed map task attempt to every partition.
    fn map_done(&self, map_task: usize, attempt: usize);
    /// Tell every partition the job is aborting.
    fn abort(&self);
    /// Tell every partition how many map tasks the job ended up with.
    fn input_exhausted(&self, total_map_tasks: usize);
}

/// Named job specs a worker process can instantiate.
///
/// A [`JobSpec`] carries closures (map function, aggregator, partitioner)
/// and therefore cannot travel over the wire. Instead, both sides agree on
/// a job *name*: the coordinator ships the name plus its scalar knobs, and
/// the worker rebuilds the spec from a factory registered here, then
/// overlays the wire knobs. A job submitted under an unregistered name is
/// rejected with a [`Config`](onepass_core::error::Error::Config) error.
#[derive(Clone, Default)]
pub struct JobRegistry {
    inner: Arc<Mutex<HashMap<String, JobFactory>>>,
}

/// A registered factory rebuilding one named [`JobSpec`].
type JobFactory = Arc<dyn Fn() -> JobSpec + Send + Sync>;

impl JobRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a factory under `name`. Later registrations replace
    /// earlier ones.
    pub fn register(
        &self,
        name: impl Into<String>,
        factory: impl Fn() -> JobSpec + Send + Sync + 'static,
    ) {
        self.inner
            .lock()
            .unwrap()
            .insert(name.into(), Arc::new(factory));
    }

    /// Register a concrete spec under its own `spec.name` (the spec is
    /// cloned per instantiation).
    pub fn register_spec(&self, spec: JobSpec) {
        let name = spec.name.clone();
        self.register(name, move || spec.clone());
    }

    /// Instantiate the spec registered under `name`, if any.
    pub fn build(&self, name: &str) -> Option<JobSpec> {
        let factory = self.inner.lock().unwrap().get(name).cloned();
        factory.map(|f| f())
    }

    /// Names currently registered, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.lock().unwrap().keys().cloned().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for JobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRegistry")
            .field("jobs", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::MapEmitter;
    use onepass_groupby::SumAgg;

    #[test]
    fn transport_defaults_to_inproc() {
        assert_eq!(Transport::default(), Transport::InProc);
    }

    #[test]
    fn registry_builds_registered_specs() {
        fn ident(record: &[u8], out: &mut dyn MapEmitter) {
            out.emit(record, &1u64.to_le_bytes());
        }
        let reg = JobRegistry::new();
        assert!(reg.build("wc").is_none());
        reg.register("wc", || {
            JobSpec::builder("wc")
                .map_fn(Arc::new(ident))
                .aggregate(Arc::new(SumAgg))
                .reducers(2)
                .build()
                .unwrap()
        });
        let spec = reg.build("wc").expect("registered");
        assert_eq!(spec.name, "wc");
        assert_eq!(reg.names(), vec!["wc".to_string()]);
    }
}
