//! The in-process fabric: one bounded channel per reducer partition.
//!
//! This is the original (and default) shuffle transport — segments move as
//! `Arc`-backed [`SegmentBuf`](onepass_core::SegmentBuf)s, so a send is two
//! refcount bumps and control messages are broadcast by cloning.

use crossbeam::channel::Sender;

use super::SegmentSink;
use crate::shuffle::{PressureGate, Segment, ShuffleMsg};

/// In-proc channel sink: routes segments by partition, broadcasts control
/// messages to every partition. Send errors mean the reducer hung up (job
/// aborting) and are ignored; the map worker notices via its own channel
/// teardown.
pub(crate) struct InProcSink {
    senders: Vec<Sender<ShuffleMsg>>,
}

impl InProcSink {
    pub(crate) fn new(senders: Vec<Sender<ShuffleMsg>>) -> Self {
        InProcSink { senders }
    }
}

impl SegmentSink for InProcSink {
    fn send_segment(&self, seg: Segment, gate: Option<&PressureGate>) {
        let p = seg.partition;
        if let Some(gate) = gate {
            gate.admit(&self.senders[p]);
        }
        let _ = self.senders[p].send(ShuffleMsg::Segment(seg));
    }

    fn map_done(&self, map_task: usize, attempt: usize) {
        for s in &self.senders {
            let _ = s.send(ShuffleMsg::MapDone { map_task, attempt });
        }
    }

    fn abort(&self) {
        for s in &self.senders {
            let _ = s.send(ShuffleMsg::Abort);
        }
    }

    fn input_exhausted(&self, total_map_tasks: usize) {
        for s in &self.senders {
            let _ = s.send(ShuffleMsg::InputExhausted { total_map_tasks });
        }
    }
}
