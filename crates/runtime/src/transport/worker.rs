//! The worker side of the TCP transport: `onepass worker --listen ADDR`.
//!
//! A worker process accepts one connection per job from a coordinator.
//! Over that connection it receives a `JobInit` (job name + scalar knobs,
//! resolved against its [`JobRegistry`]), map task dispatches
//! (`NewSplit`), and reduce partition assignments (`ReduceTask`); it sends
//! back shuffle segments, `MapDone`/`MapOk`/`MapFailed`, reduce output
//! batches, and `ReduceDone`.
//!
//! Map tasks run through the exact same
//! [`run_map_task_with`](crate::map_task) code path as in-process workers
//! — only the [`ShuffleTx`] sink differs (a `TcpSink` framing segments
//! back to the coordinator instead of in-proc channels). Likewise reduce partitions
//! run the stock attempt-aware
//! [`run_reduce_task_open`](crate::reduce_task) loop, so worker-internal
//! reduce retries (fresh store + budget, replayed retained segments) work
//! unchanged.
//!
//! Two deliberate simplifications versus in-process execution: remote map
//! tasks skip worker-scoped in-node combining (per-task `HashCombine`
//! still applies) and never persist map output (recovery is re-execution
//! from the coordinator-held input split).

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver};

use onepass_core::error::{Error, Result};
use onepass_core::fault::FaultInjector;
use onepass_core::memory::MemoryBudget;
use onepass_core::trace::LocalTracer;
use onepass_groupby::{EmitKind, Sink};

use super::tcp::{Conn, TcpSink};
use super::wire::{Frame, WireJob, WireMapStats, WireReduceStats};
use super::JobRegistry;
use crate::executor::make_store;
use crate::job::JobSpec;
use crate::map_task::{run_map_task_with, MapAttemptCtx, MapTaskStats, Split};
use crate::reduce_task::{panic_message, run_reduce_task_open, ReduceResult, ReduceRetryOpts};
use crate::shuffle::{Segment, ShuffleMsg, ShuffleTx};

/// Knobs for a worker process.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Concurrent map tasks per job connection.
    pub map_slots: usize,
    /// Fault-injection hook: after this many successful map tasks on a
    /// connection, the worker severs that connection without warning —
    /// indistinguishable, from the coordinator's side, from `kill -9`.
    /// Used by the equivalence tests to exercise worker-loss replay
    /// deterministically.
    pub die_after_maps: Option<u64>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            map_slots: 2,
            die_after_maps: None,
        }
    }
}

/// An in-process worker spawned for tests: same code as `onepass worker`,
/// listening on an ephemeral loopback port.
#[derive(Debug)]
pub struct WorkerHandle {
    addr: String,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl WorkerHandle {
    /// The `host:port` this worker listens on.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stop accepting connections and join the accept loop. Connections
    /// already serving a job drain on their own.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop.
        let _ = TcpStream::connect(&self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(&self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Spawn a worker on `127.0.0.1:0` in a background thread (test harness
/// for the TCP transport; production workers run `serve` in their own
/// process).
pub fn spawn_local(registry: JobRegistry, opts: WorkerOptions) -> Result<WorkerHandle> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::spawn(move || {
        let _ = serve_until(listener, registry, opts, Some(stop2));
    });
    Ok(WorkerHandle {
        addr,
        stop,
        join: Some(join),
    })
}

/// Serve jobs on `listener` forever: one connection = one job submission.
/// This is the body of `onepass worker --listen ADDR`.
pub fn serve(listener: TcpListener, registry: JobRegistry, opts: WorkerOptions) -> Result<()> {
    serve_until(listener, registry, opts, None)
}

fn serve_until(
    listener: TcpListener,
    registry: JobRegistry,
    opts: WorkerOptions,
    stop: Option<Arc<AtomicBool>>,
) -> Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        if let Some(s) = &stop {
            if s.load(Ordering::Relaxed) {
                return Ok(());
            }
        }
        let registry = registry.clone();
        let opts = opts.clone();
        std::thread::spawn(move || handle_conn(stream, registry, opts));
    }
}

/// Serve one job connection to completion.
fn handle_conn(stream: TcpStream, registry: JobRegistry, opts: WorkerOptions) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "coordinator".into());
    let Ok(conn) = Conn::new(stream, peer) else {
        return;
    };
    let conn = Arc::new(conn);

    // First frame must name the job.
    let wire = match conn.recv() {
        Ok(Frame::JobInit(w)) => w,
        _ => return,
    };
    let job = match instantiate(&registry, &wire) {
        Ok(j) => Arc::new(j),
        Err(e) => {
            let _ = conn.send(&Frame::JobRejected {
                reason: e.to_string(),
            });
            return;
        }
    };

    // Map tasks: a slot pool draining one dispatch queue, shuffling
    // straight back over the connection.
    let shuffle_tx = TcpSink::shuffle_tx(Arc::clone(&conn));
    let dead = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let (map_tx, map_rx) = unbounded::<(usize, usize, Split)>();
    let mut joins = Vec::new();
    for _ in 0..opts.map_slots.max(1) {
        let conn = Arc::clone(&conn);
        let job = Arc::clone(&job);
        let shuffle_tx = shuffle_tx.clone();
        let dead = Arc::clone(&dead);
        let completed = Arc::clone(&completed);
        let map_rx = map_rx.clone();
        let die_after = opts.die_after_maps;
        joins.push(std::thread::spawn(move || {
            map_slot(
                &conn,
                &job,
                &shuffle_tx,
                &map_rx,
                &dead,
                &completed,
                die_after,
            )
        }));
    }
    drop(map_rx);

    // Reduce partitions hosted on this connection: one routing channel and
    // one thread each.
    let mut reduce_txs: HashMap<u64, crossbeam::channel::Sender<ShuffleMsg>> = HashMap::new();

    // Recv errors end the loop: the coordinator hung up (job over), or we
    // severed the connection ourselves (simulated death).
    while let Ok(frame) = conn.recv() {
        match frame {
            Frame::NewSplit {
                task,
                attempt,
                records,
            } => {
                let _ = map_tx.send((task as usize, attempt as usize, Split::new(records)));
            }
            Frame::ReduceTask { partition } => {
                let (rtx, rrx) = bounded::<ShuffleMsg>(64);
                reduce_txs.insert(partition, rtx);
                let conn = Arc::clone(&conn);
                let job = Arc::clone(&job);
                let wire = wire.clone();
                joins.push(std::thread::spawn(move || {
                    reduce_partition(&conn, &job, &wire, partition, &rrx)
                }));
            }
            Frame::Segment {
                map_task,
                attempt,
                partition,
                sorted,
                combined,
                payload,
            } => {
                if let (Some(tx), Ok(records)) =
                    (reduce_txs.get(&partition), super::wire::decode_kv(payload))
                {
                    let _ = tx.send(ShuffleMsg::Segment(Segment {
                        map_task: map_task as usize,
                        attempt: attempt as usize,
                        partition: partition as usize,
                        sorted,
                        combined,
                        records,
                    }));
                }
            }
            Frame::RedMapDone {
                partition,
                map_task,
                attempt,
            } => {
                if let Some(tx) = reduce_txs.get(&partition) {
                    let _ = tx.send(ShuffleMsg::MapDone {
                        map_task: map_task as usize,
                        attempt: attempt as usize,
                    });
                }
            }
            Frame::RedInputExhausted { partition, total } => {
                if let Some(tx) = reduce_txs.get(&partition) {
                    let _ = tx.send(ShuffleMsg::InputExhausted {
                        total_map_tasks: total as usize,
                    });
                }
            }
            Frame::RedAbort { partition } => {
                if let Some(tx) = reduce_txs.get(&partition) {
                    let _ = tx.send(ShuffleMsg::Abort);
                }
            }
            Frame::Ping { nonce } => {
                let _ = conn.send(&Frame::Pong { nonce });
            }
            Frame::FeedClosed => {
                // No further map dispatches will arrive; reduce frames may
                // still. Nothing to do eagerly — teardown happens when the
                // coordinator closes the socket.
            }
            // Frames this side never expects (worker→coordinator shapes,
            // or protocol noise): ignore rather than kill the job.
            _ => {}
        }
    }

    // Teardown: closing the dispatch queue and partition channels unblocks
    // every slot/reduce thread still waiting for input.
    drop(map_tx);
    drop(reduce_txs);
    for j in joins {
        let _ = j.join();
    }
}

/// Resolve a `JobInit` against the registry and overlay its wire knobs.
fn instantiate(registry: &JobRegistry, wire: &WireJob) -> Result<JobSpec> {
    let base = registry.build(&wire.name).ok_or_else(|| {
        Error::Config(format!(
            "job '{}' is not registered on this worker",
            wire.name
        ))
    })?;
    wire.apply(base)
}

/// One map slot: run dispatched attempts until the queue closes (or this
/// worker "dies").
fn map_slot(
    conn: &Conn,
    job: &JobSpec,
    shuffle_tx: &ShuffleTx,
    map_rx: &Receiver<(usize, usize, Split)>,
    dead: &AtomicBool,
    completed: &AtomicU64,
    die_after: Option<u64>,
) {
    while let Ok((task, attempt, split)) = map_rx.recv() {
        if dead.load(Ordering::Relaxed) {
            break;
        }
        let ctx = MapAttemptCtx {
            attempt,
            injector: FaultInjector::none(),
            cancel: None,
        };
        let mut trace = LocalTracer::disabled();
        // Same containment as in-process workers: a panicking map function
        // is a task failure, reported as such, not a worker crash.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_map_task_with(job, task, &split, shuffle_tx, None, &mut trace, &ctx, None)
        }))
        .unwrap_or_else(|p| {
            Err(Error::InvalidState(format!(
                "map task panicked: {}",
                panic_message(p.as_ref())
            )))
        });
        match result {
            Ok(stats) => {
                // `run_map_task_with` already framed the segments and the
                // MapDone; the MapOk (with stats) commits the attempt to
                // the scheduler.
                let _ = conn.send(&Frame::MapOk {
                    task: task as u64,
                    attempt: attempt as u64,
                    stats: wire_map_stats(&stats),
                });
                if let Some(n) = die_after {
                    if completed.fetch_add(1, Ordering::Relaxed) + 1 >= n {
                        // Simulated kill -9: sever the socket mid-job. The
                        // coordinator sees EOF and replays our work.
                        dead.store(true, Ordering::Relaxed);
                        conn.shutdown();
                        break;
                    }
                }
            }
            Err(e) => {
                let _ = conn.send(&Frame::MapFailed {
                    task: task as u64,
                    attempt: attempt as u64,
                    error: e.to_string(),
                });
            }
        }
    }
}

/// Host one reduce partition: run the stock attempt-aware reduce loop,
/// batching its output back to the coordinator.
fn reduce_partition(
    conn: &Arc<Conn>,
    job: &JobSpec,
    wire: &WireJob,
    partition: u64,
    rx: &Receiver<ShuffleMsg>,
) {
    let spill = wire.spill_backend();
    let mut resources = || -> Result<(Arc<dyn onepass_core::io::SpillStore>, MemoryBudget)> {
        Ok((
            make_store(spill)?,
            MemoryBudget::new(job.reduce_budget_bytes),
        ))
    };
    let opts = ReduceRetryOpts {
        max_attempts: (wire.max_attempts as usize).max(1),
        backoff: Duration::ZERO,
        dedup_attempts: true,
        injector: FaultInjector::none(),
        hash_family: wire.family(),
    };
    let mut sink = FrameSink::new(Arc::clone(conn), partition);
    let mut trace = LocalTracer::disabled();
    match run_reduce_task_open(
        job,
        partition as usize,
        rx,
        None, // the coordinator broadcasts the task total when it's known
        &mut resources,
        &mut sink,
        &mut trace,
        &opts,
    ) {
        Ok(res) => {
            sink.flush();
            let _ = conn.send(&Frame::ReduceDone {
                partition,
                stats: wire_reduce_stats(&res),
            });
        }
        Err(_) => {
            // Aborted or exhausted its worker-internal retries. The
            // coordinator learns through the job-level abort flow (or our
            // death); no frame to send.
        }
    }
}

fn wire_map_stats(s: &MapTaskStats) -> WireMapStats {
    WireMapStats {
        input_records: s.input_records,
        input_bytes: s.input_bytes,
        output_records: s.output_records,
        shuffled_records: s.shuffled_records,
        shuffled_bytes: s.shuffled_bytes,
        flushes: s.flushes,
    }
}

fn wire_reduce_stats(r: &ReduceResult) -> WireReduceStats {
    WireReduceStats {
        records_in: r.stats.records_in,
        groups_out: r.stats.groups_out,
        early_emits: r.stats.early_emits,
        bytes_written: r.stats.io.bytes_written,
        bytes_read: r.stats.io.bytes_read,
        runs_created: r.stats.io.runs_created,
        runs_deleted: r.stats.io.runs_deleted,
        peak_mem: r.stats.peak_mem as u64,
        spills: r.stats.spills,
        passes: r.stats.passes,
        snapshots_taken: r.snapshots_taken,
        attempts: r.attempts as u64,
    }
}

/// Buffers reduce emissions into framed batches (~64 KiB, split on
/// early/final boundaries so emission kind survives the wire, order
/// preserved).
struct FrameSink {
    conn: Arc<Conn>,
    partition: u64,
    kind: u8,
    buf: Vec<u8>,
}

impl FrameSink {
    const FLUSH_BYTES: usize = 64 * 1024;

    fn new(conn: Arc<Conn>, partition: u64) -> Self {
        FrameSink {
            conn,
            partition,
            kind: 1,
            buf: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let _ = self.conn.send(&Frame::FinalBatch {
            partition: self.partition,
            kind: self.kind,
            payload: std::mem::take(&mut self.buf),
        });
    }
}

impl Sink for FrameSink {
    fn emit(&mut self, key: &[u8], value: &[u8], kind: EmitKind) {
        let k = match kind {
            EmitKind::Early => 0,
            EmitKind::Final => 1,
        };
        if k != self.kind {
            self.flush();
            self.kind = k;
        }
        super::wire::append_kv(&mut self.buf, key, value);
        if self.buf.len() >= Self::FLUSH_BYTES {
            self.flush();
        }
    }
}
