//! Length-prefixed frame protocol for the TCP transport.
//!
//! Every frame on the wire is `[u32 LE body length][u8 tag][fields]`.
//! Integers are little-endian `u64`s, strings and byte blobs carry a
//! `u32` length prefix. Segment and final-output payloads reuse the
//! engine's framed key/value encoding (`[u32 klen][u32 vlen][key][value]`
//! per record — the same bytes spill files hold), so a received payload
//! decodes zero-copy via [`SegmentBuf::from_framed`].
//!
//! A [`JobSpec`] carries closures and cannot travel whole; [`WireJob`]
//! ships the job *name* plus every scalar knob, and the worker overlays
//! those knobs on the spec its [`JobRegistry`](super::JobRegistry)
//! rebuilt from the name.

use std::sync::Arc;

use onepass_core::error::{Error, Result};
use onepass_core::hashlib::HashFamily;
use onepass_core::SegmentBuf;
use onepass_groupby::freq_hash::FreqHashConfig;

use crate::driver::SpillBackend;
use crate::job::{Combine, JobSpec, MapSideMode, ReduceBackend, ShuffleMode};

/// Upper bound on a single frame body; a larger length prefix means the
/// stream is corrupt (or not speaking this protocol).
pub(crate) const MAX_FRAME: usize = 1 << 30;

/// Map-task stats that travel in a [`Frame::MapOk`]. CPU profiles stay
/// worker-local; only the counters the report aggregates are shipped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct WireMapStats {
    pub input_records: u64,
    pub input_bytes: u64,
    pub output_records: u64,
    pub shuffled_records: u64,
    pub shuffled_bytes: u64,
    pub flushes: u64,
}

/// Reduce-task stats that travel in a [`Frame::ReduceDone`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct WireReduceStats {
    pub records_in: u64,
    pub groups_out: u64,
    pub early_emits: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub runs_created: u64,
    pub runs_deleted: u64,
    pub peak_mem: u64,
    pub spills: u64,
    pub passes: u64,
    pub snapshots_taken: u64,
    pub attempts: u64,
}

/// Everything the coordinator ships to instantiate a job on a worker.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WireJob {
    pub name: String,
    pub reducers: u64,
    /// 0 = SortSpill, 1 = HashPartitionOnly, 2 = HashCombine.
    pub map_side: u8,
    /// 0 = Pull, 1 = Push.
    pub shuffle: u8,
    pub granularity: u64,
    /// 0 = Off, 1 = On.
    pub combine: u8,
    /// 0 = SortMerge, 1 = HybridHash, 2 = IncHash, 3 = FreqHash.
    pub backend: u8,
    /// merge_factor / fanout, depending on `backend`.
    pub backend_arg: u64,
    pub snapshots: Vec<f64>,
    pub map_buffer_bytes: u64,
    pub reduce_budget_bytes: u64,
    pub inmem_merge_threshold: u64,
    /// Worker-internal reduce retry budget.
    pub max_attempts: u64,
    /// 0 = Memory, 1 = TempFiles.
    pub spill: u8,
    /// 0 = MultiplyShift, 1 = Tabulation.
    pub hash_family: u8,
}

impl WireJob {
    /// Capture `job`'s scalar knobs plus the engine knobs a worker needs.
    pub(crate) fn from_job(
        job: &JobSpec,
        max_attempts: usize,
        spill: SpillBackend,
        hash_family: HashFamily,
    ) -> Self {
        let (backend, backend_arg, snapshots) = match &job.backend {
            ReduceBackend::SortMerge {
                merge_factor,
                snapshots,
            } => (0, *merge_factor as u64, snapshots.clone()),
            ReduceBackend::HybridHash { fanout } => (1, *fanout as u64, Vec::new()),
            ReduceBackend::IncHash { .. } => (2, 0, Vec::new()),
            ReduceBackend::FreqHash(c) => (3, c.cold_fanout as u64, Vec::new()),
        };
        let (shuffle, granularity) = match job.shuffle {
            ShuffleMode::Pull => (0, 0),
            ShuffleMode::Push { granularity } => (1, granularity as u64),
        };
        WireJob {
            name: job.name.clone(),
            reducers: job.reducers as u64,
            map_side: match job.map_side {
                MapSideMode::SortSpill => 0,
                MapSideMode::HashPartitionOnly => 1,
                MapSideMode::HashCombine => 2,
            },
            shuffle,
            granularity,
            combine: job.combine.is_on() as u8,
            backend,
            backend_arg,
            snapshots,
            map_buffer_bytes: job.map_buffer_bytes as u64,
            reduce_budget_bytes: job.reduce_budget_bytes as u64,
            inmem_merge_threshold: job.inmem_merge_threshold as u64,
            max_attempts: max_attempts as u64,
            spill: match spill {
                SpillBackend::Memory => 0,
                SpillBackend::TempFiles => 1,
            },
            hash_family: match hash_family {
                HashFamily::MultiplyShift => 0,
                HashFamily::Tabulation => 1,
            },
        }
    }

    /// Overlay these knobs on `base` (the registry-built spec). Closures
    /// (map fn, aggregate, partitioner, early-emit policies) always come
    /// from `base`; when the wire backend kind matches `base`'s, backend
    /// sub-config the wire can't carry is preserved too.
    pub(crate) fn apply(&self, base: JobSpec) -> Result<JobSpec> {
        let mut job = base;
        job.reducers = self.reducers as usize;
        job.map_side = match self.map_side {
            0 => MapSideMode::SortSpill,
            1 => MapSideMode::HashPartitionOnly,
            2 => MapSideMode::HashCombine,
            n => return Err(Error::Corrupt(format!("bad map_side tag {n}"))),
        };
        job.shuffle = match self.shuffle {
            0 => ShuffleMode::Pull,
            1 => ShuffleMode::Push {
                granularity: self.granularity as usize,
            },
            n => return Err(Error::Corrupt(format!("bad shuffle tag {n}"))),
        };
        job.combine = if self.combine == 1 {
            Combine::On
        } else {
            Combine::Off
        };
        job.backend = match (self.backend, &job.backend) {
            (0, _) => ReduceBackend::SortMerge {
                merge_factor: self.backend_arg as usize,
                snapshots: self.snapshots.clone(),
            },
            (1, _) => ReduceBackend::HybridHash {
                fanout: self.backend_arg as usize,
            },
            // Keep the registry's early-emit policy / sketch config when
            // the kinds line up; otherwise fall back to defaults.
            (2, ReduceBackend::IncHash { early }) => ReduceBackend::IncHash {
                early: early.clone(),
            },
            (2, _) => ReduceBackend::IncHash { early: None },
            (3, ReduceBackend::FreqHash(c)) => ReduceBackend::FreqHash(c.clone()),
            (3, _) => ReduceBackend::FreqHash(FreqHashConfig::default()),
            (n, _) => return Err(Error::Corrupt(format!("bad backend tag {n}"))),
        };
        job.map_buffer_bytes = self.map_buffer_bytes as usize;
        job.reduce_budget_bytes = self.reduce_budget_bytes as usize;
        job.inmem_merge_threshold = self.inmem_merge_threshold as usize;
        job.validate()?;
        Ok(job)
    }

    /// The engine spill backend this job's reduces should use.
    pub(crate) fn spill_backend(&self) -> SpillBackend {
        if self.spill == 1 {
            SpillBackend::TempFiles
        } else {
            SpillBackend::Memory
        }
    }

    /// The hash family the worker's group-by operators should draw from.
    pub(crate) fn family(&self) -> HashFamily {
        if self.hash_family == 1 {
            HashFamily::Tabulation
        } else {
            HashFamily::MultiplyShift
        }
    }
}

/// One protocol message. Direction is implied by the variant: the
/// coordinator sends `JobInit`/`NewSplit`/`FeedClosed`/`ReduceTask`/
/// `Red*`/`Ping`; workers send `Segment`/`MapDone`/`MapOk`/`MapFailed`/
/// `FinalBatch`/`ReduceDone`/`Pong`/`JobRejected`/`Abort`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Frame {
    /// Instantiate the named job on the worker connection.
    JobInit(WireJob),
    /// Dispatch one map task attempt with its input records.
    NewSplit {
        task: u64,
        attempt: u64,
        records: Vec<Vec<u8>>,
    },
    /// No further map tasks will arrive on this connection.
    FeedClosed,
    /// Host reduce partition `partition` on the worker connection.
    ReduceTask { partition: u64 },
    /// A shuffle segment (worker → coordinator from map tasks, and
    /// coordinator → worker into hosted reduce partitions).
    Segment {
        map_task: u64,
        attempt: u64,
        partition: u64,
        sorted: bool,
        combined: bool,
        /// Framed key/value records.
        payload: Vec<u8>,
    },
    /// Map attempt completed (worker → coordinator; fans out to every
    /// partition through the coordinator's fabric).
    MapDone { map_task: u64, attempt: u64 },
    /// Map attempt succeeded; its stats follow.
    MapOk {
        task: u64,
        attempt: u64,
        stats: WireMapStats,
    },
    /// Map attempt failed (error or panic) on the worker.
    MapFailed {
        task: u64,
        attempt: u64,
        error: String,
    },
    /// A batch of reduce output records (worker → coordinator).
    /// `kind` 0 = early, 1 = final; `payload` is framed key/value records.
    FinalBatch {
        partition: u64,
        kind: u8,
        payload: Vec<u8>,
    },
    /// Hosted reduce partition finished; its stats follow.
    ReduceDone {
        partition: u64,
        stats: WireReduceStats,
    },
    /// Heartbeat probe (coordinator → worker).
    Ping { nonce: u64 },
    /// Heartbeat reply.
    Pong { nonce: u64 },
    /// The worker does not know the submitted job name.
    JobRejected { reason: String },
    /// Worker-side map tasks aborting (mirrors `ShuffleMsg::Abort`).
    Abort,
    /// Per-partition control fan-in (coordinator → the worker hosting
    /// `partition`): a map task attempt committed.
    RedMapDone {
        partition: u64,
        map_task: u64,
        attempt: u64,
    },
    /// Per-partition: final map task count is now known.
    RedInputExhausted { partition: u64, total: u64 },
    /// Per-partition: the job is aborting.
    RedAbort { partition: u64 },
}

// Body tags. Tag 0 is deliberately unused so an all-zero read is corrupt.
const T_JOB_INIT: u8 = 1;
const T_NEW_SPLIT: u8 = 2;
const T_FEED_CLOSED: u8 = 3;
const T_REDUCE_TASK: u8 = 4;
const T_SEGMENT: u8 = 5;
const T_MAP_DONE: u8 = 6;
const T_MAP_OK: u8 = 7;
const T_MAP_FAILED: u8 = 8;
const T_FINAL_BATCH: u8 = 9;
const T_REDUCE_DONE: u8 = 10;
const T_PING: u8 = 11;
const T_PONG: u8 = 12;
const T_JOB_REJECTED: u8 = 13;
const T_ABORT: u8 = 14;
const T_RED_MAP_DONE: u8 = 15;
const T_RED_INPUT_EXHAUSTED: u8 = 16;
const T_RED_ABORT: u8 = 17;

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(tag: u8) -> Self {
        Enc { buf: vec![tag] }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Self {
        Dec { b, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.b.len() {
            return Err(Error::Corrupt("truncated frame".into()));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn str(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?).map_err(|_| Error::Corrupt("non-utf8 string".into()))
    }
}

impl Frame {
    /// Serialize the frame body (everything after the length prefix).
    pub(crate) fn encode(&self) -> Vec<u8> {
        match self {
            Frame::JobInit(j) => {
                let mut e = Enc::new(T_JOB_INIT);
                e.str(&j.name);
                e.u64(j.reducers);
                e.u8(j.map_side);
                e.u8(j.shuffle);
                e.u64(j.granularity);
                e.u8(j.combine);
                e.u8(j.backend);
                e.u64(j.backend_arg);
                e.u64(j.snapshots.len() as u64);
                for s in &j.snapshots {
                    e.f64(*s);
                }
                e.u64(j.map_buffer_bytes);
                e.u64(j.reduce_budget_bytes);
                e.u64(j.inmem_merge_threshold);
                e.u64(j.max_attempts);
                e.u8(j.spill);
                e.u8(j.hash_family);
                e.buf
            }
            Frame::NewSplit {
                task,
                attempt,
                records,
            } => {
                let mut e = Enc::new(T_NEW_SPLIT);
                e.u64(*task);
                e.u64(*attempt);
                e.u64(records.len() as u64);
                for r in records {
                    e.bytes(r);
                }
                e.buf
            }
            Frame::FeedClosed => Enc::new(T_FEED_CLOSED).buf,
            Frame::ReduceTask { partition } => {
                let mut e = Enc::new(T_REDUCE_TASK);
                e.u64(*partition);
                e.buf
            }
            Frame::Segment {
                map_task,
                attempt,
                partition,
                sorted,
                combined,
                payload,
            } => {
                let mut e = Enc::new(T_SEGMENT);
                e.u64(*map_task);
                e.u64(*attempt);
                e.u64(*partition);
                e.u8(*sorted as u8);
                e.u8(*combined as u8);
                e.bytes(payload);
                e.buf
            }
            Frame::MapDone { map_task, attempt } => {
                let mut e = Enc::new(T_MAP_DONE);
                e.u64(*map_task);
                e.u64(*attempt);
                e.buf
            }
            Frame::MapOk {
                task,
                attempt,
                stats,
            } => {
                let mut e = Enc::new(T_MAP_OK);
                e.u64(*task);
                e.u64(*attempt);
                for v in [
                    stats.input_records,
                    stats.input_bytes,
                    stats.output_records,
                    stats.shuffled_records,
                    stats.shuffled_bytes,
                    stats.flushes,
                ] {
                    e.u64(v);
                }
                e.buf
            }
            Frame::MapFailed {
                task,
                attempt,
                error,
            } => {
                let mut e = Enc::new(T_MAP_FAILED);
                e.u64(*task);
                e.u64(*attempt);
                e.str(error);
                e.buf
            }
            Frame::FinalBatch {
                partition,
                kind,
                payload,
            } => {
                let mut e = Enc::new(T_FINAL_BATCH);
                e.u64(*partition);
                e.u8(*kind);
                e.bytes(payload);
                e.buf
            }
            Frame::ReduceDone { partition, stats } => {
                let mut e = Enc::new(T_REDUCE_DONE);
                e.u64(*partition);
                for v in [
                    stats.records_in,
                    stats.groups_out,
                    stats.early_emits,
                    stats.bytes_written,
                    stats.bytes_read,
                    stats.runs_created,
                    stats.runs_deleted,
                    stats.peak_mem,
                    stats.spills,
                    stats.passes,
                    stats.snapshots_taken,
                    stats.attempts,
                ] {
                    e.u64(v);
                }
                e.buf
            }
            Frame::Ping { nonce } => {
                let mut e = Enc::new(T_PING);
                e.u64(*nonce);
                e.buf
            }
            Frame::Pong { nonce } => {
                let mut e = Enc::new(T_PONG);
                e.u64(*nonce);
                e.buf
            }
            Frame::JobRejected { reason } => {
                let mut e = Enc::new(T_JOB_REJECTED);
                e.str(reason);
                e.buf
            }
            Frame::Abort => Enc::new(T_ABORT).buf,
            Frame::RedMapDone {
                partition,
                map_task,
                attempt,
            } => {
                let mut e = Enc::new(T_RED_MAP_DONE);
                e.u64(*partition);
                e.u64(*map_task);
                e.u64(*attempt);
                e.buf
            }
            Frame::RedInputExhausted { partition, total } => {
                let mut e = Enc::new(T_RED_INPUT_EXHAUSTED);
                e.u64(*partition);
                e.u64(*total);
                e.buf
            }
            Frame::RedAbort { partition } => {
                let mut e = Enc::new(T_RED_ABORT);
                e.u64(*partition);
                e.buf
            }
        }
    }

    /// Parse a frame body produced by [`encode`](Self::encode).
    pub(crate) fn decode(body: &[u8]) -> Result<Frame> {
        let mut d = Dec::new(body);
        let frame = match d.u8()? {
            T_JOB_INIT => {
                let name = d.str()?;
                let reducers = d.u64()?;
                let map_side = d.u8()?;
                let shuffle = d.u8()?;
                let granularity = d.u64()?;
                let combine = d.u8()?;
                let backend = d.u8()?;
                let backend_arg = d.u64()?;
                let n = d.u64()? as usize;
                if n > body.len() {
                    return Err(Error::Corrupt("snapshot count exceeds frame".into()));
                }
                let mut snapshots = Vec::with_capacity(n);
                for _ in 0..n {
                    snapshots.push(d.f64()?);
                }
                Frame::JobInit(WireJob {
                    name,
                    reducers,
                    map_side,
                    shuffle,
                    granularity,
                    combine,
                    backend,
                    backend_arg,
                    snapshots,
                    map_buffer_bytes: d.u64()?,
                    reduce_budget_bytes: d.u64()?,
                    inmem_merge_threshold: d.u64()?,
                    max_attempts: d.u64()?,
                    spill: d.u8()?,
                    hash_family: d.u8()?,
                })
            }
            T_NEW_SPLIT => {
                let task = d.u64()?;
                let attempt = d.u64()?;
                let n = d.u64()? as usize;
                if n > body.len() {
                    return Err(Error::Corrupt("record count exceeds frame".into()));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(d.bytes()?);
                }
                Frame::NewSplit {
                    task,
                    attempt,
                    records,
                }
            }
            T_FEED_CLOSED => Frame::FeedClosed,
            T_REDUCE_TASK => Frame::ReduceTask {
                partition: d.u64()?,
            },
            T_SEGMENT => Frame::Segment {
                map_task: d.u64()?,
                attempt: d.u64()?,
                partition: d.u64()?,
                sorted: d.u8()? != 0,
                combined: d.u8()? != 0,
                payload: d.bytes()?,
            },
            T_MAP_DONE => Frame::MapDone {
                map_task: d.u64()?,
                attempt: d.u64()?,
            },
            T_MAP_OK => Frame::MapOk {
                task: d.u64()?,
                attempt: d.u64()?,
                stats: WireMapStats {
                    input_records: d.u64()?,
                    input_bytes: d.u64()?,
                    output_records: d.u64()?,
                    shuffled_records: d.u64()?,
                    shuffled_bytes: d.u64()?,
                    flushes: d.u64()?,
                },
            },
            T_MAP_FAILED => Frame::MapFailed {
                task: d.u64()?,
                attempt: d.u64()?,
                error: d.str()?,
            },
            T_FINAL_BATCH => Frame::FinalBatch {
                partition: d.u64()?,
                kind: d.u8()?,
                payload: d.bytes()?,
            },
            T_REDUCE_DONE => Frame::ReduceDone {
                partition: d.u64()?,
                stats: WireReduceStats {
                    records_in: d.u64()?,
                    groups_out: d.u64()?,
                    early_emits: d.u64()?,
                    bytes_written: d.u64()?,
                    bytes_read: d.u64()?,
                    runs_created: d.u64()?,
                    runs_deleted: d.u64()?,
                    peak_mem: d.u64()?,
                    spills: d.u64()?,
                    passes: d.u64()?,
                    snapshots_taken: d.u64()?,
                    attempts: d.u64()?,
                },
            },
            T_PING => Frame::Ping { nonce: d.u64()? },
            T_PONG => Frame::Pong { nonce: d.u64()? },
            T_JOB_REJECTED => Frame::JobRejected { reason: d.str()? },
            T_ABORT => Frame::Abort,
            T_RED_MAP_DONE => Frame::RedMapDone {
                partition: d.u64()?,
                map_task: d.u64()?,
                attempt: d.u64()?,
            },
            T_RED_INPUT_EXHAUSTED => Frame::RedInputExhausted {
                partition: d.u64()?,
                total: d.u64()?,
            },
            T_RED_ABORT => Frame::RedAbort {
                partition: d.u64()?,
            },
            t => return Err(Error::Corrupt(format!("unknown frame tag {t}"))),
        };
        if d.pos != body.len() {
            return Err(Error::Corrupt("trailing bytes in frame".into()));
        }
        Ok(frame)
    }
}

/// Encode a [`SegmentBuf`] as framed key/value records — byte-compatible
/// with spill files and with [`SegmentBuf::from_framed`].
pub(crate) fn encode_kv(records: &SegmentBuf) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.payload_bytes() + records.len() * 8);
    for (k, v) in records.iter() {
        append_kv(&mut out, k, v);
    }
    out
}

/// Append one framed key/value record to `out`.
pub(crate) fn append_kv(out: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
}

/// Decode framed key/value records into a zero-copy [`SegmentBuf`].
pub(crate) fn decode_kv(payload: Vec<u8>) -> Result<SegmentBuf> {
    SegmentBuf::from_framed(Arc::new(payload), 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepass_core::SegmentBufBuilder;

    fn roundtrip(f: Frame) {
        let body = f.encode();
        assert_eq!(Frame::decode(&body).unwrap(), f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::NewSplit {
            task: 3,
            attempt: 1,
            records: vec![b"a b".to_vec(), vec![], b"c".to_vec()],
        });
        roundtrip(Frame::FeedClosed);
        roundtrip(Frame::ReduceTask { partition: 2 });
        roundtrip(Frame::Segment {
            map_task: 1,
            attempt: 0,
            partition: 3,
            sorted: true,
            combined: false,
            payload: b"xyz".to_vec(),
        });
        roundtrip(Frame::MapDone {
            map_task: 9,
            attempt: 2,
        });
        roundtrip(Frame::MapOk {
            task: 1,
            attempt: 0,
            stats: WireMapStats {
                input_records: 10,
                input_bytes: 100,
                output_records: 20,
                shuffled_records: 20,
                shuffled_bytes: 200,
                flushes: 1,
            },
        });
        roundtrip(Frame::MapFailed {
            task: 1,
            attempt: 1,
            error: "boom".into(),
        });
        roundtrip(Frame::FinalBatch {
            partition: 0,
            kind: 1,
            payload: vec![1, 2, 3],
        });
        roundtrip(Frame::ReduceDone {
            partition: 1,
            stats: WireReduceStats {
                records_in: 5,
                groups_out: 3,
                attempts: 1,
                ..Default::default()
            },
        });
        roundtrip(Frame::Ping { nonce: 42 });
        roundtrip(Frame::Pong { nonce: 42 });
        roundtrip(Frame::JobRejected {
            reason: "unknown job".into(),
        });
        roundtrip(Frame::Abort);
        roundtrip(Frame::RedMapDone {
            partition: 1,
            map_task: 2,
            attempt: 0,
        });
        roundtrip(Frame::RedInputExhausted {
            partition: 1,
            total: 8,
        });
        roundtrip(Frame::RedAbort { partition: 0 });
    }

    #[test]
    fn wire_job_roundtrips_and_applies() {
        let base = JobSpec::builder("wc")
            .reducers(3)
            .preset_onepass()
            .build()
            .unwrap();
        let wire = WireJob::from_job(&base, 4, SpillBackend::TempFiles, HashFamily::Tabulation);
        roundtrip(Frame::JobInit(wire.clone()));

        // Apply onto a default-shaped registry spec: scalars come from the
        // wire, closures from the base.
        let registry_spec = JobSpec::builder("wc").build().unwrap();
        let applied = wire.apply(registry_spec).unwrap();
        assert_eq!(applied.reducers, 3);
        assert_eq!(applied.map_side, base.map_side);
        assert_eq!(applied.shuffle, base.shuffle);
        assert!(matches!(applied.backend, ReduceBackend::FreqHash(_)));
        assert_eq!(wire.spill_backend(), SpillBackend::TempFiles);
    }

    #[test]
    fn kv_payload_decodes_zero_copy() {
        let mut b = SegmentBufBuilder::new();
        b.push(b"key", b"value");
        b.push(b"", b"v2");
        let seg = b.finish();
        let payload = encode_kv(&seg);
        let back = decode_kv(payload).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(0), (&b"key"[..], &b"value"[..]));
        assert_eq!(back.get(1), (&b""[..], &b"v2"[..]));
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        assert!(Frame::decode(&[]).is_err());
        assert!(Frame::decode(&[0]).is_err());
        assert!(Frame::decode(&[99]).is_err());
        // Truncated NewSplit.
        let mut body = Frame::NewSplit {
            task: 1,
            attempt: 0,
            records: vec![b"abc".to_vec()],
        }
        .encode();
        body.truncate(body.len() - 1);
        assert!(Frame::decode(&body).is_err());
        // Trailing garbage.
        let mut body = Frame::Abort.encode();
        body.push(0);
        assert!(Frame::decode(&body).is_err());
    }
}
