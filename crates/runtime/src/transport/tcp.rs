//! Framed TCP connection shared by coordinator and workers.
//!
//! A [`Conn`] wraps one socket with independently locked read and write
//! halves, so a reader thread can block in [`Conn::recv`] while other
//! threads interleave whole frames through [`Conn::send`]. Frames are
//! `[u32 LE length][body]`; flow control is TCP's own (a slow receiver
//! backpressures senders through the socket buffer, the distributed
//! analogue of the in-proc bounded channels).

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use onepass_core::error::{Error, Result};
use onepass_core::obs::Counter;

use super::wire::{Frame, MAX_FRAME};
use super::SegmentSink;
use crate::shuffle::{PressureGate, Segment, ShuffleTx};

/// One framed, bidirectional connection.
pub(crate) struct Conn {
    peer: String,
    writer: Mutex<TcpStream>,
    reader: Mutex<BufReader<TcpStream>>,
    /// Kept solely so either side can force-unblock the reader.
    raw: TcpStream,
    tx_bytes: AtomicU64,
    rx_bytes: AtomicU64,
    /// Live mirrors of tx/rx byte totals, when metrics are enabled.
    obs: Mutex<Option<(Counter, Counter)>>,
}

impl Conn {
    /// Wrap an established socket. `peer` is used in error messages.
    pub(crate) fn new(stream: TcpStream, peer: String) -> Result<Self> {
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let reader = stream.try_clone()?;
        Ok(Conn {
            peer,
            writer: Mutex::new(writer),
            reader: Mutex::new(BufReader::new(reader)),
            raw: stream,
            tx_bytes: AtomicU64::new(0),
            rx_bytes: AtomicU64::new(0),
            obs: Mutex::new(None),
        })
    }

    /// Dial `addr` and wrap the socket.
    pub(crate) fn connect(addr: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| Error::Io(std::io::Error::new(e.kind(), format!("{addr}: {e}"))))?;
        Conn::new(stream, addr.to_string())
    }

    /// Mirror per-direction byte totals into live metrics counters.
    pub(crate) fn set_metrics(&self, tx: Counter, rx: Counter) {
        *self.obs.lock().unwrap() = Some((tx, rx));
    }

    /// The remote address this connection talks to.
    pub(crate) fn peer(&self) -> &str {
        &self.peer
    }

    /// Write one frame (length prefix + body) as a single `write_all`.
    pub(crate) fn send(&self, frame: &Frame) -> Result<()> {
        let body = frame.encode();
        let mut buf = Vec::with_capacity(4 + body.len());
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        {
            let mut w = self.writer.lock().unwrap();
            w.write_all(&buf)?;
        }
        self.tx_bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        if let Some((tx, _)) = self.obs.lock().unwrap().as_ref() {
            tx.inc(buf.len() as u64);
        }
        Ok(())
    }

    /// Block until one whole frame arrives (or the peer hangs up).
    pub(crate) fn recv(&self) -> Result<Frame> {
        let body = {
            let mut r = self.reader.lock().unwrap();
            let mut len = [0u8; 4];
            r.read_exact(&mut len)?;
            let len = u32::from_le_bytes(len) as usize;
            if len > MAX_FRAME {
                return Err(Error::Corrupt(format!(
                    "frame length {len} from {} exceeds limit",
                    self.peer
                )));
            }
            let mut body = vec![0u8; len];
            r.read_exact(&mut body)?;
            body
        };
        self.rx_bytes
            .fetch_add(4 + body.len() as u64, Ordering::Relaxed);
        if let Some((_, rx)) = self.obs.lock().unwrap().as_ref() {
            rx.inc(4 + body.len() as u64);
        }
        Frame::decode(&body)
    }

    /// Bytes written so far (frames included, length prefixes included).
    #[cfg(test)]
    pub(crate) fn tx_bytes(&self) -> u64 {
        self.tx_bytes.load(Ordering::Relaxed)
    }

    /// Bytes read so far.
    #[cfg(test)]
    pub(crate) fn rx_bytes(&self) -> u64 {
        self.rx_bytes.load(Ordering::Relaxed)
    }

    /// Force-close both directions; any blocked `recv`/`send` unblocks
    /// with an error.
    pub(crate) fn shutdown(&self) {
        let _ = self.raw.shutdown(std::net::Shutdown::Both);
    }
}

/// Worker-side shuffle sink: map tasks on a worker process push their
/// segments into this, which frames them back to the coordinator. The
/// coordinator's own fabric then routes them (and does the accounting —
/// the worker's counts travel separately in `MapOk` stats).
pub(crate) struct TcpSink {
    conn: std::sync::Arc<Conn>,
}

impl TcpSink {
    pub(crate) fn new(conn: std::sync::Arc<Conn>) -> Self {
        TcpSink { conn }
    }

    /// A [`ShuffleTx`] whose fabric is this connection.
    pub(crate) fn shuffle_tx(conn: std::sync::Arc<Conn>) -> ShuffleTx {
        ShuffleTx::over(std::sync::Arc::new(TcpSink::new(conn)))
    }
}

impl SegmentSink for TcpSink {
    fn send_segment(&self, seg: Segment, _gate: Option<&PressureGate>) {
        // Send errors mean the coordinator hung up (job over or this
        // worker was declared dead); the map task keeps running and its
        // MapOk/MapFailed send will fail the same way.
        let _ = self.conn.send(&Frame::Segment {
            map_task: seg.map_task as u64,
            attempt: seg.attempt as u64,
            partition: seg.partition as u64,
            sorted: seg.sorted,
            combined: seg.combined,
            payload: super::wire::encode_kv(&seg.records),
        });
    }

    fn map_done(&self, map_task: usize, attempt: usize) {
        let _ = self.conn.send(&Frame::MapDone {
            map_task: map_task as u64,
            attempt: attempt as u64,
        });
    }

    fn abort(&self) {
        let _ = self.conn.send(&Frame::Abort);
    }

    fn input_exhausted(&self, _total_map_tasks: usize) {
        // Workers never learn the job-wide task total; the coordinator
        // broadcasts it through its own fabric.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn conn_roundtrips_frames_and_counts_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let conn = Conn::new(s, "client".into()).unwrap();
            let f = conn.recv().unwrap();
            conn.send(&f).unwrap(); // echo
            conn.recv().unwrap_err(); // peer shut down
        });

        let conn = Conn::connect(&addr).unwrap();
        let sent = Frame::Ping { nonce: 7 };
        conn.send(&sent).unwrap();
        assert_eq!(conn.recv().unwrap(), sent);
        assert!(conn.tx_bytes() > 0);
        assert_eq!(conn.tx_bytes(), conn.rx_bytes(), "echo is symmetric");
        conn.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            use std::io::Write as _;
            s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        });
        let conn = Conn::connect(&addr).unwrap();
        assert!(matches!(conn.recv(), Err(Error::Corrupt(_))));
        server.join().unwrap();
    }
}
