//! The coordinator side of the TCP transport.
//!
//! When [`EngineConfig::transport`](crate::EngineConfig) is
//! [`Transport::Tcp`](super::Transport), the executor builds a
//! [`TcpCluster`] instead of spawning local map workers. The cluster owns
//! one framed connection per worker process and bridges them onto the
//! engine's existing machinery:
//!
//! * **Map dispatch** — per-worker dispatcher threads pull
//!   [`MapAssignment`]s from the scheduler's normal work queue, ship the
//!   split to a worker (`NewSplit`), and turn the worker's
//!   `MapOk`/`MapFailed` into the [`MapEvent`]s the scheduler already
//!   understands. The scheduler's retry budget, speculation, and
//!   straggler logic run completely unchanged.
//! * **Shuffle routing** — every worker's segments flow back through the
//!   coordinator's [`ShuffleTx`], so volume accounting and backpressure
//!   are identical across transports; from there they reach either local
//!   reducers (in-proc receivers) or remote reduce partitions via
//!   per-partition forwarder threads.
//! * **Fault tolerance** — each partition's forwarded stream is retained
//!   in a log; when a worker dies (socket EOF, or missed heartbeats), its
//!   reduce partitions are replayed in full onto a surviving worker and
//!   its in-flight map attempts are failed back to the scheduler, which
//!   reruns them elsewhere. Attempt-aware dedup on the reduce side makes
//!   the rerun invisible in the output.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use crossbeam::thread::Scope;

use onepass_core::error::{Error, Result};
use onepass_core::io::IoStats;
use onepass_core::obs::{Histogram, MetricsRegistry};
use onepass_core::trace::{Tracer, Track};
use onepass_groupby::{EmitKind, OpStats, Sink};

use super::tcp::Conn;
use super::wire::{Frame, WireJob, WireMapStats, WireReduceStats};
use crate::executor::TimedSink;
use crate::map_task::MapTaskStats;
use crate::reduce_task::ReduceResult;
use crate::report::{TaskKind, TaskSpan};
use crate::scheduler::{MapAssignment, MapEvent};
use crate::shuffle::{Segment, ShuffleMsg, ShuffleTx};

/// Builds a fresh staging sink for one remote reduce partition (used at
/// assignment and again on replay, so a replayed partition can never
/// double-emit).
pub(crate) type SinkFactory<'a> = Box<dyn Fn(usize) -> TimedSink + Send + Sync + 'a>;

/// How long a worker may go without answering heartbeats before it is
/// declared dead. Deliberately conservative: socket EOF is the primary
/// death signal (a killed process closes its sockets immediately); the
/// timeout only catches wedged-but-connected workers.
const PONG_TIMEOUT: Duration = Duration::from_secs(10);
/// Heartbeat period.
const PING_EVERY: Duration = Duration::from_millis(250);
/// Forwarder poll tick (how quickly forwarders notice done/abort flags).
const FORWARD_TICK: Duration = Duration::from_millis(50);

/// Waiters for map attempts shipped to a worker and not yet answered,
/// keyed by `(task, attempt)`.
type InflightMap = HashMap<(usize, usize), Sender<Result<MapTaskStats>>>;

/// One connected worker process.
struct WorkerLink {
    id: usize,
    conn: Arc<Conn>,
    alive: AtomicBool,
    /// Map attempts shipped to this worker and not yet answered; the
    /// waiter receives the attempt's result (or a worker-lost error).
    inflight: Mutex<InflightMap>,
    /// Outstanding heartbeat: nonce and send time.
    ping: Mutex<(u64, Instant)>,
    last_pong: Mutex<Instant>,
}

/// Replay state for one remote reduce partition.
struct PartInner {
    /// Link id currently hosting this partition.
    owner: usize,
    /// Everything forwarded to the owner, retained verbatim for replay.
    log: Vec<ShuffleMsg>,
    /// Output staged from the current owner; discarded wholesale (and
    /// rebuilt) on replay so a half-emitted dead owner leaves no trace.
    stage: Option<TimedSink>,
    /// When this partition's reduce first started (span bookkeeping).
    started: Duration,
}

struct PartitionState {
    done: AtomicBool,
    inner: Mutex<PartInner>,
}

/// A connected set of worker processes executing one job, driven by the
/// executor. Lives on the executor's stack so scoped worker threads can
/// borrow it directly.
pub(crate) struct TcpCluster<'a> {
    links: Vec<WorkerLink>,
    parts: Vec<PartitionState>,
    remote_reduce: bool,
    start: Instant,
    aborting: AtomicBool,
    closing: AtomicBool,
    /// Serializes death handling (and replay) so two concurrent failure
    /// detections can't both re-home the same partition.
    death_lock: Mutex<()>,
    sink_factory: SinkFactory<'a>,
    /// Terminal per-partition outcomes for `await_remote_reduces`.
    done_tx: Sender<Result<()>>,
    done_rx: Receiver<Result<()>>,
    /// Scheduler queue handles, consumed by the bail-out thread if every
    /// worker dies (so the scheduler's retry budget exhausts instead of
    /// the job hanging on an empty worker pool).
    bail: Mutex<Option<(Receiver<MapAssignment>, Sender<MapEvent>)>>,
    /// First job rejection reason seen, surfaced as the fatal error.
    rejection: Mutex<Option<String>>,
    rtt: Option<Histogram>,
    tracer: &'a Tracer,
    track_offset: u64,
}

impl<'a> TcpCluster<'a> {
    /// Dial every worker, announce the job, and (if this job's reduces run
    /// remotely) assign partitions round-robin.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn connect(
        workers: &[String],
        job_name: &str,
        wire: WireJob,
        reducers: usize,
        remote_reduce: bool,
        start: Instant,
        metrics: Option<&MetricsRegistry>,
        tracer: &'a Tracer,
        track_offset: u64,
        sink_factory: SinkFactory<'a>,
    ) -> Result<Self> {
        if workers.is_empty() {
            return Err(Error::Config(
                "transport tcp requires at least one worker address".into(),
            ));
        }
        let obs = metrics.map(|m| {
            let stage: &[(&str, &str)] = &[("stage", job_name)];
            let tx_l: &[(&str, &str)] = &[("stage", job_name), ("dir", "tx")];
            let rx_l: &[(&str, &str)] = &[("stage", job_name), ("dir", "rx")];
            (
                m.counter("onepass_transport_bytes_total", tx_l),
                m.counter("onepass_transport_bytes_total", rx_l),
                m.histogram("onepass_transport_rtt_seconds", stage),
            )
        });
        let mut links = Vec::with_capacity(workers.len());
        for (id, addr) in workers.iter().enumerate() {
            let conn = Conn::connect(addr)?;
            if let Some((tx, rx, _)) = &obs {
                conn.set_metrics(tx.clone(), rx.clone());
            }
            conn.send(&Frame::JobInit(wire.clone()))?;
            links.push(WorkerLink {
                id,
                conn: Arc::new(conn),
                alive: AtomicBool::new(true),
                inflight: Mutex::new(HashMap::new()),
                ping: Mutex::new((0, Instant::now())),
                last_pong: Mutex::new(Instant::now()),
            });
        }
        let mut parts = Vec::new();
        if remote_reduce {
            for p in 0..reducers {
                let owner = p % links.len();
                links[owner].conn.send(&Frame::ReduceTask {
                    partition: p as u64,
                })?;
                parts.push(PartitionState {
                    done: AtomicBool::new(false),
                    inner: Mutex::new(PartInner {
                        owner,
                        log: Vec::new(),
                        stage: Some(sink_factory(p)),
                        started: start.elapsed(),
                    }),
                });
            }
        }
        let (done_tx, done_rx) = unbounded();
        Ok(TcpCluster {
            links,
            parts,
            remote_reduce,
            start,
            aborting: AtomicBool::new(false),
            closing: AtomicBool::new(false),
            death_lock: Mutex::new(()),
            sink_factory,
            done_tx,
            done_rx,
            bail: Mutex::new(None),
            rejection: Mutex::new(None),
            rtt: obs.map(|(_, _, rtt)| rtt),
            tracer,
            track_offset,
        })
    }

    /// Stash scheduler queue handles for the all-workers-dead bail-out.
    pub(crate) fn set_bail(&self, task_rx: Receiver<MapAssignment>, evt_tx: Sender<MapEvent>) {
        *self.bail.lock().unwrap() = Some((task_rx, evt_tx));
    }

    /// First `JobRejected` reason seen, if any (the most useful error when
    /// the job subsequently fails).
    pub(crate) fn rejection(&self) -> Option<String> {
        self.rejection.lock().unwrap().clone()
    }

    /// Mark the job as aborting: forwarders stop, deaths stop replaying.
    pub(crate) fn set_aborting(&self) {
        self.aborting.store(true, Ordering::SeqCst);
    }

    /// End of job: stop heartbeats, tell live workers the feed is closed,
    /// and sever every connection so reader threads unblock and exit.
    pub(crate) fn close(&self) {
        self.closing.store(true, Ordering::SeqCst);
        for link in &self.links {
            if link.alive.load(Ordering::SeqCst) {
                let _ = link.conn.send(&Frame::FeedClosed);
            }
            link.conn.shutdown();
        }
    }

    /// Spawn one reader thread per connection (frames → engine events)
    /// plus the heartbeat thread.
    pub(crate) fn spawn_io<'scope, 'env>(
        &'scope self,
        scope: &Scope<'scope, 'env>,
        shuffle_tx: &'scope ShuffleTx,
        red_res_tx: Sender<Result<(ReduceResult, TaskSpan, TimedSink)>>,
    ) {
        for link in &self.links {
            let red_res_tx = red_res_tx.clone();
            scope.spawn(move |_| self.read_loop(link, shuffle_tx, &red_res_tx));
        }
        drop(red_res_tx);
        scope.spawn(move |_| self.heartbeat_loop());
    }

    fn read_loop(
        &self,
        link: &WorkerLink,
        shuffle_tx: &ShuffleTx,
        red_res_tx: &Sender<Result<(ReduceResult, TaskSpan, TimedSink)>>,
    ) {
        while let Ok(frame) = link.conn.recv() {
            match frame {
                Frame::Segment {
                    map_task,
                    attempt,
                    partition,
                    sorted,
                    combined,
                    payload,
                } => {
                    if let Ok(records) = super::wire::decode_kv(payload) {
                        // Into the coordinator fabric: accounting and
                        // backpressure happen here, exactly as for local
                        // map workers.
                        shuffle_tx.send_segment(Segment {
                            map_task: map_task as usize,
                            attempt: attempt as usize,
                            partition: partition as usize,
                            sorted,
                            combined,
                            records,
                        });
                    }
                }
                Frame::MapDone { map_task, attempt } => {
                    shuffle_tx.map_done(map_task as usize, attempt as usize);
                }
                Frame::MapOk {
                    task,
                    attempt,
                    stats,
                } => {
                    self.complete_inflight(
                        link,
                        task as usize,
                        attempt as usize,
                        Ok(map_stats(&stats)),
                    );
                }
                Frame::MapFailed {
                    task,
                    attempt,
                    error,
                } => {
                    self.complete_inflight(
                        link,
                        task as usize,
                        attempt as usize,
                        Err(Error::InvalidState(error)),
                    );
                }
                Frame::FinalBatch {
                    partition,
                    kind,
                    payload,
                } => self.stage_batch(link, partition as usize, kind, payload),
                Frame::ReduceDone { partition, stats } => {
                    self.finish_partition(link, partition as usize, &stats, red_res_tx)
                }
                Frame::Pong { nonce } => {
                    let (sent_nonce, sent_at) = *link.ping.lock().unwrap();
                    if sent_nonce == nonce {
                        if let Some(rtt) = &self.rtt {
                            rtt.observe_duration(sent_at.elapsed());
                        }
                    }
                    *link.last_pong.lock().unwrap() = Instant::now();
                }
                Frame::JobRejected { reason } => {
                    self.rejection
                        .lock()
                        .unwrap()
                        .get_or_insert_with(|| format!("{}: {reason}", link.conn.peer()));
                    break;
                }
                // Coordinator→worker shapes echoed back, or protocol
                // noise: ignore rather than kill the job.
                _ => {}
            }
        }
        self.on_worker_down(link.id);
    }

    /// Deliver a map attempt's terminal result to its dispatcher.
    fn complete_inflight(
        &self,
        link: &WorkerLink,
        task: usize,
        attempt: usize,
        result: Result<MapTaskStats>,
    ) {
        if let Some(tx) = link.inflight.lock().unwrap().remove(&(task, attempt)) {
            let _ = tx.send(result);
        }
    }

    /// Stage a batch of reduce output from `link`, unless the partition
    /// has since been re-homed (stale batches from a dying owner).
    fn stage_batch(&self, link: &WorkerLink, partition: usize, kind: u8, payload: Vec<u8>) {
        let Some(part) = self.parts.get(partition) else {
            return;
        };
        if part.done.load(Ordering::SeqCst) {
            return;
        }
        let Ok(records) = super::wire::decode_kv(payload) else {
            return;
        };
        let emit_kind = if kind == 0 {
            EmitKind::Early
        } else {
            EmitKind::Final
        };
        let mut inner = part.inner.lock().unwrap();
        if inner.owner != link.id {
            return;
        }
        if let Some(stage) = inner.stage.as_mut() {
            for (k, v) in records.iter() {
                stage.emit(k, v, emit_kind);
            }
        }
    }

    /// A remote reduce partition completed: commit its staged output and
    /// hand the engine a result shaped exactly like a local reducer's.
    fn finish_partition(
        &self,
        link: &WorkerLink,
        partition: usize,
        stats: &WireReduceStats,
        red_res_tx: &Sender<Result<(ReduceResult, TaskSpan, TimedSink)>>,
    ) {
        let Some(part) = self.parts.get(partition) else {
            return;
        };
        let mut inner = part.inner.lock().unwrap();
        if inner.owner != link.id || part.done.swap(true, Ordering::SeqCst) {
            return;
        }
        let Some(sink) = inner.stage.take() else {
            return;
        };
        let result = ReduceResult {
            partition,
            stats: OpStats {
                records_in: stats.records_in,
                groups_out: stats.groups_out,
                early_emits: stats.early_emits,
                io: IoStats {
                    bytes_written: stats.bytes_written,
                    bytes_read: stats.bytes_read,
                    runs_created: stats.runs_created,
                    runs_deleted: stats.runs_deleted,
                },
                peak_mem: stats.peak_mem as usize,
                spills: stats.spills,
                passes: stats.passes,
                ..OpStats::default()
            },
            snapshots_taken: stats.snapshots_taken,
            attempts: (stats.attempts as usize).max(1),
        };
        let span = TaskSpan {
            kind: TaskKind::Reduce,
            id: partition,
            attempt: result.attempts - 1,
            start: inner.started,
            end: self.start.elapsed(),
        };
        drop(inner);
        let _ = red_res_tx.send(Ok((result, span, sink)));
        let _ = self.done_tx.send(Ok(()));
    }

    fn heartbeat_loop(&self) {
        let mut nonce = 0u64;
        while !self.closing.load(Ordering::SeqCst) {
            std::thread::sleep(PING_EVERY);
            for link in &self.links {
                if !link.alive.load(Ordering::SeqCst) {
                    continue;
                }
                nonce += 1;
                *link.ping.lock().unwrap() = (nonce, Instant::now());
                if link.conn.send(&Frame::Ping { nonce }).is_err() {
                    self.on_worker_down(link.id);
                    continue;
                }
                let silent = link.last_pong.lock().unwrap().elapsed();
                if silent > PONG_TIMEOUT {
                    self.on_worker_down(link.id);
                }
            }
        }
    }

    /// Spawn dispatcher threads bridging the scheduler's work queue onto
    /// worker connections. `map_workers` (the in-proc pool size) caps the
    /// cluster-wide dispatch concurrency so local and distributed runs
    /// schedule comparably.
    pub(crate) fn spawn_map_dispatch<'scope, 'env>(
        &'scope self,
        scope: &Scope<'scope, 'env>,
        task_rx: Receiver<MapAssignment>,
        evt_tx: Sender<MapEvent>,
        map_workers: usize,
    ) {
        let slots = map_workers.div_ceil(self.links.len()).max(1);
        for link in &self.links {
            for _ in 0..slots {
                let task_rx = task_rx.clone();
                let evt_tx = evt_tx.clone();
                scope.spawn(move |_| self.dispatch_loop(link, &task_rx, &evt_tx));
            }
        }
    }

    fn dispatch_loop(
        &self,
        link: &WorkerLink,
        task_rx: &Receiver<MapAssignment>,
        evt_tx: &Sender<MapEvent>,
    ) {
        while let Ok(asg) = task_rx.recv() {
            if !asg.delay.is_zero() {
                std::thread::sleep(asg.delay);
            }
            let t0 = self.start.elapsed();
            let _ = evt_tx.send(MapEvent::Started {
                task: asg.task,
                attempt: asg.attempt,
                at: t0,
            });
            let result = match self.run_remote_map(link, &asg) {
                // A worker-lost failure of a cancelled (speculative
                // loser) attempt is not a real failure; don't charge the
                // retry budget.
                Err(_) if asg.cancel.load(Ordering::SeqCst) => Err(Error::Cancelled),
                other => other,
            };
            let span = TaskSpan {
                kind: TaskKind::Map,
                id: asg.task,
                attempt: asg.attempt,
                start: t0,
                end: self.start.elapsed(),
            };
            let _ = evt_tx.send(MapEvent::Finished {
                task: asg.task,
                attempt: asg.attempt,
                speculative: asg.speculative,
                span,
                result,
            });
            // A dead link stops pulling work so it can't starve the
            // retry budget; surviving dispatchers (or the bail-out
            // thread) drain the queue.
            if !link.alive.load(Ordering::SeqCst) {
                break;
            }
        }
    }

    /// Ship one map attempt to `link` and wait for its result.
    fn run_remote_map(&self, link: &WorkerLink, asg: &MapAssignment) -> Result<MapTaskStats> {
        let lost = || Error::InvalidState(format!("worker {} lost", link.conn.peer()));
        let (wtx, wrx) = bounded(1);
        link.inflight
            .lock()
            .unwrap()
            .insert((asg.task, asg.attempt), wtx);
        let sent = link.alive.load(Ordering::SeqCst)
            && link
                .conn
                .send(&Frame::NewSplit {
                    task: asg.task as u64,
                    attempt: asg.attempt as u64,
                    records: flatten_split(&asg.split),
                })
                .is_ok();
        if !sent {
            // Fail our own waiter unless the death handler already did.
            if let Some(tx) = link
                .inflight
                .lock()
                .unwrap()
                .remove(&(asg.task, asg.attempt))
            {
                let _ = tx.send(Err(lost()));
            }
        }
        wrx.recv().unwrap_or_else(|_| Err(lost()))
    }

    /// Handle a worker death: fail its in-flight map attempts back to the
    /// scheduler and replay its reduce partitions onto survivors.
    /// Idempotent; safe to call from any thread.
    fn on_worker_down(&self, id: usize) {
        let guard = self.death_lock.lock().unwrap();
        let link = &self.links[id];
        if !link.alive.swap(false, Ordering::SeqCst) {
            return;
        }
        // Force the link's reader out of recv even if death was declared
        // by heartbeat while the socket is technically still open.
        link.conn.shutdown();
        let waiters: Vec<_> = link.inflight.lock().unwrap().drain().collect();
        for (_key, tx) in waiters {
            let _ = tx.send(Err(Error::InvalidState(format!(
                "worker {} lost",
                link.conn.peer()
            ))));
        }
        if self.closing.load(Ordering::SeqCst) {
            return;
        }
        let mut trace = self
            .tracer
            .local(Track::new("transport", self.track_offset));
        trace.instant("worker_dead", "transport", &[("worker", id as f64)]);
        let mut cascade = Vec::new();
        if self.remote_reduce && !self.aborting.load(Ordering::SeqCst) {
            for (p, part) in self.parts.iter().enumerate() {
                if part.done.load(Ordering::SeqCst) {
                    continue;
                }
                let mut inner = part.inner.lock().unwrap();
                if inner.owner != id {
                    continue;
                }
                let Some(new_owner) = self.pick_alive() else {
                    let _ = self.done_tx.send(Err(Error::InvalidState(format!(
                        "all workers lost before partition {p} completed"
                    ))));
                    continue;
                };
                trace.instant(
                    "reduce_replay",
                    "transport",
                    &[("partition", p as f64), ("to", new_owner as f64)],
                );
                inner.owner = new_owner;
                // Discard anything the dead owner staged; the replacement
                // re-runs the partition from the retained log and re-emits
                // everything, so output stays exactly-once.
                inner.stage = Some((self.sink_factory)(p));
                let conn = &self.links[new_owner].conn;
                let mut ok = conn
                    .send(&Frame::ReduceTask {
                        partition: p as u64,
                    })
                    .is_ok();
                if ok {
                    for msg in &inner.log {
                        if send_shuffle_frame(conn, p, msg).is_err() {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok && !cascade.contains(&new_owner) {
                    cascade.push(new_owner);
                }
            }
        }
        let all_dead = self.links.iter().all(|l| !l.alive.load(Ordering::SeqCst));
        let bail = if all_dead {
            self.bail.lock().unwrap().take()
        } else {
            None
        };
        drop(guard);
        // A replacement that failed mid-replay is itself dead; recurse
        // (the death lock is released, and `alive` makes this idempotent).
        for target in cascade {
            self.on_worker_down(target);
        }
        if let Some((task_rx, evt_tx)) = bail {
            // Every worker is gone: insta-fail queued assignments so the
            // scheduler's retry budget exhausts (fatal) instead of the
            // job hanging on an empty pool. Detached thread; exits when
            // the scheduler drops its sender.
            let start = self.start;
            std::thread::spawn(move || {
                while let Ok(asg) = task_rx.recv() {
                    let at = start.elapsed();
                    let _ = evt_tx.send(MapEvent::Started {
                        task: asg.task,
                        attempt: asg.attempt,
                        at,
                    });
                    let span = TaskSpan {
                        kind: TaskKind::Map,
                        id: asg.task,
                        attempt: asg.attempt,
                        start: at,
                        end: start.elapsed(),
                    };
                    let _ = evt_tx.send(MapEvent::Finished {
                        task: asg.task,
                        attempt: asg.attempt,
                        speculative: asg.speculative,
                        span,
                        result: Err(Error::InvalidState("all workers lost".into())),
                    });
                }
            });
        }
    }

    fn pick_alive(&self) -> Option<usize> {
        self.links
            .iter()
            .find(|l| l.alive.load(Ordering::SeqCst))
            .map(|l| l.id)
    }

    /// Spawn one forwarder per partition, bridging the coordinator fabric
    /// onto the owning worker's connection and retaining every message
    /// for replay.
    pub(crate) fn spawn_partition_forwarders<'scope, 'env>(
        &'scope self,
        scope: &Scope<'scope, 'env>,
        shuffle_rxs: Vec<Receiver<ShuffleMsg>>,
    ) {
        for (p, rx) in shuffle_rxs.into_iter().enumerate() {
            scope.spawn(move |_| self.forward_partition(p, &rx));
        }
    }

    fn forward_partition(&self, p: usize, rx: &Receiver<ShuffleMsg>) {
        loop {
            if self.parts[p].done.load(Ordering::SeqCst)
                || self.aborting.load(Ordering::SeqCst)
                || self.closing.load(Ordering::SeqCst)
            {
                return;
            }
            let msg = match rx.recv_timeout(FORWARD_TICK) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            };
            // Log + forward under the partition lock, so a concurrent
            // replay can never interleave between "appended to log" and
            // "sent to owner" (which could reorder MapDone ahead of its
            // segments on the replacement).
            let failed_owner = {
                let mut inner = self.parts[p].inner.lock().unwrap();
                inner.log.push(msg.clone());
                let owner = inner.owner;
                if send_shuffle_frame(&self.links[owner].conn, p, &msg).is_err() {
                    Some(owner)
                } else {
                    None
                }
            };
            if let Some(owner) = failed_owner {
                self.on_worker_down(owner);
            }
        }
    }

    /// Block until every remote reduce partition reports a terminal
    /// outcome; the first failure wins (a failure means no worker is left
    /// to host some partition, so the job cannot complete).
    pub(crate) fn await_remote_reduces(&self, reducers: usize) -> Result<()> {
        for _ in 0..reducers {
            match self.done_rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(_) => {
                    return Err(Error::InvalidState(
                        "reduce completion channel closed".into(),
                    ))
                }
            }
        }
        Ok(())
    }
}

/// Encode one fabric message as its partition-addressed wire frame.
/// Wire splits carry raw records only: a cache-hit split's framed pairs
/// are re-encoded as edge records for the trip (remote workers decode
/// them through the stage's normal [`MapFn::map`](crate::job::MapFn)
/// path — correct, just not zero-copy).
fn flatten_split(split: &crate::map_task::Split) -> Vec<Vec<u8>> {
    let mut records = split.records.clone();
    if let Some(pairs) = &split.pairs {
        records.extend(pairs.iter().map(|(k, v)| crate::codec::encode_pair(k, v)));
    }
    records
}

fn send_shuffle_frame(conn: &Conn, partition: usize, msg: &ShuffleMsg) -> Result<()> {
    match msg {
        ShuffleMsg::Segment(seg) => conn.send(&Frame::Segment {
            map_task: seg.map_task as u64,
            attempt: seg.attempt as u64,
            partition: partition as u64,
            sorted: seg.sorted,
            combined: seg.combined,
            payload: super::wire::encode_kv(&seg.records),
        }),
        ShuffleMsg::MapDone { map_task, attempt } => conn.send(&Frame::RedMapDone {
            partition: partition as u64,
            map_task: *map_task as u64,
            attempt: *attempt as u64,
        }),
        ShuffleMsg::InputExhausted { total_map_tasks } => conn.send(&Frame::RedInputExhausted {
            partition: partition as u64,
            total: *total_map_tasks as u64,
        }),
        ShuffleMsg::Abort => conn.send(&Frame::RedAbort {
            partition: partition as u64,
        }),
    }
}

fn map_stats(w: &WireMapStats) -> MapTaskStats {
    MapTaskStats {
        input_records: w.input_records,
        input_bytes: w.input_bytes,
        output_records: w.output_records,
        shuffled_records: w.shuffled_records,
        shuffled_bytes: w.shuffled_bytes,
        flushes: w.flushes,
        ..MapTaskStats::default()
    }
}
