//! Worker-scoped in-node combining: map tasks running on the same
//! executor worker fold their output into one shared, governor-leased
//! combine table that is flushed to the shuffle far less often than
//! per-task flushing would — the "in-node combiner" idea (cf.
//! in-node/in-mapper combining and M3R's partition-local aggregation).
//!
//! # Protocol
//!
//! Per-task map-side combine
//! ([`MapSideMode::HashCombine`](crate::job::MapSideMode::HashCombine))
//! ships one
//! combined segment set per *flush* of every task. With many small tasks
//! (or a small push granularity) the same hot keys are rebuilt and
//! re-shipped over and over. In-node combining instead:
//!
//! 1. Each map *attempt* buffers its entire output in its partition-
//!    tagged arena ([`KvBuf`]) and ships nothing — no segments, no
//!    `MapDone`.
//! 2. When the attempt **succeeds**, its worker folds the buffer into
//!    the worker's `WorkerCombiner` (one hash probe per record, via
//!    `WorkerCombiner::fold_task`) and records the `(task, attempt)`
//!    pair as a contributor. A failed or cancelled attempt never reaches
//!    the fold, so the shared table cannot be contaminated by partial
//!    output — exactly mirroring how a failed attempt never announces
//!    `MapDone`, so replay under retries stays output-identical. (The
//!    fold being post-success is also what makes this *cheap*: no undo
//!    log, and no per-task table that would have to be re-probed into
//!    the shared one.)
//! 3. The combiner flushes when its leased budget runs over (or the
//!    governor posts a shed request), and once more when the worker
//!    drains: it ships one combined segment per non-empty partition —
//!    stamped with the *triggering* contributor's `(task, attempt)` —
//!    and only then announces `MapDone` for **every** contributor.
//!    Per-channel FIFO ordering guarantees reducers see the segments
//!    before any of those `MapDone`s, so attempt-deduping reducers commit
//!    the data exactly once; the non-triggering contributors commit as
//!    zero-segment tasks, which the reducer already handles.
//!
//! Speculative execution is the one scheduler feature in-node combining
//! steps aside for: with two racing attempts of the same task, the loser
//! may already be folded into a worker table by the time the winner's
//! `MapDone` commits, which would double-count. The executor therefore
//! falls back to per-task combining whenever speculation is enabled.
//!
//! # Memory accounting
//!
//! The combine table holds a [`MemoryBudget`]. Under adaptive governance
//! the executor hands it a governor *lease*, so map-side combine state is
//! debited from the same pool as reduce-side hash tables and the
//! governor can demand a flush (via a shed request) under global
//! pressure. Under the static policy the table gets a private budget of
//! `job.map_buffer_bytes`. Note the attempt's arena is bounded by its
//! split's output, not by the push granularity — deferred mode trades
//! that buffering for one fold per record.
//!
//! [`KvBuf`]: onepass_core::bytes_kv::KvBuf

use std::sync::Arc;

use onepass_core::bytes_kv::{KvBuf, SegmentBufBuilder};
use onepass_core::error::Result;
use onepass_core::hashlib::{fingerprint, mix64};
use onepass_core::io::SpillStore;
use onepass_core::memory::MemoryBudget;
use onepass_core::obs::Histogram;
use onepass_groupby::Aggregator;

use crate::job::{JobSpec, Partitioner};
use crate::shuffle::{Segment, ShuffleTx};

/// Whether map output is combined across tasks inside each executor
/// worker before it is shuffled (see the module docs for the protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InNodeCombine {
    /// Combine across same-worker map tasks whenever the job is eligible:
    /// map-side mode is [`MapSideMode::HashCombine`], the aggregate is
    /// combinable, and speculative execution is off. The default — this
    /// is the fast path the paper's one-pass configuration wants.
    ///
    /// [`MapSideMode::HashCombine`]: crate::job::MapSideMode::HashCombine
    #[default]
    On,
    /// Always combine per task (the pre-0.7 behaviour).
    Off,
}

impl InNodeCombine {
    /// True when in-node combining is requested.
    pub fn is_on(self) -> bool {
        matches!(self, InNodeCombine::On)
    }

    /// Lowercase label for reports and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            InNodeCombine::On => "on",
            InNodeCombine::Off => "off",
        }
    }

    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "on" | "innode" | "in-node" => Some(InNodeCombine::On),
            "off" | "per-task" => Some(InNodeCombine::Off),
            _ => None,
        }
    }
}

/// Per-entry bookkeeping overhead charged to the combine budget on top of
/// key + state payload (slot, fingerprint, ranges, state `Vec` header).
const ENTRY_OVERHEAD: usize = 48;

/// Empty marker in the slot array.
const EMPTY: u32 = u32::MAX;

/// Open-addressed combine table probed by precomputed key fingerprint,
/// with key bytes in a shared arena. The fold loop computes each key's
/// [`fingerprint`] exactly once; the probe compares fingerprints before
/// touching key bytes, and a miss appends the key to the arena instead of
/// boxing it — the per-distinct-key allocations of a
/// `HashMap<Vec<u8>, _>` are what made table-based combining lose to the
/// sort path's arena discipline on combine-heavy workloads. States stay
/// individually owned because [`Aggregator::update`] grows them in place.
struct FpTable {
    /// Entry indices, length always a power of two; `EMPTY` = free.
    slots: Vec<u32>,
    /// Per-entry key fingerprints, parallel to `key_ranges`/`states`.
    fps: Vec<u64>,
    /// Per-entry `(start, end)` into `keys`.
    key_ranges: Vec<(u32, u32)>,
    /// Per-entry aggregate state.
    states: Vec<Vec<u8>>,
    /// Key-byte arena.
    keys: Vec<u8>,
}

impl FpTable {
    fn new() -> Self {
        FpTable {
            slots: Vec::new(),
            fps: Vec::new(),
            key_ranges: Vec::new(),
            states: Vec::new(),
            keys: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.fps.len()
    }

    fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }

    fn key(&self, e: usize) -> &[u8] {
        let (s, t) = self.key_ranges[e];
        &self.keys[s as usize..t as usize]
    }

    /// Double the slot array and re-place every entry. Only fingerprints
    /// are re-mixed — key bytes are never touched on growth.
    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(64);
        self.slots.clear();
        self.slots.resize(cap, EMPTY);
        let mask = cap - 1;
        for (e, &fp) in self.fps.iter().enumerate() {
            let mut i = mix64(fp) as usize & mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = e as u32;
        }
    }

    /// Fold one record: combine into the existing entry for `key`, or
    /// append a new entry initialised with `agg.init`. Returns the arena
    /// bytes a new entry added (0 on a hit).
    fn upsert(&mut self, fp: u64, key: &[u8], value: &[u8], agg: &dyn Aggregator) -> usize {
        // Keep load factor under 7/8 so linear probes stay short.
        if self.slots.len() < 8 || self.len() >= self.slots.len() / 8 * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = mix64(fp) as usize & mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                let start = self.keys.len() as u32;
                self.keys.extend_from_slice(key);
                self.slots[i] = self.fps.len() as u32;
                self.fps.push(fp);
                self.key_ranges.push((start, self.keys.len() as u32));
                let state = agg.init(key, value);
                let grown = key.len() + state.len() + ENTRY_OVERHEAD;
                self.states.push(state);
                return grown;
            }
            let e = s as usize;
            if self.fps[e] == fp && self.key(e) == key {
                let (ks, kt) = self.key_ranges[e];
                agg.update(
                    &self.keys[ks as usize..kt as usize],
                    &mut self.states[e],
                    value,
                );
                return 0;
            }
            i = (i + 1) & mask;
        }
    }

    /// Drain every entry (insertion order) into `out`, keeping the
    /// allocated capacity for the next fill.
    fn drain_into(&mut self, out: &mut SegmentBufBuilder) {
        for (e, state) in self.states.iter().enumerate() {
            let (s, t) = self.key_ranges[e];
            out.push(&self.keys[s as usize..t as usize], state);
        }
        self.slots.iter_mut().for_each(|s| *s = EMPTY);
        self.fps.clear();
        self.key_ranges.clear();
        self.states.clear();
        self.keys.clear();
    }
}

/// The shared combine table of one map worker. Not thread-safe by
/// construction: each worker owns exactly one, and all folds happen on
/// the worker's own thread after a task attempt succeeds.
pub(crate) struct WorkerCombiner {
    tables: Vec<FpTable>,
    /// Successful attempts folded since the last flush, in fold order.
    contributors: Vec<(usize, usize)>,
    budget: MemoryBudget,
    reserved: usize,
    /// Map-output records folded since the last flush.
    absorbed: u64,
}

impl WorkerCombiner {
    /// Empty combiner over `partitions` tables, charging `budget`.
    pub fn new(partitions: usize, budget: MemoryBudget) -> Self {
        WorkerCombiner {
            tables: (0..partitions).map(|_| FpTable::new()).collect(),
            contributors: Vec::new(),
            budget,
            reserved: 0,
            absorbed: 0,
        }
    }

    /// Fold one successful attempt's buffered output into the shared
    /// table — one fingerprint, one partition decision, and one probe per
    /// record — and record it as a contributor. `buf` carries the
    /// attempt's full map output *unrouted* (the deferred emitter skips
    /// the partitioner): routing happens here from the fold's own
    /// fingerprint via [`Partitioner::partition_fp`], so the key bytes
    /// are hashed exactly once. Values are raw map-output values, so
    /// first contact runs [`Aggregator::init`] and collisions
    /// [`Aggregator::update`] (the same combine the per-task hash path
    /// applies).
    pub fn fold_task(
        &mut self,
        task: usize,
        attempt: usize,
        buf: &KvBuf,
        partitioner: &dyn Partitioner,
        agg: &dyn Aggregator,
    ) {
        let reducers = self.tables.len();
        let mut grown = 0usize;
        for (_, key, value) in buf.iter() {
            let fp = fingerprint(key);
            let p = partitioner.partition_fp(fp, key, reducers);
            grown += self.tables[p].upsert(fp, key, value, agg);
        }
        if grown > 0 && !self.budget.try_grant(grown) {
            // Soft limit: the table must be able to absorb a completed
            // attempt, so take the bytes and let `should_flush` trigger
            // the flush at this task boundary.
            self.budget.force_grant(grown);
        }
        self.reserved += grown;
        self.absorbed += buf.len() as u64;
        self.contributors.push((task, attempt));
    }

    /// Whether the table should flush now: over its lease, or the
    /// governor posted a shed request against it.
    pub fn should_flush(&self) -> bool {
        self.budget.over_limit() || self.budget.take_shed_request() > 0
    }

    /// Ship the table: one combined segment per non-empty partition,
    /// stamped with the triggering (= last) contributor, optionally
    /// persisted to the map-output store, followed by a `MapDone` for
    /// every contributor. No-op when nothing was folded.
    pub fn flush(
        &mut self,
        tx: &ShuffleTx,
        map_store: Option<&Arc<dyn SpillStore>>,
        ratio: Option<&Histogram>,
    ) -> Result<()> {
        if self.contributors.is_empty() {
            return Ok(());
        }
        let (trigger_task, trigger_attempt) = *self
            .contributors
            .last()
            .expect("contributor list is non-empty");
        let mut segments = Vec::with_capacity(self.tables.len());
        let mut sent_records = 0u64;
        for (p, table) in self.tables.iter_mut().enumerate() {
            if table.is_empty() {
                continue;
            }
            let mut records = SegmentBufBuilder::new();
            table.drain_into(&mut records);
            let seg = Segment {
                map_task: trigger_task,
                attempt: trigger_attempt,
                partition: p,
                sorted: false,
                combined: true,
                records: records.finish(),
            };
            sent_records += seg.len() as u64;
            segments.push(seg);
        }
        // Map-output persistence applies at the worker-flush boundary in
        // this mode: what goes down is what actually shuffles.
        if let Some(store) = map_store {
            let mut w = store.begin_run()?;
            for seg in &segments {
                w.write_segment(&seg.records)?;
            }
            let meta = w.finish()?;
            store.delete_run(meta.id)?;
        }
        for seg in segments {
            tx.send_segment(seg);
        }
        for (task, attempt) in self.contributors.drain(..) {
            tx.map_done(task, attempt);
        }
        if let Some(h) = ratio {
            if self.absorbed > 0 {
                h.observe(sent_records as f64 / self.absorbed as f64);
            }
        }
        self.absorbed = 0;
        self.budget.release(self.reserved);
        self.reserved = 0;
        Ok(())
    }
}

/// Whether a job + config combination runs the in-node combiner.
pub(crate) fn innode_eligible(config: &crate::driver::EngineConfig, job: &JobSpec) -> bool {
    config.in_node_combine.is_on()
        && matches!(job.map_side, crate::job::MapSideMode::HashCombine)
        && job.combine.is_on()
        && job.agg.combinable()
        && !config.speculation.enabled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shuffle::{shuffle_fabric, ShuffleMsg};
    use onepass_groupby::SumAgg;

    /// Deferred-mode buffer: pairs land unrouted in partition 0; the
    /// fold does the routing.
    fn buf(pairs: &[(&str, u64)]) -> KvBuf {
        let mut b = KvBuf::new();
        for &(k, v) in pairs {
            b.push(0, k.as_bytes(), &v.to_le_bytes());
        }
        b
    }

    /// Routes by the key's first byte — deterministic without hashing,
    /// and exercises the default `partition_fp` fallback.
    struct ByFirstByte;
    impl Partitioner for ByFirstByte {
        fn partition(&self, key: &[u8], reducers: usize) -> usize {
            key.first().map_or(0, |&b| b as usize) % reducers
        }
    }

    fn drain(
        rxs: Vec<crossbeam::channel::Receiver<ShuffleMsg>>,
    ) -> (Vec<Segment>, Vec<(usize, usize)>) {
        let mut segs = Vec::new();
        let mut dones = Vec::new();
        for rx in rxs {
            while let Ok(msg) = rx.try_recv() {
                match msg {
                    ShuffleMsg::Segment(s) => segs.push(s),
                    ShuffleMsg::MapDone { map_task, attempt } => dones.push((map_task, attempt)),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        (segs, dones)
    }

    #[test]
    fn fold_combines_across_tasks() {
        let mut c = WorkerCombiner::new(2, MemoryBudget::unlimited());
        c.fold_task(0, 0, &buf(&[("a", 1), ("b", 2)]), &ByFirstByte, &SumAgg);
        c.fold_task(1, 0, &buf(&[("a", 10), ("c", 3)]), &ByFirstByte, &SumAgg);
        let (tx, rxs) = shuffle_fabric(2, 64);
        c.flush(&tx, None, None).unwrap();
        let (segs, dones) = drain(rxs);
        // "a" collapsed across both tasks: 3 distinct keys total.
        let total: usize = segs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 3);
        let a = segs
            .iter()
            .flat_map(|s| s.records.iter())
            .find(|(k, _)| *k == b"a")
            .map(|(_, v)| u64::from_le_bytes(v.try_into().unwrap()))
            .unwrap();
        assert_eq!(a, 11, "values combined, not re-counted");
        for seg in &segs {
            assert!(seg.combined && !seg.sorted);
            assert_eq!((seg.map_task, seg.attempt), (1, 0), "trigger stamps");
        }
        // Every contributor announced, each to every reducer.
        let mut per_task: Vec<_> = dones.clone();
        per_task.sort();
        per_task.dedup();
        assert_eq!(per_task, vec![(0, 0), (1, 0)]);
        assert_eq!(dones.len(), 4, "each MapDone broadcast to both reducers");
    }

    #[test]
    fn segments_precede_map_dones_per_channel() {
        let mut c = WorkerCombiner::new(1, MemoryBudget::unlimited());
        c.fold_task(3, 1, &buf(&[("k", 1)]), &ByFirstByte, &SumAgg);
        let (tx, rxs) = shuffle_fabric(1, 64);
        c.flush(&tx, None, None).unwrap();
        let mut msgs = Vec::new();
        while let Ok(m) = rxs[0].try_recv() {
            msgs.push(m);
        }
        assert!(matches!(msgs[0], ShuffleMsg::Segment(_)));
        assert!(matches!(
            msgs[1],
            ShuffleMsg::MapDone {
                map_task: 3,
                attempt: 1
            }
        ));
    }

    #[test]
    fn flush_with_no_contributors_is_silent() {
        let mut c = WorkerCombiner::new(2, MemoryBudget::unlimited());
        let (tx, rxs) = shuffle_fabric(2, 8);
        c.flush(&tx, None, None).unwrap();
        let (segs, dones) = drain(rxs);
        assert!(segs.is_empty() && dones.is_empty());
    }

    #[test]
    fn over_budget_demands_flush_and_flush_releases() {
        let budget = MemoryBudget::new(64);
        let mut c = WorkerCombiner::new(1, budget.clone());
        c.fold_task(
            0,
            0,
            &buf(&[("some-longish-key", 1), ("another-key", 2)]),
            &ByFirstByte,
            &SumAgg,
        );
        assert!(c.should_flush(), "tiny budget must run over");
        let (tx, _rxs) = shuffle_fabric(1, 8);
        c.flush(&tx, None, None).unwrap();
        assert_eq!(budget.used(), 0, "flush returns the lease");
        assert!(!c.should_flush());
    }

    #[test]
    fn empty_task_still_gets_its_map_done() {
        let mut c = WorkerCombiner::new(1, MemoryBudget::unlimited());
        c.fold_task(7, 0, &KvBuf::new(), &ByFirstByte, &SumAgg);
        let (tx, rxs) = shuffle_fabric(1, 8);
        c.flush(&tx, None, None).unwrap();
        let (segs, dones) = drain(rxs);
        assert!(segs.is_empty());
        assert_eq!(dones, vec![(7, 0)]);
    }
}
