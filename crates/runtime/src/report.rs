//! Job execution reports: everything the paper's profiling harness
//! measured, per job.

use std::time::Duration;

use onepass_core::io::IoStats;
use onepass_core::metrics::{Phase, Profile};
use onepass_groupby::{EmitKind, OpStats};

use crate::map_task::MapTaskStats;
use crate::reduce_task::ReduceResult;

/// What kind of task a [`TaskSpan`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A map task.
    Map,
    /// A reduce task.
    Reduce,
}

impl TaskKind {
    /// Lowercase label, as used in JSONL reports and trace track groups.
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::Map => "map",
            TaskKind::Reduce => "reduce",
        }
    }
}

/// One task's lifetime relative to job start — the raw material of the
/// paper's task-timeline plots (Fig. 2a / Fig. 3).
#[derive(Debug, Clone, Copy)]
pub struct TaskSpan {
    /// Task kind.
    pub kind: TaskKind,
    /// Task id (map task id or reducer partition).
    pub id: usize,
    /// Execution attempt (0 = first). Retried and speculative attempts
    /// each get their own span.
    pub attempt: usize,
    /// Start offset from job start.
    pub start: Duration,
    /// End offset from job start.
    pub end: Duration,
}

/// One output emission.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Output key.
    pub key: Vec<u8>,
    /// Output value.
    pub value: Vec<u8>,
    /// Early (incremental/snapshot) vs final.
    pub kind: EmitKind,
    /// When it was emitted, relative to job start.
    pub at: Duration,
}

/// The full result of one engine run.
#[derive(Debug, Default)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Backend label used on the reduce side.
    pub backend: String,
    /// Wall-clock duration of the whole job.
    pub wall: Duration,
    /// Merged per-phase CPU profile of all map tasks.
    pub map_profile: Profile,
    /// Merged per-phase CPU profile of all reduce tasks.
    pub reduce_profile: Profile,
    /// Number of map tasks executed.
    pub map_tasks: usize,
    /// Number of reduce tasks executed.
    pub reduce_tasks: usize,
    /// Input records consumed.
    pub input_records: u64,
    /// Input bytes consumed.
    pub input_bytes: u64,
    /// Map-function output records (before combine).
    pub map_output_records: u64,
    /// Records actually shuffled (after combine).
    pub shuffled_records: u64,
    /// Bytes actually shuffled (after combine).
    pub shuffled_bytes: u64,
    /// Map-side persistence I/O (the synchronous map-output write).
    pub map_write_io: IoStats,
    /// Reduce-side spill I/O (multi-pass merge / hash bucket spill).
    pub reduce_spill_io: IoStats,
    /// Groups emitted as final answers.
    pub groups_out: u64,
    /// Early emissions (incremental answers, hot-key answers, snapshots).
    pub early_emits: u64,
    /// HOP snapshots taken.
    pub snapshots: u64,
    /// Time of the first early emission (None if none happened).
    pub first_early_at: Option<Duration>,
    /// Time of the first final emission.
    pub first_final_at: Option<Duration>,
    /// Collected output (when the job asked for it).
    pub outputs: Vec<JobOutput>,
    /// Task lifetimes for timeline rendering.
    pub task_spans: Vec<TaskSpan>,
    /// Map attempts executed to any outcome (success, failure, or
    /// cancellation). Equals `map_tasks` when nothing failed.
    pub map_attempts: usize,
    /// Reduce attempts executed (internal reduce retries included).
    /// Equals `reduce_tasks` when nothing failed.
    pub reduce_attempts: usize,
    /// Attempts that ended in a real failure and were retried or gave up
    /// (cancelled speculative losers are not failures).
    pub failed_attempts: usize,
    /// Speculative map clones launched against stragglers.
    pub speculative_launched: usize,
    /// Speculative clones that finished before the original attempt.
    pub speculative_wins: usize,
    /// Governor lease-limit rebalances (slack grants + donor transfers).
    /// Zero under [`MemoryPolicy::Static`](onepass_core::governor::MemoryPolicy).
    pub mem_rebalances: u64,
    /// Shed requests the governor posted to victim operators.
    pub mem_sheds: u64,
    /// Total bytes of shedding requested across those requests.
    pub mem_shed_bytes: u64,
    /// High-water mark of the governed global pool, in bytes (0 when
    /// static).
    pub mem_pool_high_water: u64,
    /// Map-side shuffle pushes that stalled at least once on the
    /// pressure gate.
    pub backpressure_stalls: u64,
}

impl JobReport {
    /// Total CPU seconds across map+reduce phases (the §V "CPU cycles"
    /// comparison metric).
    pub fn total_cpu(&self) -> Duration {
        self.map_profile.total_time() + self.reduce_profile.total_time()
    }

    /// CPU seconds excluding shuffle-wait (which is idle, not CPU).
    pub fn total_compute_cpu(&self) -> Duration {
        self.total_cpu()
            .saturating_sub(self.map_profile.time(Phase::Shuffle))
            .saturating_sub(self.reduce_profile.time(Phase::Shuffle))
    }

    /// Reduce-side spill traffic in bytes (written + read) — the §V
    /// three-orders-of-magnitude metric.
    pub fn reduce_spill_traffic(&self) -> u64 {
        self.reduce_spill_io.bytes_written + self.reduce_spill_io.bytes_read
    }

    /// Intermediate-data-to-input ratio (Table I row
    /// "Intermediate/input").
    pub fn intermediate_ratio(&self) -> f64 {
        if self.input_bytes == 0 {
            0.0
        } else {
            self.shuffled_bytes as f64 / self.input_bytes as f64
        }
    }

    /// Fold one map task's stats into the report.
    pub(crate) fn absorb_map(&mut self, s: &MapTaskStats) {
        self.map_tasks += 1;
        self.input_records += s.input_records;
        self.input_bytes += s.input_bytes;
        self.map_output_records += s.output_records;
        self.shuffled_records += s.shuffled_records;
        self.shuffled_bytes += s.shuffled_bytes;
        self.map_profile.merge(&s.profile);
    }

    /// Fold one reduce task's result into the report.
    pub(crate) fn absorb_reduce(&mut self, r: &ReduceResult) {
        self.reduce_tasks += 1;
        self.reduce_attempts += r.attempts;
        self.failed_attempts += r.attempts - 1;
        self.reduce_profile.merge(&r.stats.profile);
        self.groups_out += r.stats.groups_out;
        // early_emits is set by the driver from its sinks (covers backend
        // early output and HOP snapshots uniformly); not accumulated here.
        self.snapshots += r.snapshots_taken;
        add_io(&mut self.reduce_spill_io, &r.stats.io);
    }

    /// Summarize reduce OpStats (used by tests to cross-check invariants).
    pub fn reduce_stats_invariants_hold(&self, reduce_stats: &[OpStats]) -> bool {
        let spill: u64 = reduce_stats.iter().map(|s| s.io.bytes_written).sum();
        spill == self.reduce_spill_io.bytes_written
    }

    /// Render the report as JSONL: one `{"type":"task",...}` line per
    /// task span followed by a single `{"type":"job",...}` summary line
    /// embedding both phase profiles. Machine-readable counterpart of the
    /// tables the experiment binaries print.
    pub fn to_jsonl(&self) -> String {
        use onepass_core::json::{escape, fmt_f64};
        let mut out = String::new();
        for s in &self.task_spans {
            out.push_str(&format!(
                concat!(
                    "{{\"type\":\"task\",\"kind\":\"{}\",\"id\":{},\"attempt\":{},",
                    "\"start_s\":{},\"end_s\":{}}}\n"
                ),
                s.kind.label(),
                s.id,
                s.attempt,
                fmt_f64(s.start.as_secs_f64()),
                fmt_f64(s.end.as_secs_f64()),
            ));
        }
        out.push_str(&format!(
            concat!(
                "{{\"type\":\"job\",\"name\":\"{}\",\"backend\":\"{}\",\"wall_s\":{},",
                "\"map_tasks\":{},\"reduce_tasks\":{},",
                "\"input_records\":{},\"input_bytes\":{},",
                "\"map_output_records\":{},\"shuffled_records\":{},\"shuffled_bytes\":{},",
                "\"map_write_bytes\":{},\"reduce_spill_bytes_written\":{},",
                "\"reduce_spill_bytes_read\":{},\"groups_out\":{},\"early_emits\":{},",
                "\"snapshots\":{},\"first_early_s\":{},\"first_final_s\":{},",
                "\"map_attempts\":{},\"reduce_attempts\":{},\"failed_attempts\":{},",
                "\"speculative_launched\":{},\"speculative_wins\":{},",
                "\"mem_rebalances\":{},\"mem_sheds\":{},\"mem_shed_bytes\":{},",
                "\"mem_pool_high_water\":{},\"backpressure_stalls\":{},",
                "\"map_profile\":{},\"reduce_profile\":{}}}\n"
            ),
            escape(&self.name),
            escape(&self.backend),
            fmt_f64(self.wall.as_secs_f64()),
            self.map_tasks,
            self.reduce_tasks,
            self.input_records,
            self.input_bytes,
            self.map_output_records,
            self.shuffled_records,
            self.shuffled_bytes,
            self.map_write_io.bytes_written,
            self.reduce_spill_io.bytes_written,
            self.reduce_spill_io.bytes_read,
            self.groups_out,
            self.early_emits,
            self.snapshots,
            self.first_early_at
                .map_or_else(|| "null".into(), |d| fmt_f64(d.as_secs_f64())),
            self.first_final_at
                .map_or_else(|| "null".into(), |d| fmt_f64(d.as_secs_f64())),
            self.map_attempts,
            self.reduce_attempts,
            self.failed_attempts,
            self.speculative_launched,
            self.speculative_wins,
            self.mem_rebalances,
            self.mem_sheds,
            self.mem_shed_bytes,
            self.mem_pool_high_water,
            self.backpressure_stalls,
            self.map_profile.to_json(),
            self.reduce_profile.to_json(),
        ));
        out
    }
}

/// One stage's slice of a plan run.
#[derive(Debug)]
pub struct StageReport {
    /// Stage index within the plan.
    pub stage: usize,
    /// Stage (job) name.
    pub name: String,
    /// True when the stage has no downstream consumers: its output is
    /// part of the plan's answer.
    pub is_sink: bool,
    /// Malformed inter-stage records the stage's edge decoder skipped
    /// (within the configured threshold; more fail the stage).
    pub decode_errors: u64,
    /// The stage's job report. Task spans and output timestamps are
    /// measured against the *plan* clock, so `wall` is the offset from
    /// plan start to stage completion — not the stage's own duration.
    pub report: JobReport,
}

/// The result of running a [`Plan`](crate::plan::Plan) via
/// [`Engine::run_plan`](crate::Engine::run_plan).
#[derive(Debug)]
pub struct PlanReport {
    /// Execution mode label (`"pipelined"` or `"barrier"`).
    pub mode: &'static str,
    /// Wall-clock duration of the whole plan.
    pub wall: Duration,
    /// Earliest final emission of any *sink* stage, relative to plan
    /// start — the plan's time-to-first-answer.
    pub first_final_at: Option<Duration>,
    /// Per-stage reports, in stage-id order.
    pub stages: Vec<StageReport>,
}

impl PlanReport {
    /// The plan's answer: every sink stage's final `(key, value)` pairs,
    /// sorted. Emission order across reducers and stages is
    /// nondeterministic; sorting makes runs comparable.
    pub fn sorted_final_outputs(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = self
            .stages
            .iter()
            .filter(|s| s.is_sink)
            .flat_map(|s| {
                s.report
                    .outputs
                    .iter()
                    .filter(|o| o.kind == EmitKind::Final)
                    .map(|o| (o.key.clone(), o.value.clone()))
            })
            .collect();
        out.sort();
        out
    }

    /// Render as JSONL: one `{"type":"stage",...}` summary line per stage
    /// followed by a single `{"type":"plan",...}` line. For full per-task
    /// detail, render each stage's [`JobReport::to_jsonl`] too.
    pub fn to_jsonl(&self) -> String {
        use onepass_core::json::{escape, fmt_f64};
        let mut out = String::new();
        for s in &self.stages {
            out.push_str(&format!(
                concat!(
                    "{{\"type\":\"stage\",\"stage\":{},\"name\":\"{}\",\"sink\":{},",
                    "\"decode_errors\":{},\"backend\":\"{}\",\"wall_s\":{},",
                    "\"groups_out\":{},\"first_final_s\":{},",
                    "\"map_attempts\":{},\"reduce_attempts\":{},",
                    "\"failed_attempts\":{},\"speculative_launched\":{},",
                    "\"speculative_wins\":{}}}\n"
                ),
                s.stage,
                escape(&s.name),
                s.is_sink,
                s.decode_errors,
                escape(&s.report.backend),
                fmt_f64(s.report.wall.as_secs_f64()),
                s.report.groups_out,
                s.report
                    .first_final_at
                    .map_or_else(|| "null".into(), |d| fmt_f64(d.as_secs_f64())),
                s.report.map_attempts,
                s.report.reduce_attempts,
                s.report.failed_attempts,
                s.report.speculative_launched,
                s.report.speculative_wins,
            ));
        }
        out.push_str(&format!(
            concat!(
                "{{\"type\":\"plan\",\"mode\":\"{}\",\"stages\":{},\"wall_s\":{},",
                "\"first_final_s\":{}}}\n"
            ),
            self.mode,
            self.stages.len(),
            fmt_f64(self.wall.as_secs_f64()),
            self.first_final_at
                .map_or_else(|| "null".into(), |d| fmt_f64(d.as_secs_f64())),
        ));
        out
    }
}

/// Per-phase CPU busy time of one job, folded into the five buckets the
/// paper's cost analysis uses (§II-B): parse+map+combine, map-side sort,
/// spill write, reduce-side merge/group, and the final reduce+write.
///
/// [`Phase::Shuffle`] is deliberately excluded — in this engine it is
/// idle wait on the shuffle channel, not CPU, so including it would
/// inflate whichever side happens to block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Input parse + user map + combine + hash-partition time.
    pub map: Duration,
    /// Map-side sort on `(partition, key)` — zero on the hash paths.
    pub sort: Duration,
    /// Map-output / spill write time.
    pub spill: Duration,
    /// Reduce-side multi-pass merge (sort-merge) or bucket spill/reload
    /// plus grouping work (hash paths).
    pub merge: Duration,
    /// User reduce function + final output write.
    pub reduce: Duration,
}

impl PhaseBreakdown {
    /// Fold a finished job's map+reduce profiles into the five buckets.
    pub fn from_report(report: &JobReport) -> Self {
        let t = |phase: Phase| report.map_profile.time(phase) + report.reduce_profile.time(phase);
        PhaseBreakdown {
            map: t(Phase::Read) + t(Phase::MapFn) + t(Phase::Combine) + t(Phase::MapHash),
            sort: t(Phase::MapSort),
            spill: t(Phase::MapWrite),
            merge: t(Phase::Merge) + t(Phase::ReduceGroup),
            reduce: t(Phase::ReduceFn) + t(Phase::FinalWrite),
        }
    }

    /// Total CPU across the five buckets (excludes shuffle wait).
    pub fn total(&self) -> Duration {
        self.map + self.sort + self.spill + self.merge + self.reduce
    }

    /// Bucket labels, in the order [`Self::seconds`] reports them.
    pub fn labels() -> &'static [&'static str] {
        &["map", "sort", "spill", "merge", "reduce"]
    }

    /// Bucket values in seconds, in [`Self::labels`] order.
    pub fn seconds(&self) -> [f64; 5] {
        [
            self.map.as_secs_f64(),
            self.sort.as_secs_f64(),
            self.spill.as_secs_f64(),
            self.merge.as_secs_f64(),
            self.reduce.as_secs_f64(),
        ]
    }

    /// CSV column header matching [`Self::csv_row`].
    pub fn csv_header() -> &'static str {
        "map_s,sort_s,spill_s,merge_s,reduce_s,total_s"
    }

    /// Comma-separated bucket seconds plus the total.
    pub fn csv_row(&self) -> String {
        let s = self.seconds();
        format!(
            "{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
            s[0],
            s[1],
            s[2],
            s[3],
            s[4],
            self.total().as_secs_f64()
        )
    }

    /// One JSON object with bucket seconds and the total.
    pub fn to_json(&self) -> String {
        use onepass_core::json::fmt_f64;
        let s = self.seconds();
        format!(
            concat!(
                "{{\"map_s\":{},\"sort_s\":{},\"spill_s\":{},",
                "\"merge_s\":{},\"reduce_s\":{},\"total_s\":{}}}"
            ),
            fmt_f64(s[0]),
            fmt_f64(s[1]),
            fmt_f64(s[2]),
            fmt_f64(s[3]),
            fmt_f64(s[4]),
            fmt_f64(self.total().as_secs_f64())
        )
    }
}

pub(crate) fn add_io(acc: &mut IoStats, other: &IoStats) {
    acc.bytes_written += other.bytes_written;
    acc.bytes_read += other.bytes_read;
    acc.runs_created += other.runs_created;
    acc.runs_deleted += other.runs_deleted;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_totals() {
        let mut r = JobReport {
            input_bytes: 100,
            shuffled_bytes: 250,
            ..Default::default()
        };
        assert!((r.intermediate_ratio() - 2.5).abs() < 1e-9);
        r.input_bytes = 0;
        assert_eq!(r.intermediate_ratio(), 0.0);

        r.reduce_spill_io.bytes_written = 7;
        r.reduce_spill_io.bytes_read = 5;
        assert_eq!(r.reduce_spill_traffic(), 12);
    }

    #[test]
    fn jsonl_has_one_line_per_task_plus_summary() {
        use onepass_core::json::Json;
        let mut r = JobReport {
            name: "wordcount".into(),
            backend: "sort-merge".into(),
            wall: Duration::from_millis(1500),
            ..Default::default()
        };
        r.map_tasks = 2;
        r.reduce_tasks = 1;
        r.map_profile.add_time(Phase::MapFn, Duration::from_secs(1));
        r.task_spans = vec![
            TaskSpan {
                kind: TaskKind::Map,
                id: 0,
                attempt: 0,
                start: Duration::ZERO,
                end: Duration::from_millis(500),
            },
            TaskSpan {
                kind: TaskKind::Map,
                id: 1,
                attempt: 1,
                start: Duration::from_millis(100),
                end: Duration::from_millis(700),
            },
            TaskSpan {
                kind: TaskKind::Reduce,
                id: 0,
                attempt: 0,
                start: Duration::ZERO,
                end: Duration::from_millis(1500),
            },
        ];
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4, "3 tasks + 1 summary");
        for line in &lines[..3] {
            let doc = Json::parse(line).expect("valid task line");
            assert_eq!(doc.get("type").and_then(Json::as_str), Some("task"));
        }
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("attempt").and_then(Json::as_f64), Some(1.0));
        let summary = Json::parse(lines[3]).expect("valid summary line");
        assert_eq!(summary.get("type").and_then(Json::as_str), Some("job"));
        assert_eq!(summary.get("map_tasks").and_then(Json::as_f64), Some(2.0));
        assert_eq!(summary.get("wall_s").and_then(Json::as_f64), Some(1.5));
        assert!(summary.get("first_early_s").is_some_and(Json::is_null));
        assert_eq!(
            summary.get("mem_rebalances").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            summary.get("backpressure_stalls").and_then(Json::as_f64),
            Some(0.0)
        );
        assert!(summary
            .get("map_profile")
            .and_then(|p| p.get("phases"))
            .is_some());
    }

    #[test]
    fn plan_jsonl_and_sorted_outputs() {
        use onepass_core::json::Json;
        let out = |key: &[u8], value: &[u8], kind: EmitKind| JobOutput {
            key: key.to_vec(),
            value: value.to_vec(),
            kind,
            at: Duration::ZERO,
        };
        let report = PlanReport {
            mode: "pipelined",
            wall: Duration::from_millis(250),
            first_final_at: Some(Duration::from_millis(90)),
            stages: vec![
                StageReport {
                    stage: 0,
                    name: "count".into(),
                    is_sink: false,
                    decode_errors: 0,
                    report: JobReport {
                        // Interior finals must NOT appear in the plan's
                        // answer.
                        outputs: vec![out(b"x", b"1", EmitKind::Final)],
                        ..Default::default()
                    },
                },
                StageReport {
                    stage: 1,
                    name: "hist".into(),
                    is_sink: true,
                    decode_errors: 2,
                    report: JobReport {
                        outputs: vec![
                            out(b"b", b"2", EmitKind::Final),
                            out(b"a", b"9", EmitKind::Early),
                            out(b"a", b"1", EmitKind::Final),
                        ],
                        map_attempts: 5,
                        reduce_attempts: 2,
                        failed_attempts: 1,
                        speculative_launched: 2,
                        speculative_wins: 1,
                        ..Default::default()
                    },
                },
            ],
        };
        assert_eq!(
            report.sorted_final_outputs(),
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec()),
            ]
        );
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3, "2 stages + 1 plan line");
        let s1 = Json::parse(lines[1]).expect("valid stage line");
        assert_eq!(s1.get("type").and_then(Json::as_str), Some("stage"));
        assert_eq!(s1.get("decode_errors").and_then(Json::as_f64), Some(2.0));
        assert_eq!(s1.get("map_attempts").and_then(Json::as_f64), Some(5.0));
        assert_eq!(s1.get("reduce_attempts").and_then(Json::as_f64), Some(2.0));
        assert_eq!(s1.get("failed_attempts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            s1.get("speculative_launched").and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(s1.get("speculative_wins").and_then(Json::as_f64), Some(1.0));
        let plan = Json::parse(lines[2]).expect("valid plan line");
        assert_eq!(plan.get("mode").and_then(Json::as_str), Some("pipelined"));
        assert_eq!(plan.get("wall_s").and_then(Json::as_f64), Some(0.25));
        assert_eq!(plan.get("first_final_s").and_then(Json::as_f64), Some(0.09));
    }

    #[test]
    fn phase_breakdown_buckets_and_formats() {
        let mut r = JobReport::default();
        r.map_profile.add_time(Phase::Read, Duration::from_secs(1));
        r.map_profile.add_time(Phase::MapFn, Duration::from_secs(2));
        r.map_profile
            .add_time(Phase::MapSort, Duration::from_secs(4));
        r.map_profile
            .add_time(Phase::MapWrite, Duration::from_secs(1));
        r.map_profile
            .add_time(Phase::Shuffle, Duration::from_secs(9));
        r.reduce_profile
            .add_time(Phase::Merge, Duration::from_secs(3));
        r.reduce_profile
            .add_time(Phase::ReduceGroup, Duration::from_secs(1));
        r.reduce_profile
            .add_time(Phase::ReduceFn, Duration::from_secs(2));
        let b = PhaseBreakdown::from_report(&r);
        assert_eq!(b.map, Duration::from_secs(3));
        assert_eq!(b.sort, Duration::from_secs(4));
        assert_eq!(b.spill, Duration::from_secs(1));
        assert_eq!(b.merge, Duration::from_secs(4));
        assert_eq!(b.reduce, Duration::from_secs(2));
        // Shuffle wait is idle time, never CPU.
        assert_eq!(b.total(), Duration::from_secs(14));

        let row = b.csv_row();
        assert_eq!(row.split(',').count(), PhaseBreakdown::labels().len() + 1);
        assert!(row.starts_with("3.000000,4.000000,"));
        let doc = onepass_core::json::Json::parse(&b.to_json()).expect("valid json");
        use onepass_core::json::Json;
        assert_eq!(doc.get("sort_s").and_then(Json::as_f64), Some(4.0));
        assert_eq!(doc.get("total_s").and_then(Json::as_f64), Some(14.0));
    }

    #[test]
    fn cpu_excludes_shuffle_wait() {
        let mut r = JobReport::default();
        r.map_profile.add_time(Phase::MapFn, Duration::from_secs(2));
        r.reduce_profile
            .add_time(Phase::Shuffle, Duration::from_secs(3));
        r.reduce_profile
            .add_time(Phase::ReduceFn, Duration::from_secs(1));
        assert_eq!(r.total_cpu(), Duration::from_secs(6));
        assert_eq!(r.total_compute_cpu(), Duration::from_secs(3));
    }
}
