//! Job-wide in-memory dataset cache with partition-stable placement —
//! the M3R direction (arXiv:1208.4168).
//!
//! A [`DatasetCache`] holds named datasets as immutable, Arc-shared
//! [`SegmentBuf`] partitions. A dataset written with `P` partitions is
//! handed back with the same `P` partitions in the same order, which is
//! what lets an iterative [`Plan`](crate::plan::Plan) re-run its body
//! with round-stable partitioning: a cached partition becomes a
//! zero-copy map split (no input decode), and when the consumer stage
//! runs the same partition count, the in-proc shuffle short-circuits
//! entirely (each cached partition routes to its own reducer).
//!
//! Memory comes from a [`MemoryBudget`] lease — either a private limit
//! or a lease on the same [`MemoryGovernor`] pool live reducers draw
//! from. Under pressure the cache is an *evictable* tenant, never a
//! starving one: when a grant is denied, or when the governor's
//! [`SpillPolicy`](onepass_core::governor::SpillPolicy) picks the cache
//! as a shed victim, least-recently-used datasets are spilled to the
//! [`SpillStore`] (one run per partition, so partition boundaries
//! survive the round-trip) and transparently reloaded on next use.
//! Reducer escalations therefore reclaim cache memory instead of
//! spilling live hash tables.
//!
//! Observability: the cache exports `onepass_cache_resident_bytes` /
//! `onepass_cache_hits_total` through the metrics registry and emits a
//! `mem_cache_evict` trace instant per evicted dataset.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

use onepass_core::error::{Error, Result};
use onepass_core::governor::MemoryGovernor;
use onepass_core::io::{RunId, SharedMemStore, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_core::obs::{Counter, Gauge, MetricsRegistry};
use onepass_core::trace::{Tracer, Track};
use onepass_core::SegmentBuf;

/// Knobs for a [`DatasetCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Resident-byte limit when the cache owns a private budget
    /// (ignored when built over a governor lease). Default 256 MiB.
    pub limit_bytes: usize,
    /// Batch size when reloading a spilled partition. Default 4 MiB.
    pub reload_batch_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            limit_bytes: 256 << 20,
            reload_batch_bytes: 4 << 20,
        }
    }
}

/// One partition of a cached dataset: resident, or spilled to a run.
enum PartState {
    Resident(SegmentBuf),
    Spilled { id: RunId, bytes: usize },
}

struct Dataset {
    parts: Vec<PartState>,
    /// Bytes currently charged against the budget (resident parts only).
    resident_bytes: usize,
    /// LRU stamp — larger is more recent.
    last_use: u64,
}

impl Dataset {
    fn is_resident(&self) -> bool {
        self.parts
            .iter()
            .all(|p| matches!(p, PartState::Resident(_)))
    }
}

#[derive(Default)]
struct Inner {
    datasets: HashMap<String, Dataset>,
    clock: u64,
    hits: u64,
    evictions: u64,
    reloads: u64,
}

/// Counters a cache reports about itself (see module docs for the
/// metrics-registry names).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Dataset reads served (fully or partially) from memory.
    pub hits: u64,
    /// Datasets evicted (spilled) under memory pressure.
    pub evictions: u64,
    /// Spilled datasets reloaded into memory on access.
    pub reloads: u64,
    /// Bytes currently resident (charged against the budget).
    pub resident_bytes: usize,
}

/// A named-dataset cache with governor-arbitrated memory and
/// evict-to-spill under pressure. See the module docs.
pub struct DatasetCache {
    inner: Mutex<Inner>,
    budget: MemoryBudget,
    governor: Option<MemoryGovernor>,
    store: Arc<dyn SpillStore>,
    config: CacheConfig,
    tracer: Tracer,
    resident_gauge: Option<Gauge>,
    hits_counter: Option<Counter>,
}

impl std::fmt::Debug for DatasetCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("DatasetCache")
            .field("stats", &stats)
            .field("limit", &self.budget.limit())
            .finish()
    }
}

impl DatasetCache {
    /// A cache with a private byte budget and an in-memory spill store.
    pub fn new(config: CacheConfig) -> Self {
        let budget = MemoryBudget::new(config.limit_bytes);
        DatasetCache::build(budget, None, Arc::new(SharedMemStore::new()), config)
    }

    /// A cache leasing from `governor`'s shared pool — the cache
    /// competes with live reducers under the governor's spill policy,
    /// and evicts (rather than holding memory) when picked as a victim.
    pub fn with_governor(
        governor: &MemoryGovernor,
        store: Arc<dyn SpillStore>,
        config: CacheConfig,
    ) -> Self {
        let budget = governor.lease(0);
        DatasetCache::build(budget, Some(governor.clone()), store, config)
    }

    fn build(
        budget: MemoryBudget,
        governor: Option<MemoryGovernor>,
        store: Arc<dyn SpillStore>,
        config: CacheConfig,
    ) -> Self {
        DatasetCache {
            inner: Mutex::new(Inner::default()),
            budget,
            governor,
            store,
            config,
            tracer: Tracer::disabled(),
            resident_gauge: None,
            hits_counter: None,
        }
    }

    /// Export cache gauges/counters through `metrics`.
    pub fn attach_metrics(&mut self, metrics: &MetricsRegistry) {
        self.resident_gauge = Some(metrics.gauge("onepass_cache_resident_bytes", &[]));
        self.hits_counter = Some(metrics.counter("onepass_cache_hits_total", &[]));
    }

    /// Record eviction instants (`mem_cache_evict`) on `tracer`.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// The governor this cache leases from, if any — iterative runs
    /// reuse it so rounds and cache share one arbitration domain.
    pub fn governor(&self) -> Option<&MemoryGovernor> {
        self.governor.as_ref()
    }

    /// Store `partitions` under `name`, replacing any previous dataset.
    /// Partition count and order are preserved verbatim by [`get`]
    /// (partition-stable placement). Under memory pressure the dataset —
    /// or a colder one — is transparently spilled.
    ///
    /// [`get`]: DatasetCache::get
    pub fn put(&self, name: &str, partitions: Vec<SegmentBuf>) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        self.honor_shed_locked(&mut inner)?;
        self.remove_locked(&mut inner, name)?;
        let bytes: usize = partitions.iter().map(part_bytes).sum();
        let resident = self.charge_locked(&mut inner, bytes, Some(name));
        inner.clock += 1;
        let stamp = inner.clock;
        let parts = if resident {
            partitions.into_iter().map(PartState::Resident).collect()
        } else {
            // No headroom even after evicting everything colder: the new
            // dataset goes straight to the spill store.
            let mut parts = Vec::with_capacity(partitions.len());
            for seg in &partitions {
                parts.push(self.spill_partition(seg)?);
            }
            parts
        };
        inner.datasets.insert(
            name.to_string(),
            Dataset {
                parts,
                resident_bytes: if resident { bytes } else { 0 },
                last_use: stamp,
            },
        );
        self.publish_locked(&inner);
        Ok(())
    }

    /// Fetch dataset `name` as its original partitions, reloading
    /// spilled partitions from the store. Returns `None` if the name
    /// was never cached.
    pub fn get(&self, name: &str) -> Result<Option<Vec<SegmentBuf>>> {
        let mut inner = self.inner.lock().unwrap();
        self.honor_shed_locked(&mut inner)?;
        if !inner.datasets.contains_key(name) {
            return Ok(None);
        }
        inner.clock += 1;
        let stamp = inner.clock;
        let ds = inner.datasets.get_mut(name).unwrap();
        ds.last_use = stamp;
        let fully_resident = ds.is_resident();
        if fully_resident {
            inner.hits += 1;
            if let Some(c) = &self.hits_counter {
                c.inc(1);
            }
            let ds = &inner.datasets[name];
            let out = ds
                .parts
                .iter()
                .map(|p| match p {
                    PartState::Resident(seg) => seg.clone(),
                    PartState::Spilled { .. } => unreachable!(),
                })
                .collect();
            self.publish_locked(&inner);
            return Ok(Some(out));
        }

        // Reload spilled partitions. Try to re-admit the dataset as
        // resident (evicting colder ones if needed); if the budget still
        // refuses, hand the data back without keeping it resident.
        let spilled_bytes: usize = inner.datasets[name]
            .parts
            .iter()
            .map(|p| match p {
                PartState::Resident(_) => 0,
                PartState::Spilled { bytes, .. } => *bytes,
            })
            .sum();
        let readmit = self.charge_locked(&mut inner, spilled_bytes, Some(name));
        let ds = inner.datasets.get_mut(name).unwrap();
        let mut out = Vec::with_capacity(ds.parts.len());
        for part in ds.parts.iter_mut() {
            match part {
                PartState::Resident(seg) => out.push(seg.clone()),
                PartState::Spilled { id, bytes } => {
                    let seg = self.reload_partition(*id)?;
                    out.push(seg.clone());
                    if readmit {
                        self.store.delete_run(*id)?;
                        ds.resident_bytes += *bytes;
                        *part = PartState::Resident(seg);
                    }
                }
            }
        }
        inner.reloads += 1;
        self.publish_locked(&inner);
        Ok(Some(out))
    }

    /// Whether `name` is cached (resident or spilled).
    pub fn contains(&self, name: &str) -> bool {
        self.inner.lock().unwrap().datasets.contains_key(name)
    }

    /// Partition count of dataset `name`, if cached.
    pub fn partitions(&self, name: &str) -> Option<usize> {
        self.inner
            .lock()
            .unwrap()
            .datasets
            .get(name)
            .map(|d| d.parts.len())
    }

    /// Drop dataset `name`, releasing memory and spill runs.
    pub fn remove(&self, name: &str) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        self.remove_locked(&mut inner, name)?;
        self.publish_locked(&inner);
        Ok(())
    }

    /// Spill every resident dataset (e.g. before handing the pool to a
    /// memory-hungry phase). Data stays readable through [`get`].
    ///
    /// [`get`]: DatasetCache::get
    pub fn evict_all(&self) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let names: Vec<String> = inner.datasets.keys().cloned().collect();
        for name in names {
            self.evict_locked(&mut inner, &name)?;
        }
        self.publish_locked(&inner);
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            evictions: inner.evictions,
            reloads: inner.reloads,
            resident_bytes: inner.datasets.values().map(|d| d.resident_bytes).sum(),
        }
    }

    /// Order-independent fingerprint of dataset `name` (XOR-fold over
    /// partition fingerprints) — convergence checks compare rounds
    /// without materializing either side.
    pub fn fingerprint(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        let ds = inner.datasets.get(name)?;
        let mut fp = 0u64;
        for (i, part) in ds.parts.iter().enumerate() {
            if let PartState::Resident(seg) = part {
                fp ^= seg.unordered_fingerprint(i as u32);
            } else {
                return None; // spilled: caller should `get` instead
            }
        }
        Some(fp)
    }

    /// Charge `bytes` against the budget, evicting LRU datasets other
    /// than `keep` until the grant lands. Returns whether it did; on
    /// `false` nothing stays charged.
    fn charge_locked(&self, inner: &mut Inner, bytes: usize, keep: Option<&str>) -> bool {
        if bytes == 0 {
            return true;
        }
        loop {
            if self.budget.try_grant_or_request(bytes) {
                return true;
            }
            // Grant denied: shed our coldest dataset and retry. The
            // governor may have posted a shed request against us on the
            // way — honor it as part of the same sweep.
            let victim = self.coldest_resident(inner, keep);
            match victim {
                Some(name) => {
                    if self.evict_locked(inner, &name).is_err() {
                        return false;
                    }
                }
                None => return false,
            }
        }
    }

    /// If the governor asked this lease to shed, evict LRU datasets
    /// until the request is satisfied (or nothing resident remains).
    fn honor_shed_locked(&self, inner: &mut Inner) -> Result<()> {
        let mut owed = self.budget.take_shed_request();
        while owed > 0 {
            match self.coldest_resident(inner, None) {
                Some(name) => {
                    let freed = inner.datasets[&name].resident_bytes;
                    self.evict_locked(inner, &name)?;
                    owed = owed.saturating_sub(freed);
                }
                None => break,
            }
        }
        Ok(())
    }

    fn coldest_resident(&self, inner: &Inner, keep: Option<&str>) -> Option<String> {
        inner
            .datasets
            .iter()
            .filter(|(name, ds)| ds.resident_bytes > 0 && Some(name.as_str()) != keep)
            .min_by_key(|(_, ds)| ds.last_use)
            .map(|(name, _)| name.clone())
    }

    /// Spill every resident partition of `name`, releasing its charge.
    fn evict_locked(&self, inner: &mut Inner, name: &str) -> Result<()> {
        let ds = match inner.datasets.get_mut(name) {
            Some(ds) if ds.resident_bytes > 0 => ds,
            _ => return Ok(()),
        };
        let mut freed = 0usize;
        for part in ds.parts.iter_mut() {
            if let PartState::Resident(seg) = part {
                let spilled = self.spill_partition(seg)?;
                freed += part_bytes(seg);
                *part = spilled;
            }
        }
        ds.resident_bytes = 0;
        self.budget.release(freed);
        inner.evictions += 1;
        let mut lt = self.tracer.local(Track::new("cache", 0));
        lt.instant("mem_cache_evict", "mem", &[("bytes", freed as f64)]);
        Ok(())
    }

    fn spill_partition(&self, seg: &SegmentBuf) -> Result<PartState> {
        let mut w = self.store.begin_run()?;
        w.write_segment(seg)?;
        let meta = w.finish()?;
        Ok(PartState::Spilled {
            id: meta.id,
            bytes: part_bytes(seg),
        })
    }

    fn reload_partition(&self, id: RunId) -> Result<SegmentBuf> {
        let mut r = self.store.open_run(id)?;
        let mut segs: Vec<SegmentBuf> = Vec::new();
        while let Some(batch) = r.read_batch(self.config.reload_batch_bytes)? {
            segs.push(batch);
        }
        match segs.len() {
            0 => Ok(SegmentBuf::from_pairs(std::iter::empty())),
            1 => Ok(segs.pop().unwrap()),
            _ => {
                // Re-concatenate multi-batch reads into one partition.
                let mut b = onepass_core::SegmentBufBuilder::new();
                for seg in &segs {
                    for (k, v) in seg.iter() {
                        b.push(k, v);
                    }
                }
                Ok(b.finish())
            }
        }
    }

    fn remove_locked(&self, inner: &mut Inner, name: &str) -> Result<()> {
        if let Some(ds) = inner.datasets.remove(name) {
            self.budget.release(ds.resident_bytes);
            for part in &ds.parts {
                if let PartState::Spilled { id, .. } = part {
                    self.store.delete_run(*id)?;
                }
            }
        }
        Ok(())
    }

    fn publish_locked(&self, inner: &Inner) {
        let resident: usize = inner.datasets.values().map(|d| d.resident_bytes).sum();
        if let Some(g) = &self.resident_gauge {
            g.set(resident as f64);
        }
        // Tell spill policies how big one shedable unit is and how cold
        // we are, so ColdestKeys/LargestBucket-style policies can reason
        // about the cache the way they reason about reducer tables.
        let coldest = inner
            .datasets
            .values()
            .filter(|d| d.resident_bytes > 0)
            .map(|d| d.last_use)
            .min();
        if let Some(stamp) = coldest {
            self.budget.publish_heat(stamp);
        }
        let max_unit = inner
            .datasets
            .values()
            .map(|d| d.resident_bytes)
            .max()
            .unwrap_or(0);
        self.budget.publish_shed_unit(max_unit);
    }
}

impl Drop for DatasetCache {
    fn drop(&mut self) {
        let inner = self.inner.lock().unwrap();
        let resident: usize = inner.datasets.values().map(|d| d.resident_bytes).sum();
        self.budget.release(resident);
    }
}

fn part_bytes(seg: &SegmentBuf) -> usize {
    seg.payload_bytes() + seg.len() * std::mem::size_of::<onepass_core::bytes_kv::SegEntry>()
}

/// Partition `pairs` into `partitions` [`SegmentBuf`]s with `route`
/// (typically the consumer job's partitioner) — the canonical way to
/// build a partition-stable dataset out of a stage's finals.
pub fn partition_pairs<'a>(
    pairs: impl IntoIterator<Item = (&'a [u8], &'a [u8])>,
    partitions: usize,
    mut route: impl FnMut(&[u8]) -> usize,
) -> Result<Vec<SegmentBuf>> {
    if partitions == 0 {
        return Err(Error::Config("dataset needs at least one partition".into()));
    }
    let mut builders: Vec<onepass_core::SegmentBufBuilder> = (0..partitions)
        .map(|_| onepass_core::SegmentBufBuilder::new())
        .collect();
    for (k, v) in pairs {
        let p = route(k) % partitions;
        builders[p].push(k, v);
    }
    Ok(builders.into_iter().map(|b| b.finish()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepass_core::governor::{LargestConsumer, MemoryGovernor};
    use onepass_core::obs::MetricsRegistry;

    fn seg(tag: u8, n: usize) -> SegmentBuf {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|i| (vec![tag, i as u8], vec![i as u8; 16]))
            .collect();
        SegmentBuf::from_pairs(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())))
    }

    #[test]
    fn put_get_roundtrip_preserves_partitions() {
        let cache = DatasetCache::new(CacheConfig::default());
        cache.put("ranks", vec![seg(1, 4), seg(2, 7)]).unwrap();
        let got = cache.get("ranks").unwrap().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].len(), 4);
        assert_eq!(got[1].len(), 7);
        assert_eq!(got[1].key(3), &[2, 3]);
        assert_eq!(cache.stats().hits, 1);
        assert!(cache.get("absent").unwrap().is_none());
    }

    #[test]
    fn replace_updates_in_place() {
        let cache = DatasetCache::new(CacheConfig::default());
        cache.put("d", vec![seg(1, 2)]).unwrap();
        cache.put("d", vec![seg(9, 3), seg(8, 1)]).unwrap();
        let got = cache.get("d").unwrap().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].key(0), &[9, 0]);
    }

    #[test]
    fn pressure_evicts_lru_and_reloads_byte_identically() {
        // Budget fits roughly one dataset: the second put evicts the
        // first; a later get reloads it from spill, byte-identical.
        let big = seg(1, 200);
        let bytes = part_bytes(&big);
        let cache = DatasetCache::new(CacheConfig {
            limit_bytes: bytes + bytes / 2,
            ..Default::default()
        });
        cache.put("a", vec![big.clone()]).unwrap();
        cache.put("b", vec![seg(2, 200)]).unwrap();
        assert!(cache.stats().evictions >= 1);

        let a = cache.get("a").unwrap().unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].len(), big.len());
        for i in 0..big.len() {
            assert_eq!(a[0].get(i), big.get(i));
        }
        assert!(cache.stats().reloads >= 1);
    }

    #[test]
    fn governor_shed_request_is_honored() {
        let gov = MemoryGovernor::new(1 << 20, Arc::new(LargestConsumer), 0.9);
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let cache = DatasetCache::with_governor(&gov, store, CacheConfig::default());
        cache.put("hot", vec![seg(1, 100)]).unwrap();
        assert!(cache.stats().resident_bytes > 0);

        // A sibling lease requesting more than the pool's slack forces
        // the policy to pick the cache (largest consumer) as victim.
        let sibling = gov.lease(0);
        assert!(!sibling.try_grant_or_request(1 << 20));
        // Next cache touch honors the posted shed request.
        let _ = cache.get("hot").unwrap();
        assert!(cache.stats().evictions >= 1);
        // And the data still reads back.
        assert_eq!(cache.get("hot").unwrap().unwrap()[0].len(), 100);
    }

    #[test]
    fn metrics_export_resident_bytes_and_hits() {
        let m = MetricsRegistry::new();
        let mut cache = DatasetCache::new(CacheConfig::default());
        cache.attach_metrics(&m);
        cache.put("d", vec![seg(1, 10)]).unwrap();
        let _ = cache.get("d").unwrap();
        let snap = m.snapshot();
        let resident = snap
            .metrics
            .iter()
            .find(|s| s.name == "onepass_cache_resident_bytes")
            .expect("gauge exported");
        assert!(matches!(resident.value, onepass_core::obs::SampleValue::Gauge(v) if v > 0.0));
        let hits = snap
            .metrics
            .iter()
            .find(|s| s.name == "onepass_cache_hits_total")
            .expect("counter exported");
        assert!(
            matches!(hits.value, onepass_core::obs::SampleValue::Counter(v) if v == 1),
            "unexpected hits sample"
        );
    }

    #[test]
    fn partition_pairs_routes_stably() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> =
            (0..10u8).map(|i| (vec![i], vec![i, i])).collect();
        let parts = partition_pairs(
            pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
            3,
            |k| k[0] as usize,
        )
        .unwrap();
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 10);
        // key 4 -> partition 1.
        assert!(parts[1].iter().any(|(k, _)| k == [4u8]));
    }
}
