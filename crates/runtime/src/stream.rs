//! Streaming (one-pass) session API.
//!
//! The batch driver ([`Engine`](crate::Engine)) runs a job over a fixed
//! set of splits. `StreamSession` is the *data-arrives-over-time* entry
//! point the paper motivates: records are fed in batches as they arrive,
//! the map function and incremental reduce run immediately, and early
//! answers flow out of `feed` itself — "near real-time stream processing
//! that obviates the need for data loading and returns pipelined answers
//! as data arrives" (§IV).
//!
//! Only incremental backends make sense here, so the session rejects
//! blocking ones (sort-merge, hybrid hash) at construction: with those,
//! *no* answer can be produced until the stream closes, which defeats the
//! purpose (exactly Table III's point about Hadoop).

use std::sync::Arc;

use onepass_core::bytes_kv::KvBuf;
use onepass_core::error::{Error, Result};
use onepass_core::governor::MemoryGovernor;
use onepass_core::io::{SharedMemStore, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_groupby::{EmitKind, GroupBy, OpStats, Sink};

use crate::executor;
use crate::job::{JobSpec, MapEmitter};
use crate::plan::PairMap;

/// How a [`StreamSession`] sources its per-partition memory.
///
/// The default is the classic standalone mode: each partition owns a
/// private budget carved from the job's `reduce_budget_bytes`. Serving
/// many sessions side by side instead wants every session *leasing* from
/// one job-wide [`MemoryGovernor`] pool, so spill policies arbitrate
/// across sessions (tenants) the same way they arbitrate across reduce
/// partitions in the batch engine.
#[derive(Clone, Default)]
pub struct SessionOptions {
    /// Hash family for the session's groupers.
    pub hash_family: onepass_core::hashlib::HashFamily,
    /// When set, per-partition budgets are leases from this governor's
    /// pool instead of private budgets; shed requests the governor posts
    /// are serviced at feed-batch boundaries.
    pub governor: Option<MemoryGovernor>,
    /// Initial per-partition lease (or private budget) in bytes. Defaults
    /// to `job.reduce_budget_bytes / job.reducers`, floored at 1 KiB.
    pub lease_bytes: Option<usize>,
}

impl std::fmt::Debug for SessionOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionOptions")
            .field("hash_family", &self.hash_family)
            .field("governed", &self.governor.is_some())
            .field("lease_bytes", &self.lease_bytes)
            .finish()
    }
}

/// An early or final answer from the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamAnswer {
    /// Group key.
    pub key: Vec<u8>,
    /// Answer value.
    pub value: Vec<u8>,
    /// Early (produced mid-stream) or final (produced at close).
    pub kind: EmitKind,
}

/// A live one-pass analytics session.
///
/// ```
/// use std::sync::Arc;
/// use onepass_runtime::{JobSpec, ReduceBackend};
/// use onepass_runtime::job::identity_map;
/// use onepass_runtime::stream::StreamSession;
/// use onepass_groupby::{CountAgg, EmitKind};
/// use onepass_groupby::inc_hash::CountThreshold;
///
/// let job = JobSpec::builder("alerts")
///     .map_fn(Arc::new(identity_map))
///     .aggregate(Arc::new(CountAgg))
///     .reducers(2)
///     .backend(ReduceBackend::IncHash {
///         early: Some(Arc::new(CountThreshold(3))),
///     })
///     .build()
///     .unwrap();
/// let mut session = StreamSession::new(job).unwrap();
///
/// // Early answer fires mid-stream when "x" hits 3 occurrences.
/// let answers = session
///     .feed([b"x".as_slice(), b"y", b"x", b"x"])
///     .unwrap();
/// assert_eq!(answers.len(), 1);
/// assert_eq!(answers[0].key, b"x");
/// assert_eq!(answers[0].kind, EmitKind::Early);
///
/// let (finals, _stats) = session.close().unwrap();
/// assert_eq!(finals.iter().filter(|a| a.kind == EmitKind::Final).count(), 2);
/// ```
pub struct StreamSession {
    job: JobSpec,
    groupers: Vec<Box<dyn GroupBy>>,
    /// Clones of each grouper's budget, kept so governor-posted shed
    /// requests can be serviced at feed boundaries (the streaming
    /// analogue of the reduce task's batch-boundary governance).
    budgets: Vec<MemoryBudget>,
    records_in: u64,
    sheds: u64,
    shed_bytes: u64,
    closed: bool,
}

impl std::fmt::Debug for StreamSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("partitions", &self.groupers.len())
            .field("records_in", &self.records_in)
            .field("sheds", &self.sheds)
            .field("closed", &self.closed)
            .finish()
    }
}

struct CaptureSink<'a>(&'a mut Vec<StreamAnswer>);

impl Sink for CaptureSink<'_> {
    fn emit(&mut self, key: &[u8], value: &[u8], kind: EmitKind) {
        self.0.push(StreamAnswer {
            key: key.to_vec(),
            value: value.to_vec(),
            kind,
        });
    }
}

impl StreamSession {
    /// Open a session for `job`. The backend must be incremental
    /// ([`ReduceBackend::IncHash`](crate::job::ReduceBackend::IncHash) or
    /// [`ReduceBackend::FreqHash`](crate::job::ReduceBackend::FreqHash)).
    pub fn new(job: JobSpec) -> Result<Self> {
        Self::with_hash_family(job, onepass_core::hashlib::HashFamily::default())
    }

    /// [`StreamSession::new`] with an explicit hash family for the
    /// session's groupers (the streaming analogue of
    /// [`EngineConfigBuilder::hash_family`](crate::EngineConfigBuilder::hash_family)).
    pub fn with_hash_family(
        job: JobSpec,
        family: onepass_core::hashlib::HashFamily,
    ) -> Result<Self> {
        Self::with_options(
            job,
            SessionOptions {
                hash_family: family,
                ..SessionOptions::default()
            },
        )
    }

    /// Open a session with full [`SessionOptions`] — in particular, with
    /// per-partition budgets leased from a shared [`MemoryGovernor`] pool
    /// instead of private ones, so many concurrent sessions arbitrate one
    /// memory limit.
    pub fn with_options(job: JobSpec, opts: SessionOptions) -> Result<Self> {
        job.validate()?;
        let per_partition = opts
            .lease_bytes
            .unwrap_or(job.reduce_budget_bytes / job.reducers)
            .max(1024);
        let mut groupers: Vec<Box<dyn GroupBy>> = Vec::with_capacity(job.reducers);
        let mut budgets = Vec::with_capacity(job.reducers);
        for _ in 0..job.reducers {
            let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
            let budget = match &opts.governor {
                Some(gov) => gov.lease(per_partition),
                None => MemoryBudget::new(per_partition),
            };
            budgets.push(budget.clone());
            let agg = Arc::clone(&job.agg);
            // Grouper construction goes through the executor's shared
            // service, which rejects blocking backends with a config
            // error: with those, no answer can be produced until the
            // stream closes, defeating the purpose.
            groupers.push(executor::build_incremental_grouper(
                &job.backend,
                store,
                budget,
                agg,
                opts.hash_family,
            )?);
        }
        Ok(StreamSession {
            job,
            groupers,
            budgets,
            records_in: 0,
            sheds: 0,
            shed_bytes: 0,
            closed: false,
        })
    }

    /// Feed a batch of input records; returns any early answers the batch
    /// produced.
    pub fn feed<'r>(
        &mut self,
        records: impl IntoIterator<Item = &'r [u8]>,
    ) -> Result<Vec<StreamAnswer>> {
        if self.closed {
            return Err(Error::InvalidState("session is closed".into()));
        }
        let mut answers = Vec::new();
        // Collect map output into one arena first (borrow rules: the
        // emitter borrows self.job fields immutably, groupers are mutated
        // after). Each record is written into the arena exactly once; the
        // per-partition segments below are views over it.
        let mut buf = KvBuf::new();
        {
            struct RouteEmitter<'a> {
                partitioner: &'a dyn crate::job::Partitioner,
                reducers: usize,
                buf: &'a mut KvBuf,
            }
            impl MapEmitter for RouteEmitter<'_> {
                fn emit(&mut self, key: &[u8], value: &[u8]) {
                    let p = self.partitioner.partition(key, self.reducers) as u32;
                    self.buf.push(p, key, value);
                }
            }
            let mut emitter = RouteEmitter {
                partitioner: self.job.partitioner.as_ref(),
                reducers: self.groupers.len(),
                buf: &mut buf,
            };
            // Count into a local and commit after the whole batch maps:
            // a map panic (poison record) must leave the session exactly
            // as it was, including this counter, so the serving layer can
            // re-feed record-by-record without double counting.
            let mut mapped = 0u64;
            for rec in records {
                self.job.map_fn.map(rec, &mut emitter);
                mapped += 1;
            }
            self.records_in += mapped;
        }
        self.push_routed(buf, &mut answers)?;
        Ok(answers)
    }

    /// Feed already-decoded `(key, value)` pairs through `route` (a
    /// [`PairMap`], the inter-stage map of a [`Plan`](crate::Plan)),
    /// bypassing the job's own record map function. This is how a serving
    /// front-end cascades one session's finals into the next stage's
    /// session without re-encoding them as edge records.
    pub fn feed_pairs<'r>(
        &mut self,
        pairs: impl IntoIterator<Item = (&'r [u8], &'r [u8])>,
        route: &dyn PairMap,
    ) -> Result<Vec<StreamAnswer>> {
        if self.closed {
            return Err(Error::InvalidState("session is closed".into()));
        }
        let mut answers = Vec::new();
        let mut buf = KvBuf::new();
        {
            struct RouteEmitter<'a> {
                partitioner: &'a dyn crate::job::Partitioner,
                reducers: usize,
                buf: &'a mut KvBuf,
            }
            impl MapEmitter for RouteEmitter<'_> {
                fn emit(&mut self, key: &[u8], value: &[u8]) {
                    let p = self.partitioner.partition(key, self.reducers) as u32;
                    self.buf.push(p, key, value);
                }
            }
            let mut emitter = RouteEmitter {
                partitioner: self.job.partitioner.as_ref(),
                reducers: self.groupers.len(),
                buf: &mut buf,
            };
            let mut mapped = 0u64;
            for (k, v) in pairs {
                route.map_pair(k, v, &mut emitter);
                mapped += 1;
            }
            self.records_in += mapped;
        }
        self.push_routed(buf, &mut answers)?;
        Ok(answers)
    }

    /// Push a routed map-output buffer into the per-partition groupers,
    /// then service any shed requests the governor posted on this
    /// session's leases (mirrors the reduce task's segment-boundary
    /// governance, so a session under cross-tenant pressure spills
    /// through its operators' own correctness-neutral spill paths).
    fn push_routed(&mut self, mut buf: KvBuf, answers: &mut Vec<StreamAnswer>) -> Result<()> {
        let total = buf.len();
        let segments = buf.freeze_into_segments(self.groupers.len());
        // Partitions are independent: for large batches, push each
        // partition's records on its own thread (the reducer-side
        // parallelism of the batch engine, without leaving the streaming
        // API). Small batches stay on the caller's thread.
        const PARALLEL_THRESHOLD: usize = 4096;
        if total < PARALLEL_THRESHOLD || self.groupers.len() == 1 {
            let mut sink = CaptureSink(answers);
            for (p, seg) in segments.iter().enumerate() {
                self.groupers[p].push_batch(seg, &mut sink)?;
            }
            self.service_shed_requests()?;
            return Ok(());
        }

        let results: Vec<Result<Vec<StreamAnswer>>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (grouper, seg) in self.groupers.iter_mut().zip(segments) {
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut sink = CaptureSink(&mut local);
                    grouper.push_batch(&seg, &mut sink)?;
                    Ok(local)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("stream worker panicked"))
                .collect()
        })
        .expect("stream scope panicked");
        for r in results {
            answers.extend(r?);
        }
        self.service_shed_requests()
    }

    /// Check every partition lease for a governor-posted shed request and
    /// service it through the grouper's spill path. No-op for private
    /// (non-leased) budgets — those never carry requests.
    fn service_shed_requests(&mut self) -> Result<()> {
        for (g, b) in self.groupers.iter_mut().zip(&self.budgets) {
            let want = b.take_shed_request();
            if want > 0 {
                let freed = g.shed(want)?;
                self.sheds += 1;
                self.shed_bytes += freed as u64;
            }
        }
        Ok(())
    }

    /// Records fed so far.
    pub fn records_in(&self) -> u64 {
        self.records_in
    }

    /// Governor-requested sheds serviced so far, and the bytes they freed.
    pub fn shed_stats(&self) -> (u64, u64) {
        (self.sheds, self.shed_bytes)
    }

    /// Sum of this session's per-partition budget limits (lease sizes in
    /// governed mode).
    pub fn budget_bytes(&self) -> usize {
        self.budgets.iter().map(|b| b.limit()).sum()
    }

    /// Close the stream: flush every group's final answer plus per-
    /// partition operator statistics.
    pub fn close(mut self) -> Result<(Vec<StreamAnswer>, Vec<OpStats>)> {
        self.closed = true;
        let mut answers = Vec::new();
        let mut stats = Vec::new();
        for g in &mut self.groupers {
            let mut sink = CaptureSink(&mut answers);
            stats.push(g.finish(&mut sink)?);
        }
        Ok((answers, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ReduceBackend;
    use onepass_groupby::inc_hash::CountThreshold;
    use onepass_groupby::CountAgg;

    fn session(backend: ReduceBackend) -> StreamSession {
        let job = JobSpec::builder("stream")
            .map_fn(Arc::new(crate::job::identity_map))
            .aggregate(Arc::new(CountAgg))
            .reducers(2)
            .backend(backend)
            .build()
            .unwrap();
        StreamSession::new(job).unwrap()
    }

    #[test]
    fn early_answers_flow_mid_stream() {
        let mut s = session(ReduceBackend::IncHash {
            early: Some(Arc::new(CountThreshold(3))),
        });
        let batch1: Vec<&[u8]> = vec![b"x", b"y", b"x"];
        assert!(
            s.feed(batch1).unwrap().is_empty(),
            "no threshold crossed yet"
        );
        let batch2: Vec<&[u8]> = vec![b"x", b"z"];
        let answers = s.feed(batch2).unwrap();
        assert_eq!(answers.len(), 1, "x crossed the threshold");
        assert_eq!(answers[0].key, b"x");
        assert_eq!(answers[0].kind, EmitKind::Early);
        let (finals, _) = s.close().unwrap();
        let finals: Vec<_> = finals
            .iter()
            .filter(|a| a.kind == EmitKind::Final)
            .collect();
        assert_eq!(finals.len(), 3, "x, y, z all appear at close");
    }

    #[test]
    fn blocking_backends_are_rejected() {
        let job = JobSpec::builder("stream").build().unwrap(); // sort-merge default
        let err = StreamSession::new(job);
        assert!(matches!(err, Err(Error::Config(_))));
    }

    #[test]
    fn feed_after_close_fails() {
        let s = session(ReduceBackend::FreqHash(Default::default()));
        let (_, stats) = s.close().unwrap();
        assert_eq!(stats.len(), 2);

        let mut s = session(ReduceBackend::IncHash { early: None });
        let b: Vec<&[u8]> = vec![b"a"];
        s.feed(b).unwrap();
        assert_eq!(s.records_in(), 1);
    }

    #[test]
    fn large_batches_take_the_parallel_path_and_stay_exact() {
        let job = JobSpec::builder("stream")
            .map_fn(Arc::new(crate::job::identity_map))
            .aggregate(Arc::new(CountAgg))
            .reducers(4)
            .backend(ReduceBackend::IncHash { early: None })
            .build()
            .unwrap();
        let mut s = StreamSession::new(job).unwrap();
        // One batch well above the parallel threshold.
        let keys: Vec<Vec<u8>> = (0..20_000u32)
            .map(|i| format!("k{}", i % 257).into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        s.feed(refs).unwrap();
        let (answers, _) = s.close().unwrap();
        let total: u64 = answers
            .iter()
            .filter(|a| a.kind == EmitKind::Final)
            .map(|a| u64::from_le_bytes(a.value.as_slice().try_into().unwrap()))
            .sum();
        assert_eq!(total, 20_000);
        let groups = answers.iter().filter(|a| a.kind == EmitKind::Final).count();
        assert_eq!(groups, 257);
    }

    #[test]
    fn governed_sessions_share_one_pool_and_service_sheds() {
        use onepass_core::governor::{policy_by_name, MemoryGovernor};

        // Two sessions lease from one tiny pool; pushing skewed keys
        // through both must trigger governor shed requests which the
        // sessions service at feed boundaries — and the final counts stay
        // exact regardless.
        let gov = MemoryGovernor::new(64 * 1024, policy_by_name("largest-consumer").unwrap(), 0.5);
        let mk = || {
            let job = JobSpec::builder("gov-stream")
                .map_fn(Arc::new(crate::job::identity_map))
                .aggregate(Arc::new(CountAgg))
                .reducers(1)
                .backend(ReduceBackend::IncHash { early: None })
                .build()
                .unwrap();
            StreamSession::with_options(
                job,
                SessionOptions {
                    governor: Some(gov.clone()),
                    lease_bytes: Some(8 * 1024),
                    ..SessionOptions::default()
                },
            )
            .unwrap()
        };
        let mut a = mk();
        let mut b = mk();
        assert_eq!(gov.live_leases(), 2);
        let keys: Vec<Vec<u8>> = (0..4000u32)
            .map(|i| format!("key-{i:05}").into_bytes())
            .collect();
        for chunk in keys.chunks(500) {
            let refs: Vec<&[u8]> = chunk.iter().map(|k| k.as_slice()).collect();
            a.feed(refs.clone()).unwrap();
            b.feed(refs).unwrap();
        }
        let count = |s: StreamSession| {
            let (answers, _) = s.close().unwrap();
            answers.iter().filter(|x| x.kind == EmitKind::Final).count()
        };
        assert_eq!(count(a), 4000);
        assert_eq!(count(b), 4000);
    }

    #[test]
    fn feed_pairs_routes_through_the_pair_map() {
        let job = JobSpec::builder("pairs")
            .map_fn(Arc::new(crate::job::identity_map))
            .aggregate(Arc::new(onepass_groupby::SumAgg))
            .reducers(2)
            .backend(ReduceBackend::IncHash { early: None })
            .build()
            .unwrap();
        let mut s = StreamSession::new(job).unwrap();
        // Route (key, count-le) pairs into a single bucket keyed by count
        // parity, summing counts.
        let route = |_k: &[u8], v: &[u8], out: &mut dyn MapEmitter| {
            let n = u64::from_le_bytes(v.try_into().unwrap());
            let bucket = if n % 2 == 0 { b"even" } else { b"odd\0" };
            out.emit(bucket, v);
        };
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (1..=4u64)
            .map(|n| (format!("k{n}").into_bytes(), n.to_le_bytes().to_vec()))
            .collect();
        s.feed_pairs(
            pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
            &route,
        )
        .unwrap();
        let (answers, _) = s.close().unwrap();
        let mut sums = std::collections::BTreeMap::new();
        for a in answers.iter().filter(|a| a.kind == EmitKind::Final) {
            sums.insert(
                a.key.clone(),
                u64::from_le_bytes(a.value.as_slice().try_into().unwrap()),
            );
        }
        assert_eq!(sums[b"even".as_slice()], 6); // 2 + 4
        assert_eq!(sums[b"odd\0".as_slice()], 4); // 1 + 3
    }

    #[test]
    fn counts_are_exact_across_partitions() {
        let mut s = session(ReduceBackend::FreqHash(Default::default()));
        for i in 0..50u32 {
            let key = format!("k{}", i % 7);
            let batch: Vec<&[u8]> = vec![key.as_bytes()];
            s.feed(batch).unwrap();
        }
        let (answers, _) = s.close().unwrap();
        let total: u64 = answers
            .iter()
            .filter(|a| a.kind == EmitKind::Final)
            .map(|a| u64::from_le_bytes(a.value.as_slice().try_into().unwrap()))
            .sum();
        assert_eq!(total, 50);
    }
}
