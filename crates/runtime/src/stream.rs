//! Streaming (one-pass) session API.
//!
//! The batch driver ([`Engine`](crate::Engine)) runs a job over a fixed
//! set of splits. `StreamSession` is the *data-arrives-over-time* entry
//! point the paper motivates: records are fed in batches as they arrive,
//! the map function and incremental reduce run immediately, and early
//! answers flow out of `feed` itself — "near real-time stream processing
//! that obviates the need for data loading and returns pipelined answers
//! as data arrives" (§IV).
//!
//! Only incremental backends make sense here, so the session rejects
//! blocking ones (sort-merge, hybrid hash) at construction: with those,
//! *no* answer can be produced until the stream closes, which defeats the
//! purpose (exactly Table III's point about Hadoop).

use std::sync::Arc;

use onepass_core::bytes_kv::KvBuf;
use onepass_core::error::{Error, Result};
use onepass_core::io::{SharedMemStore, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_groupby::{EmitKind, GroupBy, OpStats, Sink};

use crate::executor;
use crate::job::{JobSpec, MapEmitter};

/// An early or final answer from the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamAnswer {
    /// Group key.
    pub key: Vec<u8>,
    /// Answer value.
    pub value: Vec<u8>,
    /// Early (produced mid-stream) or final (produced at close).
    pub kind: EmitKind,
}

/// A live one-pass analytics session.
///
/// ```
/// use std::sync::Arc;
/// use onepass_runtime::{JobSpec, ReduceBackend};
/// use onepass_runtime::job::identity_map;
/// use onepass_runtime::stream::StreamSession;
/// use onepass_groupby::{CountAgg, EmitKind};
/// use onepass_groupby::inc_hash::CountThreshold;
///
/// let job = JobSpec::builder("alerts")
///     .map_fn(Arc::new(identity_map))
///     .aggregate(Arc::new(CountAgg))
///     .reducers(2)
///     .backend(ReduceBackend::IncHash {
///         early: Some(Arc::new(CountThreshold(3))),
///     })
///     .build()
///     .unwrap();
/// let mut session = StreamSession::new(job).unwrap();
///
/// // Early answer fires mid-stream when "x" hits 3 occurrences.
/// let answers = session
///     .feed([b"x".as_slice(), b"y", b"x", b"x"])
///     .unwrap();
/// assert_eq!(answers.len(), 1);
/// assert_eq!(answers[0].key, b"x");
/// assert_eq!(answers[0].kind, EmitKind::Early);
///
/// let (finals, _stats) = session.close().unwrap();
/// assert_eq!(finals.iter().filter(|a| a.kind == EmitKind::Final).count(), 2);
/// ```
pub struct StreamSession {
    job: JobSpec,
    groupers: Vec<Box<dyn GroupBy>>,
    records_in: u64,
    closed: bool,
}

impl std::fmt::Debug for StreamSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("partitions", &self.groupers.len())
            .field("records_in", &self.records_in)
            .field("closed", &self.closed)
            .finish()
    }
}

struct CaptureSink<'a>(&'a mut Vec<StreamAnswer>);

impl Sink for CaptureSink<'_> {
    fn emit(&mut self, key: &[u8], value: &[u8], kind: EmitKind) {
        self.0.push(StreamAnswer {
            key: key.to_vec(),
            value: value.to_vec(),
            kind,
        });
    }
}

impl StreamSession {
    /// Open a session for `job`. The backend must be incremental
    /// ([`ReduceBackend::IncHash`](crate::job::ReduceBackend::IncHash) or
    /// [`ReduceBackend::FreqHash`](crate::job::ReduceBackend::FreqHash)).
    pub fn new(job: JobSpec) -> Result<Self> {
        Self::with_hash_family(job, onepass_core::hashlib::HashFamily::default())
    }

    /// [`StreamSession::new`] with an explicit hash family for the
    /// session's groupers (the streaming analogue of
    /// [`EngineConfigBuilder::hash_family`](crate::EngineConfigBuilder::hash_family)).
    pub fn with_hash_family(
        job: JobSpec,
        family: onepass_core::hashlib::HashFamily,
    ) -> Result<Self> {
        job.validate()?;
        let per_partition_budget = (job.reduce_budget_bytes / job.reducers).max(1024);
        let mut groupers: Vec<Box<dyn GroupBy>> = Vec::with_capacity(job.reducers);
        for _ in 0..job.reducers {
            let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
            let budget = MemoryBudget::new(per_partition_budget);
            let agg = Arc::clone(&job.agg);
            // Grouper construction goes through the executor's shared
            // service, which rejects blocking backends with a config
            // error: with those, no answer can be produced until the
            // stream closes, defeating the purpose.
            groupers.push(executor::build_incremental_grouper(
                &job.backend,
                store,
                budget,
                agg,
                family,
            )?);
        }
        Ok(StreamSession {
            job,
            groupers,
            records_in: 0,
            closed: false,
        })
    }

    /// Feed a batch of input records; returns any early answers the batch
    /// produced.
    pub fn feed<'r>(
        &mut self,
        records: impl IntoIterator<Item = &'r [u8]>,
    ) -> Result<Vec<StreamAnswer>> {
        if self.closed {
            return Err(Error::InvalidState("session is closed".into()));
        }
        let mut answers = Vec::new();
        // Collect map output into one arena first (borrow rules: the
        // emitter borrows self.job fields immutably, groupers are mutated
        // after). Each record is written into the arena exactly once; the
        // per-partition segments below are views over it.
        let mut buf = KvBuf::new();
        {
            struct RouteEmitter<'a> {
                partitioner: &'a dyn crate::job::Partitioner,
                reducers: usize,
                buf: &'a mut KvBuf,
            }
            impl MapEmitter for RouteEmitter<'_> {
                fn emit(&mut self, key: &[u8], value: &[u8]) {
                    let p = self.partitioner.partition(key, self.reducers) as u32;
                    self.buf.push(p, key, value);
                }
            }
            let mut emitter = RouteEmitter {
                partitioner: self.job.partitioner.as_ref(),
                reducers: self.groupers.len(),
                buf: &mut buf,
            };
            for rec in records {
                self.records_in += 1;
                self.job.map_fn.map(rec, &mut emitter);
            }
        }
        let total = buf.len();
        let segments = buf.freeze_into_segments(self.groupers.len());
        // Partitions are independent: for large batches, push each
        // partition's records on its own thread (the reducer-side
        // parallelism of the batch engine, without leaving the streaming
        // API). Small batches stay on the caller's thread.
        const PARALLEL_THRESHOLD: usize = 4096;
        if total < PARALLEL_THRESHOLD || self.groupers.len() == 1 {
            let mut sink = CaptureSink(&mut answers);
            for (p, seg) in segments.iter().enumerate() {
                self.groupers[p].push_batch(seg, &mut sink)?;
            }
            return Ok(answers);
        }

        let results: Vec<Result<Vec<StreamAnswer>>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (grouper, seg) in self.groupers.iter_mut().zip(segments) {
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut sink = CaptureSink(&mut local);
                    grouper.push_batch(&seg, &mut sink)?;
                    Ok(local)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("stream worker panicked"))
                .collect()
        })
        .expect("stream scope panicked");
        for r in results {
            answers.extend(r?);
        }
        Ok(answers)
    }

    /// Records fed so far.
    pub fn records_in(&self) -> u64 {
        self.records_in
    }

    /// Close the stream: flush every group's final answer plus per-
    /// partition operator statistics.
    pub fn close(mut self) -> Result<(Vec<StreamAnswer>, Vec<OpStats>)> {
        self.closed = true;
        let mut answers = Vec::new();
        let mut stats = Vec::new();
        for g in &mut self.groupers {
            let mut sink = CaptureSink(&mut answers);
            stats.push(g.finish(&mut sink)?);
        }
        Ok((answers, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ReduceBackend;
    use onepass_groupby::inc_hash::CountThreshold;
    use onepass_groupby::CountAgg;

    fn session(backend: ReduceBackend) -> StreamSession {
        let job = JobSpec::builder("stream")
            .map_fn(Arc::new(crate::job::identity_map))
            .aggregate(Arc::new(CountAgg))
            .reducers(2)
            .backend(backend)
            .build()
            .unwrap();
        StreamSession::new(job).unwrap()
    }

    #[test]
    fn early_answers_flow_mid_stream() {
        let mut s = session(ReduceBackend::IncHash {
            early: Some(Arc::new(CountThreshold(3))),
        });
        let batch1: Vec<&[u8]> = vec![b"x", b"y", b"x"];
        assert!(
            s.feed(batch1).unwrap().is_empty(),
            "no threshold crossed yet"
        );
        let batch2: Vec<&[u8]> = vec![b"x", b"z"];
        let answers = s.feed(batch2).unwrap();
        assert_eq!(answers.len(), 1, "x crossed the threshold");
        assert_eq!(answers[0].key, b"x");
        assert_eq!(answers[0].kind, EmitKind::Early);
        let (finals, _) = s.close().unwrap();
        let finals: Vec<_> = finals
            .iter()
            .filter(|a| a.kind == EmitKind::Final)
            .collect();
        assert_eq!(finals.len(), 3, "x, y, z all appear at close");
    }

    #[test]
    fn blocking_backends_are_rejected() {
        let job = JobSpec::builder("stream").build().unwrap(); // sort-merge default
        let err = StreamSession::new(job);
        assert!(matches!(err, Err(Error::Config(_))));
    }

    #[test]
    fn feed_after_close_fails() {
        let s = session(ReduceBackend::FreqHash(Default::default()));
        let (_, stats) = s.close().unwrap();
        assert_eq!(stats.len(), 2);

        let mut s = session(ReduceBackend::IncHash { early: None });
        let b: Vec<&[u8]> = vec![b"a"];
        s.feed(b).unwrap();
        assert_eq!(s.records_in(), 1);
    }

    #[test]
    fn large_batches_take_the_parallel_path_and_stay_exact() {
        let job = JobSpec::builder("stream")
            .map_fn(Arc::new(crate::job::identity_map))
            .aggregate(Arc::new(CountAgg))
            .reducers(4)
            .backend(ReduceBackend::IncHash { early: None })
            .build()
            .unwrap();
        let mut s = StreamSession::new(job).unwrap();
        // One batch well above the parallel threshold.
        let keys: Vec<Vec<u8>> = (0..20_000u32)
            .map(|i| format!("k{}", i % 257).into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        s.feed(refs).unwrap();
        let (answers, _) = s.close().unwrap();
        let total: u64 = answers
            .iter()
            .filter(|a| a.kind == EmitKind::Final)
            .map(|a| u64::from_le_bytes(a.value.as_slice().try_into().unwrap()))
            .sum();
        assert_eq!(total, 20_000);
        let groups = answers.iter().filter(|a| a.kind == EmitKind::Final).count();
        assert_eq!(groups, 257);
    }

    #[test]
    fn counts_are_exact_across_partitions() {
        let mut s = session(ReduceBackend::FreqHash(Default::default()));
        for i in 0..50u32 {
            let key = format!("k{}", i % 7);
            let batch: Vec<&[u8]> = vec![key.as_bytes()];
            s.feed(batch).unwrap();
        }
        let (answers, _) = s.close().unwrap();
        let total: u64 = answers
            .iter()
            .filter(|a| a.kind == EmitKind::Final)
            .map(|a| u64::from_le_bytes(a.value.as_slice().try_into().unwrap()))
            .sum();
        assert_eq!(total, 50);
    }
}
