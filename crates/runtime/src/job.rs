//! Job specification: the MapReduce programming model plus the execution
//! knobs the paper studies.

use std::sync::Arc;

use onepass_core::config::{DEFAULT_MERGE_FACTOR, MIB};
use onepass_core::error::{Error, Result};
use onepass_core::hashlib::{FamilyHasher, HashFamily, KeyHasher, SeededFamily};
use onepass_groupby::freq_hash::FreqHashConfig;
use onepass_groupby::inc_hash::EarlyEmit;
use onepass_groupby::Aggregator;

/// Receives the key/value pairs a map function emits.
pub trait MapEmitter {
    /// Emit one intermediate pair.
    fn emit(&mut self, key: &[u8], value: &[u8]);
}

/// The user map function: transforms one input record into intermediate
/// key/value pairs (§II: "the map function transforms input data into
/// (key, value) pairs").
pub trait MapFn: Send + Sync {
    /// Process one input record.
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter);

    /// Process one already-decoded `(key, value)` input pair — the
    /// zero-copy path for cached splits, whose data is stored framed.
    /// The default re-frames the pair through the edge codec and calls
    /// [`map`](MapFn::map), so record-oriented maps behave identically
    /// on cached input; pair-aware maps (plan interior stages) override
    /// it to skip the encode/decode round-trip.
    fn map_pair(&self, key: &[u8], value: &[u8], out: &mut dyn MapEmitter) {
        self.map(&crate::codec::encode_pair(key, value), out);
    }
}

/// Blanket adapter so closures can serve as map functions.
impl<F> MapFn for F
where
    F: Fn(&[u8], &mut dyn MapEmitter) + Send + Sync,
{
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        self(record, out)
    }
}

/// Assigns intermediate keys to reducer partitions.
pub trait Partitioner: Send + Sync {
    /// Partition index in `0..reducers` for `key`.
    fn partition(&self, key: &[u8], reducers: usize) -> usize;

    /// Partition a key whose [`onepass_core::hashlib::fingerprint`] is
    /// already in hand. Must agree with [`Partitioner::partition`] for
    /// every key; hash partitioners route straight from `fp` so callers
    /// that fingerprint anyway (the in-node combiner's fold) pay for one
    /// fingerprint per record, not two. The default ignores `fp`.
    fn partition_fp(&self, fp: u64, key: &[u8], reducers: usize) -> usize {
        let _ = fp;
        self.partition(key, reducers)
    }
}

/// Default hash partitioner.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    hasher: FamilyHasher,
}

impl HashPartitioner {
    /// Partitioner drawing its hash function from `family` (the engine's
    /// configured [`HashFamily`]).
    pub fn with_family(family: HashFamily) -> Self {
        // A family member distinct from those used inside the group-by
        // operators, so partition and bucket decisions are independent.
        HashPartitioner {
            hasher: SeededFamily::of(family).member(7_777_777),
        }
    }
}

impl Default for HashPartitioner {
    fn default() -> Self {
        Self::with_family(HashFamily::default())
    }
}

impl Partitioner for HashPartitioner {
    fn partition(&self, key: &[u8], reducers: usize) -> usize {
        self.hasher.bucket(key, reducers)
    }

    fn partition_fp(&self, fp: u64, _key: &[u8], reducers: usize) -> usize {
        self.hasher.bucket_fp(fp, reducers)
    }
}

/// Whether map tasks apply the combine function before shuffling.
///
/// Replaces the old `combine: bool` knob: `Combine::On` reads at the call
/// site as "combine on", not as an anonymous boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Combine {
    /// Apply the combine function map-side when the aggregate allows it.
    #[default]
    On,
    /// Ship raw records; all grouping happens reduce-side.
    Off,
}

impl Combine {
    /// True when combining is enabled.
    pub fn is_on(self) -> bool {
        matches!(self, Combine::On)
    }
}

/// Whether final/early output pairs are collected into the report.
///
/// Replaces the old `collect_output: bool` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectOutput {
    /// Keep the output pairs in [`crate::report::JobReport::outputs`].
    #[default]
    Collect,
    /// Drop pairs after counting them — for large-output benchmarks where
    /// only statistics matter.
    Discard,
}

impl CollectOutput {
    /// True when output pairs are retained.
    pub fn is_collect(self) -> bool {
        matches!(self, CollectOutput::Collect)
    }
}

/// How a map task turns its output buffer into shuffle segments — the
/// choice §V's map module offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapSideMode {
    /// Hadoop: sort the buffer on `(partition, key)`; segments arrive at
    /// reducers sorted by key. Applies the combine function to each
    /// key-streak when the job has one.
    SortSpill,
    /// §V map option 1: "the map output is scanned once for partitioning,
    /// and no effort is spent for grouping." No sort, no combine.
    HashPartitionOnly,
    /// §V map option 2: in-memory hash combine per partition ("in most
    /// cases the map output fits in memory so Hybrid Hash is simply
    /// in-memory hashing"). Requires a combinable aggregate.
    HashCombine,
}

/// How map output reaches the reducers (§IV-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleMode {
    /// Hadoop: reducers receive a completed map task's output only after
    /// the task finishes (and its output is persisted).
    Pull,
    /// MapReduce Online / the proposed system: mappers push output
    /// eagerly, in `granularity`-record batches, while still running.
    Push {
        /// Records per pipelined batch.
        granularity: usize,
    },
}

/// The reduce-side group-by implementation (Table III's "Group By" row).
#[derive(Clone)]
pub enum ReduceBackend {
    /// Hadoop: buffer sorted segments, spill merged runs, multi-pass merge
    /// with factor F, blocking final merge. `snapshots` adds MapReduce
    /// Online behaviour: emit approximate answers when those fractions of
    /// map tasks have delivered (each snapshot re-reads all data — the
    /// "significant I/O overhead" of §III-D).
    SortMerge {
        /// Multi-pass merge factor F.
        merge_factor: usize,
        /// Map-completion fractions at which to emit snapshot answers.
        snapshots: Vec<f64>,
    },
    /// §V technique 1: hybrid hash with the given bucket fanout.
    HybridHash {
        /// Bucket fanout per recursion level.
        fanout: usize,
    },
    /// §V technique 2: incremental hash; optional early-emit policy.
    IncHash {
        /// Early-emission policy applied after each state update.
        early: Option<Arc<dyn EarlyEmit>>,
    },
    /// §V technique 3: incremental hash + frequent-key residency.
    FreqHash(FreqHashConfig),
}

impl std::fmt::Debug for ReduceBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceBackend::SortMerge {
                merge_factor,
                snapshots,
            } => f
                .debug_struct("SortMerge")
                .field("merge_factor", merge_factor)
                .field("snapshots", snapshots)
                .finish(),
            ReduceBackend::HybridHash { fanout } => f
                .debug_struct("HybridHash")
                .field("fanout", fanout)
                .finish(),
            ReduceBackend::IncHash { early } => f
                .debug_struct("IncHash")
                .field("early", &early.is_some())
                .finish(),
            ReduceBackend::FreqHash(c) => f.debug_tuple("FreqHash").field(c).finish(),
        }
    }
}

impl ReduceBackend {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ReduceBackend::SortMerge { snapshots, .. } if snapshots.is_empty() => "sort-merge",
            ReduceBackend::SortMerge { .. } => "sort-merge+snapshots (HOP)",
            ReduceBackend::HybridHash { .. } => "hybrid-hash",
            ReduceBackend::IncHash { .. } => "incremental-hash",
            ReduceBackend::FreqHash(_) => "frequent-hash",
        }
    }

    /// Does this backend produce incremental (early) output?
    pub fn incremental(&self) -> bool {
        match self {
            ReduceBackend::SortMerge { .. } | ReduceBackend::HybridHash { .. } => false,
            ReduceBackend::IncHash { early } => early.is_some(),
            ReduceBackend::FreqHash(c) => c.early_hot_answers,
        }
    }
}

/// A complete MapReduce job specification.
#[derive(Clone)]
pub struct JobSpec {
    /// Job name for reports.
    pub name: String,
    /// The map function.
    pub map_fn: Arc<dyn MapFn>,
    /// The reduce (and, when combinable, combine) aggregate.
    pub agg: Arc<dyn Aggregator>,
    /// Partitioner for intermediate keys.
    pub partitioner: Arc<dyn Partitioner>,
    /// Number of reduce tasks.
    pub reducers: usize,
    /// Map-side processing mode.
    pub map_side: MapSideMode,
    /// Shuffle communication mode.
    pub shuffle: ShuffleMode,
    /// Reduce-side group-by backend.
    pub backend: ReduceBackend,
    /// Map output buffer bytes per map task (Hadoop `io.sort.mb`).
    pub map_buffer_bytes: usize,
    /// Reduce memory budget bytes per reduce task.
    pub reduce_budget_bytes: usize,
    /// Apply the combine function map-side when the aggregate allows it.
    pub combine: Combine,
    /// Sort-merge reducers also flush their in-memory segments to disk
    /// once this many segments accumulate, regardless of memory headroom
    /// (Hadoop's `mapred.inmem.merge.threshold`, default 1000). This is
    /// the §III-B.4 behaviour: "even if there is ample memory ... the
    /// multi-pass merge still causes I/O".
    pub inmem_merge_threshold: usize,
    /// Collect final/early output pairs into the report (disable for
    /// large-output benchmarks where only statistics matter).
    pub collect_output: CollectOutput,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("reducers", &self.reducers)
            .field("map_side", &self.map_side)
            .field("shuffle", &self.shuffle)
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

impl JobSpec {
    /// Start building a job.
    pub fn builder(name: impl Into<String>) -> JobSpecBuilder {
        JobSpecBuilder::new(name)
    }

    /// Validate cross-field constraints.
    pub fn validate(&self) -> Result<()> {
        if self.reducers == 0 {
            return Err(Error::Config("reducers must be ≥ 1".into()));
        }
        if self.map_buffer_bytes < 1024 {
            return Err(Error::Config("map buffer must be ≥ 1 KiB".into()));
        }
        if self.map_side == MapSideMode::HashCombine
            && !(self.combine.is_on() && self.agg.combinable())
        {
            return Err(Error::Config(
                "HashCombine map mode requires a combinable aggregate with combine enabled".into(),
            ));
        }
        if let ReduceBackend::SortMerge {
            merge_factor,
            snapshots,
        } = &self.backend
        {
            if *merge_factor < 2 {
                return Err(Error::Config("merge factor must be ≥ 2".into()));
            }
            if snapshots.iter().any(|f| !(0.0..1.0).contains(f)) {
                return Err(Error::Config(
                    "snapshot fractions must lie in [0, 1)".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Builder for [`JobSpec`] with paper-faithful defaults (Hadoop baseline).
pub struct JobSpecBuilder {
    spec: JobSpec,
}

impl JobSpecBuilder {
    /// New builder; defaults: Hadoop configuration (sort-spill map side,
    /// pull shuffle, sort-merge reduce, F=10, combine on, 4 reducers,
    /// 16 MiB map buffer, 64 MiB reduce budget).
    pub fn new(name: impl Into<String>) -> Self {
        JobSpecBuilder {
            spec: JobSpec {
                name: name.into(),
                map_fn: Arc::new(identity_map),
                agg: Arc::new(onepass_groupby::CountAgg),
                partitioner: Arc::new(HashPartitioner::default()),
                reducers: 4,
                map_side: MapSideMode::SortSpill,
                shuffle: ShuffleMode::Pull,
                backend: ReduceBackend::SortMerge {
                    merge_factor: DEFAULT_MERGE_FACTOR,
                    snapshots: Vec::new(),
                },
                map_buffer_bytes: 16 * MIB as usize,
                reduce_budget_bytes: 64 * MIB as usize,
                combine: Combine::On,
                inmem_merge_threshold: 1000,
                collect_output: CollectOutput::Collect,
            },
        }
    }

    /// Set the map function.
    pub fn map_fn(mut self, f: Arc<dyn MapFn>) -> Self {
        self.spec.map_fn = f;
        self
    }

    /// Set the reduce/combine aggregate.
    pub fn aggregate(mut self, a: Arc<dyn Aggregator>) -> Self {
        self.spec.agg = a;
        self
    }

    /// Set the partitioner.
    pub fn partitioner(mut self, p: Arc<dyn Partitioner>) -> Self {
        self.spec.partitioner = p;
        self
    }

    /// Set the number of reduce tasks.
    pub fn reducers(mut self, n: usize) -> Self {
        self.spec.reducers = n;
        self
    }

    /// Set the map-side mode.
    pub fn map_side(mut self, m: MapSideMode) -> Self {
        self.spec.map_side = m;
        self
    }

    /// Set the shuffle mode.
    pub fn shuffle(mut self, s: ShuffleMode) -> Self {
        self.spec.shuffle = s;
        self
    }

    /// Set the reduce backend.
    pub fn backend(mut self, b: ReduceBackend) -> Self {
        self.spec.backend = b;
        self
    }

    /// Set the map output buffer size.
    pub fn map_buffer_bytes(mut self, n: usize) -> Self {
        self.spec.map_buffer_bytes = n;
        self
    }

    /// Set the per-reducer memory budget.
    pub fn reduce_budget_bytes(mut self, n: usize) -> Self {
        self.spec.reduce_budget_bytes = n;
        self
    }

    /// Set whether the map-side combine function runs.
    pub fn combine_mode(mut self, mode: Combine) -> Self {
        self.spec.combine = mode;
        self
    }

    /// Set the sort-merge reducers' segment-count flush threshold.
    pub fn inmem_merge_threshold(mut self, n: usize) -> Self {
        self.spec.inmem_merge_threshold = n.max(1);
        self
    }

    /// Set whether output pairs are collected into the report.
    pub fn collect_mode(mut self, mode: CollectOutput) -> Self {
        self.spec.collect_output = mode;
        self
    }

    /// Finish, validating the configuration.
    pub fn build(self) -> Result<JobSpec> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// Convenience presets matching the systems in Table III.
impl JobSpecBuilder {
    /// Stock Hadoop: sort-spill map, pull shuffle, sort-merge reduce.
    pub fn preset_hadoop(self) -> Self {
        self.map_side(MapSideMode::SortSpill)
            .shuffle(ShuffleMode::Pull)
            .backend(ReduceBackend::SortMerge {
                merge_factor: DEFAULT_MERGE_FACTOR,
                snapshots: Vec::new(),
            })
    }

    /// MapReduce Online (HOP): sort-spill map, push shuffle, sort-merge
    /// reduce with periodic snapshots at 25/50/75%.
    pub fn preset_hop(self) -> Self {
        self.map_side(MapSideMode::SortSpill)
            .shuffle(ShuffleMode::Push { granularity: 4096 })
            .backend(ReduceBackend::SortMerge {
                merge_factor: DEFAULT_MERGE_FACTOR,
                snapshots: vec![0.25, 0.50, 0.75],
            })
    }

    /// The paper's proposed system: hash map side (combine when the
    /// aggregate allows), push shuffle, frequent-key incremental hash.
    pub fn preset_onepass(self) -> Self {
        let combinable = self.spec.combine.is_on() && self.spec.agg.combinable();
        let map_side = if combinable {
            MapSideMode::HashCombine
        } else {
            MapSideMode::HashPartitionOnly
        };
        self.map_side(map_side)
            .shuffle(ShuffleMode::Push { granularity: 4096 })
            .backend(ReduceBackend::FreqHash(FreqHashConfig::default()))
    }
}

/// The identity map function: key = record, value = empty.
pub fn identity_map(record: &[u8], out: &mut dyn MapEmitter) {
    out.emit(record, b"");
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepass_groupby::{ListAgg, SumAgg};

    #[test]
    fn builder_defaults_are_hadoop() {
        let job = JobSpec::builder("t").build().unwrap();
        assert_eq!(job.map_side, MapSideMode::SortSpill);
        assert_eq!(job.shuffle, ShuffleMode::Pull);
        assert!(matches!(job.backend, ReduceBackend::SortMerge { .. }));
        assert_eq!(job.backend.label(), "sort-merge");
        assert!(!job.backend.incremental());
    }

    #[test]
    fn hash_combine_requires_combinable_aggregate() {
        let err = JobSpec::builder("t")
            .aggregate(Arc::new(ListAgg))
            .map_side(MapSideMode::HashCombine)
            .build();
        assert!(err.is_err());

        let ok = JobSpec::builder("t")
            .aggregate(Arc::new(SumAgg))
            .map_side(MapSideMode::HashCombine)
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn preset_onepass_downgrades_map_side_for_holistic_aggregates() {
        let job = JobSpec::builder("sessionize")
            .aggregate(Arc::new(ListAgg))
            .preset_onepass()
            .build()
            .unwrap();
        assert_eq!(job.map_side, MapSideMode::HashPartitionOnly);
        assert!(job.backend.incremental());

        let job = JobSpec::builder("count")
            .aggregate(Arc::new(SumAgg))
            .preset_onepass()
            .build()
            .unwrap();
        assert_eq!(job.map_side, MapSideMode::HashCombine);
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(JobSpec::builder("t").reducers(0).build().is_err());
        assert!(JobSpec::builder("t").map_buffer_bytes(10).build().is_err());
        assert!(JobSpec::builder("t")
            .backend(ReduceBackend::SortMerge {
                merge_factor: 1,
                snapshots: vec![],
            })
            .build()
            .is_err());
        assert!(JobSpec::builder("t")
            .backend(ReduceBackend::SortMerge {
                merge_factor: 10,
                snapshots: vec![1.5],
            })
            .build()
            .is_err());
    }

    #[test]
    fn partitioner_is_stable_and_in_range() {
        let p = HashPartitioner::default();
        for i in 0..1000u32 {
            let k = i.to_le_bytes();
            let a = p.partition(&k, 7);
            assert!(a < 7);
            assert_eq!(a, p.partition(&k, 7));
        }
    }

    #[test]
    fn typed_knobs_set_modes() {
        let typed = JobSpec::builder("t")
            .combine_mode(Combine::Off)
            .collect_mode(CollectOutput::Discard)
            .build()
            .unwrap();
        assert_eq!(typed.combine, Combine::Off);
        assert_eq!(typed.collect_output, CollectOutput::Discard);
        assert!(!typed.combine.is_on());
        assert!(!typed.collect_output.is_collect());

        let defaults = JobSpec::builder("t").build().unwrap();
        assert!(defaults.combine.is_on());
        assert!(defaults.collect_output.is_collect());
    }

    #[test]
    fn hop_preset_has_snapshots() {
        let job = JobSpec::builder("t").preset_hop().build().unwrap();
        assert_eq!(job.backend.label(), "sort-merge+snapshots (HOP)");
        assert!(matches!(job.shuffle, ShuffleMode::Push { .. }));
    }
}
