//! Staged query plans: a DAG of MapReduce stages executed either as a
//! sequence of materialized jobs (barrier mode, classic Hadoop multi-job
//! behaviour) or fully pipelined, with each stage's final answers
//! streaming into downstream map tasks while upstream reducers are still
//! running.
//!
//! Real analytical queries rarely fit one MapReduce job — the paper's
//! related work (Pig, Hive) compiles queries into job *DAGs*, and §IV's
//! architecture pipelines data "from mappers to reducers and between
//! jobs". [`Plan::linear`] covers the classic linear chain:
//!
//! * Stages are connected by **edges** carrying the edge record codec
//!   ([`crate::codec::encode_pair`]): each final `(key, value)` of an
//!   upstream stage becomes one input record of its downstream stages.
//! * In [`PlanMode::Pipelined`] (the default) every stage runs
//!   concurrently; upstream finals are batched into [`Split`]s of
//!   [`PlanConfig::records_per_split`] records and pushed over a bounded
//!   channel into the downstream stage's streamed split feed. Downstream
//!   map and reduce work overlaps the upstream stage, so multi-stage
//!   time-to-first-answer drops without changing the final answer.
//! * In [`PlanMode::Barrier`] stages run one at a time in topological
//!   order, each consuming its predecessors' fully materialized output —
//!   the baseline the pipelined mode is measured against.
//!
//! Downstream stages usually want decoded pairs, not raw edge records:
//! [`PlanBuilder::add_pair_stage`] takes a [`PairMap`] and the plan wraps
//! it with the edge decoder. Malformed edge records are **counted per
//! stage** and fail the stage once they exceed
//! [`PlanConfig::max_decode_errors`] (default 0: any corruption is an
//! error, never a silent skip).
//!
//! Early emissions are not forwarded across edges (they are
//! approximations of the finals); collect them from each stage's report
//! if needed.
//!
//! Plans also have **cache edges** against a job-wide
//! [`DatasetCache`](crate::cache::DatasetCache):
//! [`PlanBuilder::cache_output`] captures a stage's finals as a named,
//! partition-stable dataset, and [`PlanBuilder::cached_input`] feeds a
//! cached dataset into a stage as zero-copy map splits (no re-scan, no
//! input decode). When the dataset's partition count matches the
//! consuming stage's reducer count,
//! [`PlanBuilder::cached_input_aligned`] short-circuits the shuffle
//! entirely: each cached partition routes to its own reducer without
//! re-hashing a single key. [`crate::iterate::IterativePlan`] builds
//! multi-round loops on top of these edges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel::{bounded, Sender};
use onepass_core::error::{Error, Result};
use onepass_core::governor::{MemoryGovernor, MemoryPolicy};
use onepass_core::trace::Track;
use onepass_groupby::EmitKind;

use crate::cache::DatasetCache;
use crate::codec::{decode_pair, encode_pair};
use crate::driver::Engine;
use crate::executor::{self, ExecParams, ReduceTap, TapFactory};
use crate::job::{CollectOutput, JobSpec, MapEmitter, MapFn};
use crate::map_task::Split;
use crate::report::{PlanReport, StageReport};
use crate::scheduler::SplitFeed;
use crate::shuffle::PressureGate;

/// Trace-track stride between stages, so concurrent stages of a plan get
/// disjoint map/reduce track ids in the flamegraph.
const TRACK_STRIDE: u64 = 1_000_000;

/// Identifies one stage of a [`Plan`], as returned by
/// [`PlanBuilder::add_stage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageId(pub(crate) usize);

impl StageId {
    /// The stage's index within its plan.
    pub fn index(self) -> usize {
        self.0
    }
}

/// How the stages of a plan are executed relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// All stages run concurrently; upstream finals stream into
    /// downstream split feeds as they are produced.
    #[default]
    Pipelined,
    /// Stages run one at a time in topological order, each consuming its
    /// predecessors' fully materialized output (classic Hadoop multi-job
    /// behaviour).
    Barrier,
}

impl PlanMode {
    /// Lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PlanMode::Pipelined => "pipelined",
            PlanMode::Barrier => "barrier",
        }
    }
}

/// Options for [`Engine::run_plan`].
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Pipelined (default) or barrier execution.
    pub mode: PlanMode,
    /// Records per inter-stage split. Smaller batches reach downstream
    /// maps sooner; larger ones amortize per-split scheduling. Default
    /// 4096 (the chain default).
    pub records_per_split: usize,
    /// Bound of each pipelined edge channel, in splits. A full edge
    /// blocks the upstream reducer's emission — the same backpressure
    /// push shuffling applies within a job (§III-D), extended across
    /// stages. Default 16.
    pub edge_depth: usize,
    /// Maximum malformed inter-stage records a stage may skip before it
    /// fails. Default 0: any corrupt edge record fails the stage rather
    /// than silently dropping data.
    pub max_decode_errors: u64,
}

impl PlanConfig {
    /// Defaults with the given execution mode.
    pub fn new(mode: PlanMode) -> Self {
        PlanConfig {
            mode,
            ..Default::default()
        }
    }
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            mode: PlanMode::default(),
            records_per_split: 4096,
            edge_depth: 16,
            max_decode_errors: 0,
        }
    }
}

/// A map function over decoded inter-stage pairs.
///
/// Stages added with [`PlanBuilder::add_pair_stage`] receive each edge
/// record already decoded through the chain codec, so workloads don't
/// hand-roll [`decode_pair`] calls (and can't silently ignore corrupt
/// records — the plan counts and bounds those centrally).
pub trait PairMap: Send + Sync {
    /// Process one decoded `(key, value)` pair.
    fn map_pair(&self, key: &[u8], value: &[u8], out: &mut dyn MapEmitter);
}

/// Blanket adapter so closures can serve as pair-map functions.
impl<F> PairMap for F
where
    F: Fn(&[u8], &[u8], &mut dyn MapEmitter) + Send + Sync,
{
    fn map_pair(&self, key: &[u8], value: &[u8], out: &mut dyn MapEmitter) {
        self(key, value, out)
    }
}

/// How a stage interprets its input records.
pub(crate) enum StageInput {
    /// The job's own map function sees raw records (source stages, or
    /// stages that do their own edge decoding, like legacy chains).
    Records,
    /// Records are decoded through the chain codec first and handed to
    /// this pair-map; the job's `map_fn` is replaced at run time.
    Pairs(Arc<dyn PairMap>),
}

/// A cache edge feeding a stage from a named dataset.
pub(crate) struct CachedInput {
    pub(crate) name: String,
    /// Request the shuffle short-circuit: applied only when the cached
    /// partition count equals the stage's reducer count.
    pub(crate) aligned: bool,
}

/// One node of the DAG: a complete MapReduce job plus its input codec
/// and cache edges.
pub(crate) struct Stage {
    pub(crate) job: JobSpec,
    pub(crate) input: StageInput,
    /// Capture this stage's finals into the dataset cache under this
    /// name (partitioned by the stage's own partitioner/reducer count).
    pub(crate) cache_output: Option<String>,
    /// Datasets fed into this stage as cache-hit splits.
    pub(crate) cached_inputs: Vec<CachedInput>,
}

impl Stage {
    fn new(job: JobSpec, input: StageInput) -> Self {
        Stage {
            job,
            input,
            cache_output: None,
            cached_inputs: Vec::new(),
        }
    }
}

/// Builds a [`Plan`] DAG. Stages are added first, then connected; the
/// DAG is validated by [`PlanBuilder::build`].
#[derive(Default)]
pub struct PlanBuilder {
    stages: Vec<Stage>,
    edges: Vec<(usize, usize)>,
}

impl PlanBuilder {
    /// Start an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a stage whose map function reads raw records (the plan's input
    /// for source stages, encoded edge records otherwise).
    pub fn add_stage(&mut self, job: JobSpec) -> StageId {
        self.stages.push(Stage::new(job, StageInput::Records));
        StageId(self.stages.len() - 1)
    }

    /// Add a stage whose records are decoded through the edge codec and
    /// handed to `pairs` (see [`PairMap`]). The job's own `map_fn` is
    /// ignored.
    pub fn add_pair_stage(&mut self, job: JobSpec, pairs: Arc<dyn PairMap>) -> StageId {
        self.stages
            .push(Stage::new(job, StageInput::Pairs(pairs)));
        StageId(self.stages.len() - 1)
    }

    /// Feed `from`'s final answers into `to`'s input.
    pub fn connect(&mut self, from: StageId, to: StageId) -> &mut Self {
        self.edges.push((from.0, to.0));
        self
    }

    /// Capture `stage`'s finals into the run's
    /// [`DatasetCache`](crate::cache::DatasetCache) under `name`,
    /// partitioned by the stage's own partitioner over its reducer
    /// count — so a successor round consuming the dataset with the same
    /// partitioner and reducer count gets partition-stable placement.
    /// The stage must collect output.
    pub fn cache_output(&mut self, stage: StageId, name: &str) -> &mut Self {
        self.stages[stage.0].cache_output = Some(name.to_string());
        self
    }

    /// Feed the cached dataset `name` into `stage` as zero-copy map
    /// splits (each partition one split of framed pairs, mapped through
    /// [`MapFn::map_pair`](crate::job::MapFn::map_pair) — no re-scan,
    /// no input decode). Requires running the plan through
    /// [`Engine::run_plan_with_cache`].
    pub fn cached_input(&mut self, stage: StageId, name: &str) -> &mut Self {
        self.stages[stage.0].cached_inputs.push(CachedInput {
            name: name.to_string(),
            aligned: false,
        });
        self
    }

    /// Like [`cached_input`](PlanBuilder::cached_input), and
    /// additionally short-circuit the shuffle when the dataset's
    /// partition count equals `stage`'s reducer count: every emission
    /// from partition `p`'s split routes straight to reducer `p`,
    /// skipping the per-key partitioner hash. Correct only when the
    /// stage's map emits keys that stay in their input partition (e.g.
    /// re-emitting the same keys, as iterative state updates do) under
    /// the same partitioner that built the dataset — that contract is
    /// the caller's; on a partition-count mismatch the plan silently
    /// falls back to hashed routing.
    pub fn cached_input_aligned(&mut self, stage: StageId, name: &str) -> &mut Self {
        self.stages[stage.0].cached_inputs.push(CachedInput {
            name: name.to_string(),
            aligned: true,
        });
        self
    }

    /// Validate and freeze the DAG.
    ///
    /// Rejects: empty plans, edges to unknown stages, self-loops,
    /// duplicate edges, cycles, plans without exactly one source stage,
    /// stages that feed downstream stages without collecting output, and
    /// invalid per-stage job specs.
    pub fn build(self) -> Result<Plan> {
        Plan::from_parts(self.stages, self.edges)
    }
}

/// A validated DAG of MapReduce stages, run by [`Engine::run_plan`].
pub struct Plan {
    pub(crate) stages: Vec<Stage>,
    /// Stage indices in topological order (source first).
    pub(crate) order: Vec<usize>,
    /// Upstream stage indices per stage, in edge insertion order.
    pub(crate) incoming: Vec<Vec<usize>>,
    /// Downstream stage indices per stage, in edge insertion order.
    pub(crate) outgoing: Vec<Vec<usize>>,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field(
                "stages",
                &self.stages.iter().map(|s| &s.job.name).collect::<Vec<_>>(),
            )
            .field("order", &self.order)
            .field("incoming", &self.incoming)
            .finish()
    }
}

impl Plan {
    /// Start building a plan.
    pub fn builder() -> PlanBuilder {
        PlanBuilder::new()
    }

    /// A linear chain: each job's finals feed the next job's input (the
    /// classic materialize-then-re-split multi-job topology when run in
    /// [`PlanMode::Barrier`]).
    pub fn linear(jobs: Vec<JobSpec>) -> Result<Plan> {
        let mut b = Plan::builder();
        let ids: Vec<StageId> = jobs.into_iter().map(|j| b.add_stage(j)).collect();
        for pair in ids.windows(2) {
            b.connect(pair[0], pair[1]);
        }
        b.build()
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Name of a stage's job.
    pub fn stage_name(&self, stage: StageId) -> &str {
        &self.stages[stage.0].job.name
    }

    /// Whether any stage has a cache edge (input or output).
    pub fn uses_cache(&self) -> bool {
        self.stages
            .iter()
            .any(|s| s.cache_output.is_some() || !s.cached_inputs.is_empty())
    }

    /// The stage that consumes the plan's record input: the unique
    /// stage with neither incoming edges nor cached inputs, if any.
    /// Failing that, a unique stage with no incoming edges but *with*
    /// cached inputs also accepts records — that is the two-input
    /// shape (e.g. a hybrid-hash join probing records against a cached
    /// build side).
    fn record_source(&self) -> Option<usize> {
        let pure = (0..self.stages.len()).find(|&s| {
            self.incoming[s].is_empty() && self.stages[s].cached_inputs.is_empty()
        });
        pure.or_else(|| {
            let mut roots = (0..self.stages.len()).filter(|&s| self.incoming[s].is_empty());
            match (roots.next(), roots.next()) {
                (Some(s), None) => Some(s),
                _ => None,
            }
        })
    }

    fn from_parts(stages: Vec<Stage>, edges: Vec<(usize, usize)>) -> Result<Plan> {
        let n = stages.len();
        if n == 0 {
            return Err(Error::Config("plan must have at least one stage".into()));
        }
        let mut seen = std::collections::HashSet::new();
        let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(from, to) in &edges {
            if from >= n || to >= n {
                return Err(Error::Config(format!(
                    "plan edge {from} -> {to} references an unknown stage (plan has {n})"
                )));
            }
            if from == to {
                return Err(Error::Config(format!(
                    "plan stage {from} ({}) cannot feed itself",
                    stages[from].job.name
                )));
            }
            if !seen.insert((from, to)) {
                return Err(Error::Config(format!("duplicate plan edge {from} -> {to}")));
            }
            outgoing[from].push(to);
            incoming[to].push(from);
        }

        // A stage fed only by cache edges is not a record source: cached
        // datasets replace its scan. At most one stage may read the
        // plan's record input, and a plan running purely off the cache
        // (zero record sources) is legal — `run_plan` then requires an
        // empty input.
        let sources = incoming
            .iter()
            .zip(&stages)
            .filter(|(inc, st)| inc.is_empty() && st.cached_inputs.is_empty())
            .count();
        let any_cache_inputs = stages.iter().any(|s| !s.cached_inputs.is_empty());
        if sources > 1 || (sources != 1 && !any_cache_inputs) {
            return Err(Error::Config(format!(
                "plan must have exactly one source stage (found {sources})"
            )));
        }

        // Kahn's algorithm: a complete ordering proves acyclicity.
        let mut indeg: Vec<usize> = incoming.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&s| indeg[s] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(s) = queue.pop() {
            order.push(s);
            for &d in &outgoing[s] {
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() != n {
            return Err(Error::Config("plan has a cycle".into()));
        }

        for (i, stage) in stages.iter().enumerate() {
            if !outgoing[i].is_empty() && !stage.job.collect_output.is_collect() {
                return Err(Error::Config(format!(
                    "plan stage {i} ({}) must collect output to feed its downstream stages",
                    stage.job.name
                )));
            }
            if stage.cache_output.is_some() && !stage.job.collect_output.is_collect() {
                return Err(Error::Config(format!(
                    "plan stage {i} ({}) must collect output to cache it",
                    stage.job.name
                )));
            }
            stage.job.validate()?;
        }

        Ok(Plan {
            stages,
            order,
            incoming,
            outgoing,
        })
    }
}

/// The runtime map function of a pair stage: decode the edge record, count
/// (and bound) corruption, delegate good pairs to the user's [`PairMap`].
struct DecodingMap {
    inner: Arc<dyn PairMap>,
    errors: Arc<AtomicU64>,
    max_errors: u64,
}

impl MapFn for DecodingMap {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        match decode_pair(record) {
            Some((key, value)) => self.inner.map_pair(key, value, out),
            None => {
                let n = self.errors.fetch_add(1, Ordering::Relaxed) + 1;
                if n > self.max_errors {
                    // A panicking map function is a task failure: the
                    // scheduler applies the retry budget, and exhaustion
                    // fails the stage — corruption is never silent.
                    panic!(
                        "malformed inter-stage record ({n} decode errors exceed threshold {})",
                        self.max_errors
                    );
                }
            }
        }
    }
}

/// The job actually executed for a stage, plus its decode-error counter
/// (pair stages only). With `streams_output` (pipelined interior stages),
/// finals flow downstream through the edge writer only — the stage does
/// not also materialize them in its report, mirroring how the paper's
/// pipeline avoids materializing data between jobs (§IV).
fn effective_job(
    stage: &Stage,
    cfg: &PlanConfig,
    streams_output: bool,
) -> (JobSpec, Option<Arc<AtomicU64>>) {
    let mut job = stage.job.clone();
    if streams_output {
        job.collect_output = CollectOutput::Discard;
    }
    match &stage.input {
        StageInput::Records => (job, None),
        StageInput::Pairs(pairs) => {
            let errors = Arc::new(AtomicU64::new(0));
            job.map_fn = Arc::new(DecodingMap {
                inner: Arc::clone(pairs),
                errors: Arc::clone(&errors),
                max_errors: cfg.max_decode_errors,
            });
            (job, Some(errors))
        }
    }
}

/// Backstop threshold check after a stage completes (the in-task panic
/// already catches most overruns; this covers retried attempts that
/// accumulated skips without any single attempt overrunning).
fn check_decode_errors(stage: usize, name: &str, errors: u64, cfg: &PlanConfig) -> Result<()> {
    if errors > cfg.max_decode_errors {
        return Err(Error::InvalidState(format!(
            "plan stage {stage} ({name}) skipped {errors} malformed inter-stage records \
             (threshold {})",
            cfg.max_decode_errors
        )));
    }
    Ok(())
}

/// Batch encoded records into splits of `per_split` records.
fn split_records(records: Vec<Vec<u8>>, per_split: usize) -> Vec<Split> {
    let per = per_split.max(1);
    let mut splits = Vec::new();
    let mut it = records.into_iter();
    loop {
        let chunk: Vec<Vec<u8>> = it.by_ref().take(per).collect();
        if chunk.is_empty() {
            return splits;
        }
        splits.push(Split::new(chunk));
    }
}

/// Streams one stage's final answers into its downstream split feeds:
/// finals are encoded through the chain codec, batched into splits, and
/// fanned out to every outgoing edge channel.
struct EdgeWriter {
    per_split: usize,
    buf: Vec<Vec<u8>>,
    outs: Vec<Sender<Result<Split>>>,
    /// Gates edge sends on shared-governor memory pressure, exactly like
    /// map-side shuffle pushes within a job.
    gate: Option<PressureGate>,
    /// `onepass_plan_edge_depth{stage}` — sampled after each flush so a
    /// scraper sees how far ahead this stage runs of its consumers.
    depth: Option<onepass_core::obs::Gauge>,
}

impl EdgeWriter {
    /// Append one already-encoded record. Encoding happens on the caller's
    /// side of the lock: concurrently-draining reducers would otherwise
    /// serialize on the allocation and copy, not just the buffer push.
    fn push(&mut self, record: Vec<u8>) {
        self.buf.push(record);
        if self.buf.len() >= self.per_split {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() || self.outs.is_empty() {
            return;
        }
        let split = Split::new(std::mem::take(&mut self.buf));
        let last = self.outs.len() - 1;
        for tx in &self.outs[..last] {
            if let Some(g) = &self.gate {
                g.admit(tx);
            }
            // A send error means the downstream stage already hung up
            // (it failed); its own error surfaces through the join below.
            let _ = tx.send(Ok(split.clone()));
        }
        let tx = &self.outs[last];
        if let Some(g) = &self.gate {
            g.admit(tx);
        }
        let _ = tx.send(Ok(split));
        if let Some(d) = &self.depth {
            let deepest = self.outs.iter().map(|tx| tx.len()).max().unwrap_or(0);
            d.set(deepest as f64);
        }
    }

    /// Flush the remainder and hang up, closing the downstream feeds.
    fn finish(&mut self) {
        self.flush();
        self.outs.clear();
    }

    /// Tell every downstream stage this stage failed, then hang up.
    fn poison(&mut self, msg: &str) {
        for tx in &self.outs {
            let _ = tx.send(Err(Error::InvalidState(msg.to_string())));
        }
        self.outs.clear();
    }
}

/// Per-reducer writers (owned by a [`TapFactory`]'s closures) flush their
/// remainder when the reducer's sink drops, inside the stage's execute
/// call — before the stage-level writer hangs up the feed. The
/// stage-level writer's buffer is empty (reducers never touch it), so
/// after an explicit `finish`/`poison` this is a no-op.
impl Drop for EdgeWriter {
    fn drop(&mut self) {
        self.flush();
    }
}

fn lock_writer(w: &Mutex<EdgeWriter>) -> std::sync::MutexGuard<'_, EdgeWriter> {
    // A poisoned lock means some emitting thread panicked mid-push; the
    // stage itself reports that failure, so it is safe to keep flushing
    // (worst case: a partial buffer the poisoned stage would discard).
    w.lock().unwrap_or_else(|p| p.into_inner())
}

impl Engine {
    /// Run a multi-stage [`Plan`] over `input` (fed to the plan's single
    /// source stage). Returns the per-stage reports plus plan-level
    /// timings; all task spans and output timestamps are measured against
    /// the *plan* start, so time-to-first-answer is comparable across
    /// modes.
    pub fn run_plan(
        &self,
        plan: &Plan,
        input: Vec<Split>,
        config: &PlanConfig,
    ) -> Result<PlanReport> {
        self.run_plan_with_cache(plan, input, config, None)
    }

    /// [`run_plan`](Engine::run_plan) with a [`DatasetCache`] backing
    /// the plan's cache edges: stages marked
    /// [`cache_output`](PlanBuilder::cache_output) publish their finals
    /// as partition-stable datasets after the run, and stages with
    /// [`cached_input`](PlanBuilder::cached_input) edges read datasets
    /// as zero-copy cache-hit splits. Plans without cache edges ignore
    /// `cache` entirely.
    pub fn run_plan_with_cache(
        &self,
        plan: &Plan,
        input: Vec<Split>,
        config: &PlanConfig,
        cache: Option<&DatasetCache>,
    ) -> Result<PlanReport> {
        if plan.uses_cache() && cache.is_none() {
            return Err(Error::Config(
                "plan has cache edges; run it through run_plan_with_cache with a DatasetCache"
                    .into(),
            ));
        }
        if plan.record_source().is_none() && !input.is_empty() {
            return Err(Error::Config(
                "plan has no record source stage (all stages are cache-fed) but input is not \
                 empty"
                    .into(),
            ));
        }
        let clock = Instant::now();
        let report = match config.mode {
            PlanMode::Barrier => run_barrier(self, plan, input, config, clock, cache)?,
            PlanMode::Pipelined => run_pipelined(self, plan, input, config, clock, cache)?,
        };
        capture_cache_outputs(plan, &report, cache)?;
        Ok(report)
    }
}

/// Publish every `cache_output` stage's finals into the cache,
/// partitioned by the stage's own partitioner over its reducer count and
/// key-sorted within each partition — deterministic dataset bytes
/// regardless of reduction order, so replays and re-runs converge on
/// identical cache content.
fn capture_cache_outputs(
    plan: &Plan,
    report: &PlanReport,
    cache: Option<&DatasetCache>,
) -> Result<()> {
    for (s, stage) in plan.stages.iter().enumerate() {
        let name = match &stage.cache_output {
            Some(name) => name,
            None => continue,
        };
        let cache = cache.expect("checked in run_plan_with_cache");
        let job = &stage.job;
        let reducers = job.reducers.max(1);
        let sr = &report.stages[s];
        let parts = crate::cache::partition_pairs(
            sr.report
                .outputs
                .iter()
                .filter(|o| o.kind == EmitKind::Final)
                .map(|o| (o.key.as_slice(), o.value.as_slice())),
            reducers,
            |k| job.partitioner.partition(k, reducers),
        )?;
        let parts: Vec<_> = parts.into_iter().map(|p| p.sorted_by_key()).collect();
        cache.put(name, parts)?;
    }
    Ok(())
}

/// The cache-hit splits feeding stage `s`: one zero-copy split per
/// cached partition, partition-pinned when the aligned short-circuit
/// applies.
fn cached_splits(plan: &Plan, s: usize, cache: Option<&DatasetCache>) -> Result<Vec<Split>> {
    let stage = &plan.stages[s];
    let mut out = Vec::new();
    for ci in &stage.cached_inputs {
        let cache = cache.expect("checked in run_plan_with_cache");
        let parts = cache.get(&ci.name)?.ok_or_else(|| {
            Error::InvalidState(format!(
                "plan stage {s} ({}) reads cached dataset '{}', which is not in the cache",
                stage.job.name, ci.name
            ))
        })?;
        let aligned_ok = ci.aligned && parts.len() == stage.job.reducers;
        for (p, seg) in parts.into_iter().enumerate() {
            let mut split = Split::from_segment(seg);
            if aligned_ok {
                split.aligned = Some(p as u32);
            }
            out.push(split);
        }
    }
    Ok(out)
}

fn assemble(mode: PlanMode, clock: Instant, stages: Vec<StageReport>) -> PlanReport {
    let first_final_at = stages
        .iter()
        .filter(|s| s.is_sink)
        .filter_map(|s| s.report.first_final_at)
        .min();
    PlanReport {
        mode: mode.label(),
        wall: clock.elapsed(),
        first_final_at,
        stages,
    }
}

/// Barrier execution: stages run one at a time in topological order; each
/// stage's finals are materialized, re-encoded, and re-split before any
/// downstream stage starts.
fn run_barrier(
    engine: &Engine,
    plan: &Plan,
    input: Vec<Split>,
    cfg: &PlanConfig,
    clock: Instant,
    cache: Option<&DatasetCache>,
) -> Result<PlanReport> {
    let n = plan.stages.len();
    let tracer = &engine.config().tracer;
    let record_source = plan.record_source();
    let mut finals: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
    let mut stage_reports: Vec<Option<StageReport>> = (0..n).map(|_| None).collect();
    let mut input = Some(input);

    for &s in &plan.order {
        let stage = &plan.stages[s];
        let (job, errors) = effective_job(stage, cfg, false);
        let mut splits = if record_source == Some(s) {
            input.take().expect("one record source stage")
        } else if !plan.incoming[s].is_empty() {
            let mut records = Vec::new();
            for &u in &plan.incoming[s] {
                records.extend(finals[u].iter().cloned());
            }
            split_records(records, cfg.records_per_split)
        } else {
            Vec::new()
        };
        splits.extend(cached_splits(plan, s, cache)?);

        let mut st_trace = tracer.local(Track::new("stage", s as u64));
        st_trace.begin("stage", "plan");
        let res = executor::execute(ExecParams {
            config: engine.config(),
            job: &job,
            feed: SplitFeed::Fixed(splits),
            clock,
            tap: None,
            governor: None,
            track_offset: s as u64 * TRACK_STRIDE,
        });
        st_trace.end("stage", "plan");
        let decode_errors = errors.as_ref().map_or(0, |e| e.load(Ordering::Relaxed));
        if decode_errors > 0 {
            st_trace.instant(
                "decode_errors",
                "plan",
                &[("stage", s as f64), ("count", decode_errors as f64)],
            );
        }
        drop(st_trace);

        let report = res?;
        check_decode_errors(s, &stage.job.name, decode_errors, cfg)?;
        if !plan.outgoing[s].is_empty() {
            finals[s] = report
                .outputs
                .iter()
                .filter(|o| o.kind == EmitKind::Final)
                .map(|o| encode_pair(&o.key, &o.value))
                .collect();
        }
        stage_reports[s] = Some(StageReport {
            stage: s,
            name: stage.job.name.clone(),
            is_sink: plan.outgoing[s].is_empty(),
            decode_errors,
            report,
        });
    }

    Ok(assemble(
        PlanMode::Barrier,
        clock,
        stage_reports
            .into_iter()
            .map(|r| r.expect("every stage ran"))
            .collect(),
    ))
}

/// Pipelined execution: one thread per stage, all running concurrently.
/// Each non-source stage consumes a bounded channel of splits; each stage
/// with downstream consumers taps its sinks' final emissions and streams
/// them into those channels as they happen.
fn run_pipelined(
    engine: &Engine,
    plan: &Plan,
    input: Vec<Split>,
    cfg: &PlanConfig,
    clock: Instant,
    cache: Option<&DatasetCache>,
) -> Result<PlanReport> {
    let n = plan.stages.len();
    let config = engine.config();
    let tracer = &config.tracer;
    let record_source = plan.record_source();

    // Under adaptive memory policy, all concurrently-live stages share one
    // governed pool sized for the whole plan, so a memory-hungry stage
    // can borrow slack from (and shed back to) its neighbours. A cache
    // leased from a governor brings its own pool — reusing it puts the
    // rounds' reducers and the cache in one arbitration domain, which is
    // what lets reducer pressure evict cached datasets instead of
    // spilling live tables.
    let governor = match &config.memory_policy {
        MemoryPolicy::Static => None,
        MemoryPolicy::Adaptive { policy, high_water } => {
            match cache.and_then(|c| c.governor().cloned()) {
                Some(g) => Some(g),
                None => {
                    let pool = plan.stages.iter().fold(0usize, |acc, st| {
                        acc.saturating_add(
                            st.job
                                .reduce_budget_bytes
                                .saturating_mul(st.job.reducers.max(1)),
                        )
                    });
                    Some(MemoryGovernor::new(pool, Arc::clone(policy), *high_water))
                }
            }
        }
    };

    // A stage that caches its output must materialize it even when it
    // also streams downstream: the capture reads the stage report.
    let jobs: Vec<(JobSpec, Option<Arc<AtomicU64>>)> = plan
        .stages
        .iter()
        .enumerate()
        .map(|(s, stage)| {
            let streams = !plan.outgoing[s].is_empty() && stage.cache_output.is_none();
            effective_job(stage, cfg, streams)
        })
        .collect();

    // One bounded channel per non-source stage. Multiple upstreams of one
    // stage share the channel through cloned senders (fan-in); the feed
    // closes when the last upstream finishes and drops its clone.
    // Cache-hit splits ride the same channels: a feeder thread per
    // cache-fed streamed stage pushes them in alongside live upstream
    // output.
    let mut stage_tx: Vec<Option<Sender<Result<Split>>>> = (0..n).map(|_| None).collect();
    let mut feeds: Vec<Option<SplitFeed>> = (0..n).map(|_| None).collect();
    let mut cache_feeders: Vec<(Sender<Result<Split>>, Vec<Split>)> = Vec::new();
    let mut input = Some(input);
    for s in 0..n {
        if record_source == Some(s) {
            // A record source may *also* have cached inputs (the
            // two-input join shape): its feed is records plus cache.
            let mut fixed = input.take().expect("one record source stage");
            fixed.extend(cached_splits(plan, s, cache)?);
            feeds[s] = Some(SplitFeed::Fixed(fixed));
        } else if plan.incoming[s].is_empty() {
            // Fed purely by cache edges: the whole feed is known up front.
            feeds[s] = Some(SplitFeed::Fixed(cached_splits(plan, s, cache)?));
        } else {
            let (tx, rx) = bounded(cfg.edge_depth.max(1));
            let cached = cached_splits(plan, s, cache)?;
            if !cached.is_empty() {
                cache_feeders.push((tx.clone(), cached));
            }
            stage_tx[s] = Some(tx);
            feeds[s] = Some(SplitFeed::Streamed(rx));
        }
    }

    let mut writers: Vec<Option<Arc<Mutex<EdgeWriter>>>> = (0..n).map(|_| None).collect();
    let mut taps: Vec<Option<TapFactory>> = (0..n).map(|_| None).collect();
    for s in 0..n {
        if plan.outgoing[s].is_empty() {
            continue;
        }
        let outs: Vec<Sender<Result<Split>>> = plan.outgoing[s]
            .iter()
            .map(|&d| stage_tx[d].clone().expect("downstream stage has a channel"))
            .collect();
        let gate = governor
            .as_ref()
            .map(|g| PressureGate::new(g.clone(), cfg.edge_depth.max(1)));
        let depth = config.metrics.as_ref().map(|m| {
            m.gauge(
                "onepass_plan_edge_depth",
                &[("stage", &plan.stages[s].job.name)],
            )
        });
        let writer = Arc::new(Mutex::new(EdgeWriter {
            per_split: cfg.records_per_split.max(1),
            buf: Vec::new(),
            outs,
            gate,
            depth,
        }));
        // Each reducer gets a private writer over cloned senders, so the
        // emission hot path never takes a shared lock: concurrently
        // draining reducers would serialize (and, on few cores, convoy)
        // on it. The factory snapshots the senders from the stage-level
        // writer at reducer start; per-reducer clones drop with the
        // reducer's sink, the stage-level set via `finish`/`poison`, and
        // the feed closes when the last of either is gone.
        let tap_writer = Arc::clone(&writer);
        let per_split = cfg.records_per_split.max(1);
        taps[s] = Some(Arc::new(move |_partition: usize| {
            let (outs, gate, depth) = {
                let w = lock_writer(&tap_writer);
                (w.outs.clone(), w.gate.clone(), w.depth.clone())
            };
            let mut edge = EdgeWriter {
                per_split,
                buf: Vec::new(),
                outs,
                gate,
                depth,
            };
            Box::new(move |key: &[u8], value: &[u8], kind: EmitKind| {
                if kind == EmitKind::Final {
                    edge.push(encode_pair(key, value));
                }
            }) as ReduceTap
        }) as TapFactory);
        writers[s] = Some(writer);
    }
    // Only the edge writers hold senders now: each downstream feed closes
    // exactly when all of its upstream stages have finished or failed.
    drop(stage_tx);

    let mut results: Vec<Option<Result<crate::report::JobReport>>> = (0..n).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        // Cache feeders block on the bounded edge like any upstream
        // producer; dropping their sender clone lets the feed close once
        // the live upstreams finish too.
        for (tx, splits) in cache_feeders.drain(..) {
            scope.spawn(move |_| {
                for split in splits {
                    // A send error means the consumer already failed; its
                    // own error surfaces through the stage join.
                    if tx.send(Ok(split)).is_err() {
                        break;
                    }
                }
            });
        }
        let mut handles = Vec::with_capacity(n);
        for s in 0..n {
            let feed = feeds[s].take().expect("every stage has a feed");
            let job = &jobs[s].0;
            let tap = taps[s].clone();
            let governor = governor.clone();
            let writer = writers[s].clone();
            let name = plan.stages[s].job.name.clone();
            handles.push(scope.spawn(move |_| {
                let mut st_trace = tracer.local(Track::new("stage", s as u64));
                st_trace.begin("stage", "plan");
                let res = executor::execute(ExecParams {
                    config,
                    job,
                    feed,
                    clock,
                    tap,
                    governor,
                    track_offset: s as u64 * TRACK_STRIDE,
                });
                st_trace.end("stage", "plan");
                drop(st_trace);
                // Close (or poison) the downstream feeds *before* this
                // thread exits, so consumers never wait on a dead stage.
                if let Some(w) = &writer {
                    let mut w = lock_writer(w);
                    match &res {
                        Ok(_) => w.finish(),
                        Err(e) => w.poison(&format!("upstream stage {s} ({name}) failed: {e}")),
                    }
                }
                res
            }));
        }
        for (s, h) in handles.into_iter().enumerate() {
            results[s] = Some(h.join().expect("stage thread panicked"));
        }
    })
    .map_err(|_| Error::InvalidState("plan stage worker panicked".into()))?;

    // Surface the topologically-first failure: downstream errors are
    // poisoned-edge echoes of the root cause.
    for &s in &plan.order {
        let slot = results[s].as_ref().expect("every stage ran");
        if slot.is_err() {
            return Err(results[s].take().expect("present").unwrap_err());
        }
        let decode_errors = jobs[s].1.as_ref().map_or(0, |e| e.load(Ordering::Relaxed));
        check_decode_errors(s, &plan.stages[s].job.name, decode_errors, cfg)?;
    }

    let mut stage_reports = Vec::with_capacity(n);
    for s in 0..n {
        let report = results[s]
            .take()
            .expect("every stage ran")
            .expect("errors returned above");
        let decode_errors = jobs[s].1.as_ref().map_or(0, |e| e.load(Ordering::Relaxed));
        if decode_errors > 0 {
            let mut st_trace = tracer.local(Track::new("stage", s as u64));
            st_trace.instant(
                "decode_errors",
                "plan",
                &[("stage", s as f64), ("count", decode_errors as f64)],
            );
        }
        stage_reports.push(StageReport {
            stage: s,
            name: plan.stages[s].job.name.clone(),
            is_sink: plan.outgoing[s].is_empty(),
            decode_errors,
            report,
        });
    }

    Ok(assemble(PlanMode::Pipelined, clock, stage_reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::EngineConfig;
    use crate::job::{CollectOutput, MapEmitter, ReduceBackend};
    use onepass_groupby::SumAgg;
    use std::collections::BTreeMap;

    fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
        for w in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            out.emit(w, &1u64.to_le_bytes());
        }
    }

    fn wordcount(name: &str) -> JobSpec {
        JobSpec::builder(name)
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(3)
            .preset_onepass()
            .build()
            .unwrap()
    }

    fn histogram_stage(name: &str) -> (JobSpec, Arc<dyn PairMap>) {
        let job = JobSpec::builder(name)
            .map_fn(Arc::new(word_map)) // replaced by the pair decoder
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .backend(ReduceBackend::IncHash { early: None })
            .build()
            .unwrap();
        let pairs: Arc<dyn PairMap> =
            Arc::new(|_key: &[u8], value: &[u8], out: &mut dyn MapEmitter| {
                out.emit(value, &1u64.to_le_bytes());
            });
        (job, pairs)
    }

    fn histogram_plan() -> Plan {
        let mut b = Plan::builder();
        let s1 = b.add_stage(wordcount("wordcount"));
        let (job, pairs) = histogram_stage("count-of-counts");
        let s2 = b.add_pair_stage(job, pairs);
        b.connect(s1, s2);
        b.build().unwrap()
    }

    fn input() -> Vec<Split> {
        // a:4, b:2, c:2, d:1 -> histogram {4:1, 2:2, 1:1}
        vec![Split::new(vec![
            b"a b a c".to_vec(),
            b"a d b c".to_vec(),
            b"a".to_vec(),
        ])]
    }

    fn hist_of(report: &PlanReport) -> BTreeMap<u64, u64> {
        report
            .sorted_final_outputs()
            .into_iter()
            .map(|(k, v)| {
                (
                    u64::from_le_bytes(k.as_slice().try_into().unwrap()),
                    u64::from_le_bytes(v.as_slice().try_into().unwrap()),
                )
            })
            .collect()
    }

    #[test]
    fn pipelined_and_barrier_agree_on_a_two_stage_plan() {
        let engine = Engine::new();
        let plan = histogram_plan();
        let expected = BTreeMap::from([(4, 1), (2, 2), (1, 1)]);

        let barrier = engine
            .run_plan(
                &plan,
                input(),
                &PlanConfig {
                    mode: PlanMode::Barrier,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(barrier.mode, "barrier");
        assert_eq!(hist_of(&barrier), expected);

        let pipelined = engine
            .run_plan(&plan, input(), &PlanConfig::default())
            .unwrap();
        assert_eq!(pipelined.mode, "pipelined");
        assert_eq!(hist_of(&pipelined), expected);
        assert_eq!(pipelined.stages.len(), 2);
        assert!(!pipelined.stages[0].is_sink);
        assert!(pipelined.stages[1].is_sink);
        assert!(pipelined.first_final_at.is_some());
        assert_eq!(pipelined.stages[0].report.groups_out, 4);
        assert_eq!(
            pipelined.sorted_final_outputs(),
            barrier.sorted_final_outputs()
        );
    }

    #[test]
    fn fan_out_feeds_both_downstream_stages() {
        for mode in [PlanMode::Pipelined, PlanMode::Barrier] {
            let mut b = Plan::builder();
            let src = b.add_stage(wordcount("wordcount"));
            let (job1, pairs1) = histogram_stage("hist-a");
            let (job2, pairs2) = histogram_stage("hist-b");
            let d1 = b.add_pair_stage(job1, pairs1);
            let d2 = b.add_pair_stage(job2, pairs2);
            b.connect(src, d1);
            b.connect(src, d2);
            let plan = b.build().unwrap();

            let report = Engine::new()
                .run_plan(
                    &plan,
                    input(),
                    &PlanConfig {
                        mode,
                        ..Default::default()
                    },
                )
                .unwrap();
            // Both sinks compute the same histogram over the same edge
            // data, so the combined multiset holds every pair twice.
            let mut counts: BTreeMap<(Vec<u8>, Vec<u8>), usize> = BTreeMap::new();
            for kv in report.sorted_final_outputs() {
                *counts.entry(kv).or_default() += 1;
            }
            assert_eq!(counts.len(), 3, "{mode:?}");
            assert!(counts.values().all(|&c| c == 2), "{mode:?}");
        }
    }

    #[test]
    fn malformed_edge_records_fail_the_stage_by_default() {
        let (job, pairs) = histogram_stage("decode");
        let mut b = Plan::builder();
        b.add_pair_stage(job, pairs);
        let plan = b.build().unwrap();

        // One well-formed record between two corrupt ones.
        let splits = vec![Split::new(vec![
            vec![200, 0, 0, 0, 1],
            encode_pair(b"k", &7u64.to_le_bytes()),
            b"xy".to_vec(),
        ])];
        let err = Engine::new()
            .run_plan(&plan, splits, &PlanConfig::default())
            .unwrap_err();
        assert!(
            err.to_string().contains("malformed inter-stage record"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn decode_error_threshold_allows_bounded_skips_and_reports_them() {
        let (job, pairs) = histogram_stage("decode");
        let mut b = Plan::builder();
        b.add_pair_stage(job, pairs);
        let plan = b.build().unwrap();

        let splits = vec![Split::new(vec![
            vec![200, 0, 0, 0, 1],
            encode_pair(b"k", &7u64.to_le_bytes()),
            b"xy".to_vec(),
        ])];
        let report = Engine::new()
            .run_plan(
                &plan,
                splits,
                &PlanConfig {
                    max_decode_errors: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(report.stages[0].decode_errors, 2);
        assert_eq!(report.stages[0].report.groups_out, 1);
    }

    #[test]
    fn upstream_failure_propagates_to_the_plan_error() {
        // Map fn that panics on the marker word.
        fn bad_map(record: &[u8], out: &mut dyn MapEmitter) {
            if record == b"boom" {
                panic!("injected upstream failure");
            }
            word_map(record, out);
        }
        let stage1 = JobSpec::builder("upstream")
            .map_fn(Arc::new(bad_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .build()
            .unwrap();
        let (job2, pairs2) = histogram_stage("downstream");
        let mut b = Plan::builder();
        let s1 = b.add_stage(stage1);
        let s2 = b.add_pair_stage(job2, pairs2);
        b.connect(s1, s2);
        let plan = b.build().unwrap();

        let splits = vec![Split::new(vec![b"a b".to_vec(), b"boom".to_vec()])];
        let err = Engine::new()
            .run_plan(&plan, splits, &PlanConfig::default())
            .unwrap_err();
        assert!(
            err.to_string().contains("injected upstream failure"),
            "the root cause must surface, got: {err}"
        );
    }

    #[test]
    fn plan_validation_rejects_bad_shapes() {
        // Empty plan.
        assert!(matches!(Plan::builder().build(), Err(Error::Config(_))));

        // Self-loop.
        let mut b = Plan::builder();
        let s = b.add_stage(wordcount("w"));
        b.connect(s, s);
        assert!(matches!(b.build(), Err(Error::Config(_))));

        // Duplicate edge.
        let mut b = Plan::builder();
        let s1 = b.add_stage(wordcount("w1"));
        let s2 = b.add_stage(wordcount("w2"));
        b.connect(s1, s2);
        b.connect(s1, s2);
        assert!(matches!(b.build(), Err(Error::Config(_))));

        // Two sources.
        let mut b = Plan::builder();
        let s1 = b.add_stage(wordcount("w1"));
        let s2 = b.add_stage(wordcount("w2"));
        let s3 = b.add_stage(wordcount("w3"));
        b.connect(s1, s3);
        b.connect(s2, s3);
        assert!(matches!(b.build(), Err(Error::Config(_))));

        // Cycle (no source at all reports the source-count error; a cycle
        // below a valid source reports the cycle).
        let mut b = Plan::builder();
        let s1 = b.add_stage(wordcount("w1"));
        let s2 = b.add_stage(wordcount("w2"));
        let s3 = b.add_stage(wordcount("w3"));
        b.connect(s1, s2);
        b.connect(s2, s3);
        b.connect(s3, s2);
        assert!(matches!(b.build(), Err(Error::Config(_))));

        // Interior stage that discards output.
        let mut b = Plan::builder();
        let s1 = b.add_stage(
            JobSpec::builder("w1")
                .collect_mode(CollectOutput::Discard)
                .build()
                .unwrap(),
        );
        let s2 = b.add_stage(wordcount("w2"));
        b.connect(s1, s2);
        assert!(matches!(b.build(), Err(Error::Config(_))));
    }

    #[test]
    fn pipelined_plan_shares_one_governed_pool() {
        use onepass_core::governor::MemoryPolicy;
        let engine = Engine::with_config(
            EngineConfig::builder()
                .memory_policy(MemoryPolicy::adaptive())
                .build(),
        );
        let plan = histogram_plan();
        let report = engine
            .run_plan(&plan, input(), &PlanConfig::default())
            .unwrap();
        let expected = BTreeMap::from([(4, 1), (2, 2), (1, 1)]);
        assert_eq!(hist_of(&report), expected);
        // Every stage leased from the shared plan-wide pool (each stage
        // samples the pool's high-water mark when it finishes, so later
        // stages see an equal-or-higher value).
        let hw: Vec<u64> = report
            .stages
            .iter()
            .map(|s| s.report.mem_pool_high_water)
            .collect();
        assert!(hw.iter().all(|&h| h > 0), "{hw:?}");
        assert!(hw[1] >= hw[0], "{hw:?}");
    }

    #[test]
    fn linear_matches_builder_topology() {
        let plan = Plan::linear(vec![wordcount("a"), wordcount("b"), wordcount("c")]).unwrap();
        assert_eq!(plan.stage_count(), 3);
        assert_eq!(plan.order, vec![0, 1, 2]);
        assert_eq!(plan.incoming, vec![vec![], vec![0], vec![1]]);
        assert_eq!(plan.stage_name(StageId(1)), "b");
    }
}
