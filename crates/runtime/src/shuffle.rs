//! Shuffle plumbing: how map output reaches reducers.
//!
//! Pull vs push (Table III "Shuffling"): under **pull**, a reducer sees a
//! map task's output only after the task completes — Hadoop's
//! "reducers periodically poll a centralized service asking about
//! completed mappers" (§II-A). Under **push**, mappers transmit output
//! eagerly in fine-grained batches while still running — MapReduce
//! Online's pipelining (§III-D), which is also what the paper's proposed
//! system adopts (§IV-2).
//!
//! In-process, both reduce to bounded channels; the difference the engine
//! preserves is *when* data is sent (at flush/batch boundaries vs at task
//! completion) and therefore when reducers can start incremental work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};

/// A batch of intermediate records for one reducer partition.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Originating map task id.
    pub map_task: usize,
    /// Destination reducer partition.
    pub partition: usize,
    /// Records are sorted by key (sort-spill map side).
    pub sorted: bool,
    /// Values are partial aggregate states (combine was applied), not raw
    /// values.
    pub combined: bool,
    /// The records.
    pub records: Vec<(Vec<u8>, Vec<u8>)>,
}

impl Segment {
    /// Payload bytes in this segment.
    pub fn payload_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the segment carries no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Messages received by a reduce task.
#[derive(Debug)]
pub enum ShuffleMsg {
    /// A batch of records for this reducer.
    Segment(Segment),
    /// The given map task has completed (sent to every reducer). A reduce
    /// task has all of its input once every map task has reported done.
    MapDone {
        /// Completed map task id.
        map_task: usize,
    },
}

/// Sending side of the shuffle, shared by all map workers.
#[derive(Clone)]
pub struct ShuffleTx {
    senders: Vec<Sender<ShuffleMsg>>,
    bytes: Arc<AtomicU64>,
    segments: Arc<AtomicU64>,
}

impl ShuffleTx {
    /// Route a segment to its partition's reducer.
    pub fn send_segment(&self, seg: Segment) {
        if seg.is_empty() {
            return;
        }
        self.bytes.fetch_add(seg.payload_bytes(), Ordering::Relaxed);
        self.segments.fetch_add(1, Ordering::Relaxed);
        let p = seg.partition;
        // A send error means the reducer hung up (job aborting); the map
        // worker will notice via its own channel teardown.
        let _ = self.senders[p].send(ShuffleMsg::Segment(seg));
    }

    /// Announce a completed map task to every reducer.
    pub fn map_done(&self, map_task: usize) {
        for s in &self.senders {
            let _ = s.send(ShuffleMsg::MapDone { map_task });
        }
    }

    /// Total payload bytes shuffled so far.
    pub fn shuffled_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total segments shuffled so far.
    pub fn shuffled_segments(&self) -> u64 {
        self.segments.load(Ordering::Relaxed)
    }
}

/// Build the shuffle fabric for `reducers` partitions. Returns the shared
/// sender plus one receiver per reducer. `depth` bounds each reducer's
/// queue — the backpressure that makes push shuffling adaptive ("if the
/// reducers become overloaded, the mappers will [...] wait until reducers
/// are able to keep up again", §III-D).
pub fn shuffle_fabric(reducers: usize, depth: usize) -> (ShuffleTx, Vec<Receiver<ShuffleMsg>>) {
    let mut senders = Vec::with_capacity(reducers);
    let mut receivers = Vec::with_capacity(reducers);
    for _ in 0..reducers {
        let (tx, rx) = bounded(depth);
        senders.push(tx);
        receivers.push(rx);
    }
    (
        ShuffleTx {
            senders,
            bytes: Arc::new(AtomicU64::new(0)),
            segments: Arc::new(AtomicU64::new(0)),
        },
        receivers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(partition: usize, n: usize) -> Segment {
        Segment {
            map_task: 0,
            partition,
            sorted: false,
            combined: false,
            records: (0..n)
                .map(|i| (format!("k{i}").into_bytes(), b"v".to_vec()))
                .collect(),
        }
    }

    #[test]
    fn segments_route_by_partition() {
        let (tx, rxs) = shuffle_fabric(2, 16);
        tx.send_segment(seg(0, 3));
        tx.send_segment(seg(1, 5));
        match rxs[0].recv().unwrap() {
            ShuffleMsg::Segment(s) => assert_eq!(s.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
        match rxs[1].recv().unwrap() {
            ShuffleMsg::Segment(s) => assert_eq!(s.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn map_done_broadcasts() {
        let (tx, rxs) = shuffle_fabric(3, 4);
        tx.map_done(7);
        for rx in &rxs {
            match rx.recv().unwrap() {
                ShuffleMsg::MapDone { map_task } => assert_eq!(map_task, 7),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn byte_accounting() {
        let (tx, _rxs) = shuffle_fabric(1, 16);
        tx.send_segment(seg(0, 4)); // keys "k0".."k3" (2 B) + "v" (1 B)
        assert_eq!(tx.shuffled_bytes(), 4 * 3);
        assert_eq!(tx.shuffled_segments(), 1);
        // Empty segments are dropped silently.
        tx.send_segment(seg(0, 0));
        assert_eq!(tx.shuffled_segments(), 1);
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rxs) = shuffle_fabric(1, 1);
        tx.send_segment(seg(0, 1));
        let t = std::thread::spawn(move || {
            // This send must block until the receiver drains one message.
            tx.send_segment(seg(0, 1));
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !t.is_finished(),
            "bounded channel should apply backpressure"
        );
        let _ = rxs[0].recv().unwrap();
        t.join().unwrap();
    }
}
