//! Shuffle plumbing: how map output reaches reducers.
//!
//! Pull vs push (Table III "Shuffling"): under **pull**, a reducer sees a
//! map task's output only after the task completes — Hadoop's
//! "reducers periodically poll a centralized service asking about
//! completed mappers" (§II-A). Under **push**, mappers transmit output
//! eagerly in fine-grained batches while still running — MapReduce
//! Online's pipelining (§III-D), which is also what the paper's proposed
//! system adopts (§IV-2).
//!
//! In-process, both reduce to bounded channels; the difference the engine
//! preserves is *when* data is sent (at flush/batch boundaries vs at task
//! completion) and therefore when reducers can start incremental work.
//!
//! Every message is stamped with the producing **attempt**: when the
//! driver retries a failed map task or races a speculative clone against a
//! straggler, two attempts of the same logical task may both emit
//! segments. Reducers dedup by `(map_task, attempt)`, committing exactly
//! one attempt per task (the one whose `MapDone` arrives first), so
//! re-execution never double-counts records.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use onepass_core::governor::MemoryGovernor;
use onepass_core::SegmentBuf;

/// A batch of intermediate records for one reducer partition.
///
/// Records live in a shared flat arena ([`SegmentBuf`]): cloning a segment
/// (e.g. to retain it for reduce-retry replay) bumps two `Arc`s instead of
/// copying every key and value.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Originating map task id.
    pub map_task: usize,
    /// Execution attempt of the originating map task (0 = first run).
    pub attempt: usize,
    /// Destination reducer partition.
    pub partition: usize,
    /// Records are sorted by key (sort-spill map side).
    pub sorted: bool,
    /// Values are partial aggregate states (combine was applied), not raw
    /// values.
    pub combined: bool,
    /// The records, backed by a flat arena.
    pub records: SegmentBuf,
}

impl Segment {
    /// Payload bytes in this segment.
    pub fn payload_bytes(&self) -> u64 {
        self.records.payload_bytes() as u64
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the segment carries no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Messages received by a reduce task. `Clone` because the TCP
/// coordinator retains a per-partition log of delivered messages so it can
/// replay a partition onto a live worker when its owner dies.
#[derive(Debug, Clone)]
pub enum ShuffleMsg {
    /// A batch of records for this reducer.
    Segment(Segment),
    /// The given map task attempt has completed (sent to every reducer).
    /// A reduce task has all of its input once every map task has a
    /// committed attempt.
    MapDone {
        /// Completed map task id.
        map_task: usize,
        /// The attempt that completed; reducers commit the first attempt
        /// whose `MapDone` they see and discard segments from any other.
        attempt: usize,
    },
    /// The driver is aborting the job (retries exhausted); reducers stop
    /// immediately instead of waiting for map tasks that will never
    /// finish.
    Abort,
    /// Streamed-input jobs (pipelined plan edges) don't know their map
    /// task count up front: the scheduler broadcasts it once the upstream
    /// feed closes. Reducers treat the total as unknown until this
    /// arrives, then finish once that many `MapDone`s have committed.
    InputExhausted {
        /// Final number of map tasks in the job.
        total_map_tasks: usize,
    },
}

/// Pressure-driven shrink of the effective shuffle queue depth.
///
/// When the memory governor reports pool utilization above its high-water
/// fraction, map-side pushes stop filling reducer queues to their full
/// `channel_depth` and instead wait for them to drain below a shrunken
/// depth. Reducers under memory pressure are usually pressure *sources*
/// (large in-flight hash state); slowing the mappers gives the governor's
/// rebalancing and shedding a chance to act before more segments pile up
/// — MapReduce Online's "wait until reducers are able to keep up again"
/// (§III-D), extended from queue-full to memory-pressure.
#[derive(Clone)]
pub struct PressureGate {
    governor: MemoryGovernor,
    /// Effective queue depth while over high water.
    shrunk_depth: usize,
    stalls: Arc<AtomicU64>,
    /// Live mirror of `stalls` in the metrics registry, when enabled.
    stall_metric: Option<onepass_core::obs::Counter>,
}

impl PressureGate {
    /// Max iterations of the 50µs wait loop per segment (~50ms cap), so a
    /// stuck governor can never deadlock the map side.
    const MAX_WAIT_ITERS: u32 = 1000;

    /// Gate on `governor` pressure with a shrunken queue depth of
    /// `depth / 8` (min 1). Also used by the plan layer to gate
    /// cross-stage edge channels on the shared governor.
    pub(crate) fn new(governor: MemoryGovernor, depth: usize) -> Self {
        PressureGate {
            governor,
            shrunk_depth: (depth / 8).max(1),
            stalls: Arc::new(AtomicU64::new(0)),
            stall_metric: None,
        }
    }

    /// Also mirror each stall into a live metrics counter.
    pub(crate) fn with_stall_metric(mut self, counter: onepass_core::obs::Counter) -> Self {
        self.stall_metric = Some(counter);
        self
    }

    /// Wait (bounded) while the pool is over high water and `sender`'s
    /// queue is at or above the shrunken depth. Counts at most one stall
    /// per gated segment. Generic over the message type so shuffle
    /// segment channels and plan edge channels share one gate.
    pub fn admit<T>(&self, sender: &Sender<T>) {
        let mut stalled = false;
        for _ in 0..Self::MAX_WAIT_ITERS {
            if !self.governor.over_high_water() || sender.len() < self.shrunk_depth {
                break;
            }
            if !stalled {
                stalled = true;
                self.stalls.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = &self.stall_metric {
                    c.inc(1);
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
}

/// Sending side of the shuffle, shared by all map workers.
///
/// All volume accounting (records / bytes / segments) lives here, *above*
/// the [`SegmentSink`](crate::transport::SegmentSink) that actually moves
/// the data — so `shuffled_records`/`shuffled_bytes` in a
/// [`JobReport`](crate::report::JobReport) are transport-agnostic: the
/// same job shuffles the same counted volume whether the sink is the
/// in-proc channel fabric or a TCP connection.
#[derive(Clone)]
pub struct ShuffleTx {
    sink: Arc<dyn crate::transport::SegmentSink>,
    bytes: Arc<AtomicU64>,
    records: Arc<AtomicU64>,
    segments: Arc<AtomicU64>,
    pressure: Option<PressureGate>,
    /// Live registry mirrors of `bytes` / `segments`, when enabled.
    obs: Option<(onepass_core::obs::Counter, onepass_core::obs::Counter)>,
}

impl ShuffleTx {
    /// Wrap an arbitrary sink in fresh accounting. Used by the in-proc
    /// fabric constructor and by worker processes wiring map tasks to a
    /// TCP connection back to the coordinator.
    pub(crate) fn over(sink: Arc<dyn crate::transport::SegmentSink>) -> Self {
        ShuffleTx {
            sink,
            bytes: Arc::new(AtomicU64::new(0)),
            records: Arc::new(AtomicU64::new(0)),
            segments: Arc::new(AtomicU64::new(0)),
            pressure: None,
            obs: None,
        }
    }

    /// Gate map-side pushes on `governor` pool pressure: while utilization
    /// is over the governor's high-water fraction, pushes treat each
    /// reducer queue as if its depth were `depth / 8` (min 1). Call before
    /// cloning the tx out to map workers.
    pub fn with_pressure(mut self, governor: MemoryGovernor, depth: usize) -> Self {
        self.pressure = Some(PressureGate::new(governor, depth));
        self
    }

    /// Mirror shuffle volume (and, if a pressure gate is installed,
    /// stalls) into live metrics counters. Call after
    /// [`with_pressure`](Self::with_pressure) and before cloning the tx
    /// out to map workers.
    pub(crate) fn with_metrics(
        mut self,
        bytes: onepass_core::obs::Counter,
        segments: onepass_core::obs::Counter,
        stalls: onepass_core::obs::Counter,
    ) -> Self {
        self.obs = Some((bytes, segments));
        self.pressure = self.pressure.map(|g| g.with_stall_metric(stalls));
        self
    }

    /// Route a segment to its partition's reducer.
    pub fn send_segment(&self, seg: Segment) {
        if seg.is_empty() {
            return;
        }
        self.bytes.fetch_add(seg.payload_bytes(), Ordering::Relaxed);
        self.records.fetch_add(seg.len() as u64, Ordering::Relaxed);
        self.segments.fetch_add(1, Ordering::Relaxed);
        if let Some((bytes, segments)) = &self.obs {
            bytes.inc(seg.payload_bytes());
            segments.inc(1);
        }
        self.sink.send_segment(seg, self.pressure.as_ref());
    }

    /// Map-side sends that stalled at least once on memory pressure.
    pub fn backpressure_stalls(&self) -> u64 {
        self.pressure
            .as_ref()
            .map_or(0, |g| g.stalls.load(Ordering::Relaxed))
    }

    /// Announce a completed map task attempt to every reducer.
    pub fn map_done(&self, map_task: usize, attempt: usize) {
        self.sink.map_done(map_task, attempt);
    }

    /// Tell every reducer the job is aborting; they unblock and return.
    pub fn abort(&self) {
        self.sink.abort();
    }

    /// Tell every reducer how many map tasks the job ended up with. Sent
    /// by the scheduler when a streamed split feed closes; reducers that
    /// started without a known total finish once this many map tasks have
    /// committed.
    pub fn input_exhausted(&self, total_map_tasks: usize) {
        self.sink.input_exhausted(total_map_tasks);
    }

    /// Total payload bytes shuffled so far.
    pub fn shuffled_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total records shuffled so far. Counted at the fabric (not per map
    /// task) so worker-scoped in-node combine flushes are included.
    pub fn shuffled_records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Total segments shuffled so far.
    pub fn shuffled_segments(&self) -> u64 {
        self.segments.load(Ordering::Relaxed)
    }
}

/// Build the shuffle fabric for `reducers` partitions. Returns the shared
/// sender plus one receiver per reducer. `depth` bounds each reducer's
/// queue — the backpressure that makes push shuffling adaptive ("if the
/// reducers become overloaded, the mappers will [...] wait until reducers
/// are able to keep up again", §III-D).
pub fn shuffle_fabric(reducers: usize, depth: usize) -> (ShuffleTx, Vec<Receiver<ShuffleMsg>>) {
    let mut senders = Vec::with_capacity(reducers);
    let mut receivers = Vec::with_capacity(reducers);
    for _ in 0..reducers {
        let (tx, rx) = bounded(depth);
        senders.push(tx);
        receivers.push(rx);
    }
    let sink = Arc::new(crate::transport::inproc::InProcSink::new(senders));
    (ShuffleTx::over(sink), receivers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(partition: usize, n: usize) -> Segment {
        let mut b = onepass_core::SegmentBufBuilder::new();
        for i in 0..n {
            b.push(format!("k{i}").as_bytes(), b"v");
        }
        Segment {
            map_task: 0,
            attempt: 0,
            partition,
            sorted: false,
            combined: false,
            records: b.finish(),
        }
    }

    #[test]
    fn segments_route_by_partition() {
        let (tx, rxs) = shuffle_fabric(2, 16);
        tx.send_segment(seg(0, 3));
        tx.send_segment(seg(1, 5));
        match rxs[0].recv().unwrap() {
            ShuffleMsg::Segment(s) => assert_eq!(s.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
        match rxs[1].recv().unwrap() {
            ShuffleMsg::Segment(s) => assert_eq!(s.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn map_done_broadcasts_with_attempt() {
        let (tx, rxs) = shuffle_fabric(3, 4);
        tx.map_done(7, 2);
        for rx in &rxs {
            match rx.recv().unwrap() {
                ShuffleMsg::MapDone { map_task, attempt } => {
                    assert_eq!(map_task, 7);
                    assert_eq!(attempt, 2);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn abort_broadcasts() {
        let (tx, rxs) = shuffle_fabric(2, 4);
        tx.abort();
        for rx in &rxs {
            assert!(matches!(rx.recv().unwrap(), ShuffleMsg::Abort));
        }
    }

    #[test]
    fn byte_accounting() {
        let (tx, _rxs) = shuffle_fabric(1, 16);
        tx.send_segment(seg(0, 4)); // keys "k0".."k3" (2 B) + "v" (1 B)
        assert_eq!(tx.shuffled_bytes(), 4 * 3);
        assert_eq!(tx.shuffled_segments(), 1);
        // Empty segments are dropped silently.
        tx.send_segment(seg(0, 0));
        assert_eq!(tx.shuffled_segments(), 1);
    }

    #[test]
    fn pressure_gate_stalls_over_high_water_and_releases_under() {
        use onepass_core::governor::{MemoryGovernor, MemoryPolicy};

        let MemoryPolicy::Adaptive { policy, high_water } = MemoryPolicy::adaptive() else {
            unreachable!()
        };
        let gov = MemoryGovernor::new(1000, policy, high_water);
        let (tx, rxs) = shuffle_fabric(1, 16);
        let tx = tx.with_pressure(gov.clone(), 16);

        // Fill the queue past the shrunken depth (16 / 8 = 2) with no
        // pressure: nothing stalls.
        for _ in 0..4 {
            tx.send_segment(seg(0, 1));
        }
        assert_eq!(tx.backpressure_stalls(), 0);

        // Push the pool over high water; the next send stalls (bounded)
        // because the queue is already >= shrunk depth.
        let lease = gov.lease(900);
        assert!(lease.grant(900).is_ok());
        assert!(gov.over_high_water());
        tx.send_segment(seg(0, 1));
        assert_eq!(tx.backpressure_stalls(), 1);

        // Release the pressure: sends flow freely again.
        lease.release(900);
        tx.send_segment(seg(0, 1));
        assert_eq!(tx.backpressure_stalls(), 1);
        assert_eq!(rxs[0].len(), 6);
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        // Deterministic, no wall-clock sleeps: with a depth-1 channel the
        // first send fills the queue; a second send on a helper thread
        // must park inside the channel until this thread drains one
        // message. The barrier guarantees the helper has *started* its
        // send before we sample the queue, and the queue length (still 1)
        // proves the send hasn't gone through.
        let (tx, rxs) = shuffle_fabric(1, 1);
        tx.send_segment(seg(0, 1));
        assert_eq!(rxs[0].len(), 1, "queue full before helper starts");

        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let b2 = barrier.clone();
        let t = std::thread::spawn(move || {
            b2.wait();
            // Blocks until the main thread drains one message.
            tx.send_segment(seg(0, 1));
        });

        barrier.wait();
        // The helper is now at (or past) the blocking send; the queue can
        // only hold one message, so its segment cannot have been accepted.
        assert_eq!(rxs[0].len(), 1, "second send must not fit yet");
        let _ = rxs[0].recv().unwrap();
        // recv freed one slot; the helper's send completes and the second
        // segment becomes observable with a blocking recv.
        let _ = rxs[0].recv().unwrap();
        t.join().unwrap();
        assert!(rxs[0].is_empty());
    }
}
