//! Stage-scoped live-metric handles over [`onepass_core::obs`].
//!
//! When [`EngineConfig::metrics`](crate::EngineConfig::metrics) carries a
//! [`MetricsRegistry`], the executor builds one [`StageTelemetry`] per
//! executed job (per plan stage), labeled `stage=<job name>`, and threads
//! its handles into the scheduler loop, the shuffle fabric, and the
//! reduce sinks. Without a registry nothing is built and every probe site
//! costs one `Option` branch — mirroring how tracing is gated.
//!
//! Metric names follow `onepass_<layer>_<name>` (see `DESIGN.md`
//! "Observability" for the full catalogue). Stages that share a job name
//! share label sets and therefore series; give stages distinct names when
//! that matters.

use std::time::Duration;

use onepass_core::metrics::Profile;
use onepass_core::obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::map_task::MapTaskStats;

/// Live-metric handles for one executing job / plan stage.
#[derive(Debug, Clone)]
pub(crate) struct StageTelemetry {
    registry: MetricsRegistry,
    stage: String,
    /// `onepass_stage_splits_total{stage}` — input splits known so far.
    pub splits_total: Gauge,
    /// `onepass_stage_splits_done{stage}` — splits with a winning attempt.
    pub splits_done: Gauge,
    /// `onepass_stage_progress_ratio{stage}` — done / total, 0..=1.
    pub progress: Gauge,
    /// `onepass_stage_stragglers_total{stage}` — speculative clones launched.
    pub stragglers: Counter,
    /// `onepass_stage_map_attempts_total{stage}` — attempts enqueued,
    /// including retries and clones.
    pub map_attempts: Counter,
    /// `onepass_stage_failed_attempts_total{stage}` — attempts that errored.
    pub failed_attempts: Counter,
    /// `onepass_engine_records_in_total{stage}` — map input records.
    pub records_in: Counter,
    /// `onepass_engine_records_out_total{stage}` — sink emissions.
    pub records_out: Counter,
    /// `onepass_engine_shuffle_bytes_total{stage}` — shuffled payload bytes.
    pub shuffle_bytes: Counter,
    /// `onepass_engine_shuffle_segments_total{stage}` — shuffle segments.
    pub shuffle_segments: Counter,
    /// `onepass_engine_backpressure_stalls_total{stage}` — sends that
    /// stalled on memory pressure (shuffle pushes and plan edges).
    pub backpressure_stalls: Counter,
    /// `onepass_engine_combine_ratio{stage}` — shuffled / emitted records
    /// per map task (1.0 = combiner saved nothing).
    pub combine_ratio: Histogram,
    /// `onepass_innode_combine_ratio{stage}` — shuffled / absorbed records
    /// per worker combine-table flush (in-node combiner effectiveness).
    pub innode_combine_ratio: Histogram,
    /// `onepass_plan_ttfa_seconds{stage}` — time to each partition's first
    /// final answer, measured against the job (or plan) clock.
    pub ttfa: Histogram,
}

impl StageTelemetry {
    /// Register (or re-attach to) the stage's metric set.
    pub fn new(registry: &MetricsRegistry, stage: &str) -> Self {
        let l: &[(&str, &str)] = &[("stage", stage)];
        StageTelemetry {
            splits_total: registry.gauge("onepass_stage_splits_total", l),
            splits_done: registry.gauge("onepass_stage_splits_done", l),
            progress: registry.gauge("onepass_stage_progress_ratio", l),
            stragglers: registry.counter("onepass_stage_stragglers_total", l),
            map_attempts: registry.counter("onepass_stage_map_attempts_total", l),
            failed_attempts: registry.counter("onepass_stage_failed_attempts_total", l),
            records_in: registry.counter("onepass_engine_records_in_total", l),
            records_out: registry.counter("onepass_engine_records_out_total", l),
            shuffle_bytes: registry.counter("onepass_engine_shuffle_bytes_total", l),
            shuffle_segments: registry.counter("onepass_engine_shuffle_segments_total", l),
            backpressure_stalls: registry.counter("onepass_engine_backpressure_stalls_total", l),
            combine_ratio: registry.histogram("onepass_engine_combine_ratio", l),
            innode_combine_ratio: registry.histogram("onepass_innode_combine_ratio", l),
            ttfa: registry.histogram("onepass_plan_ttfa_seconds", l),
            registry: registry.clone(),
            stage: stage.to_string(),
        }
    }

    /// Update the progress gauges after a completion or new-split event.
    pub fn set_progress(&self, done: usize, total: usize) {
        self.splits_done.set(done as f64);
        self.splits_total.set(total as f64);
        if total > 0 {
            self.progress.set(done as f64 / total as f64);
        }
    }

    /// Publish one finished map attempt's stats — called live from the
    /// scheduler loop as each task completes, not at end of job.
    pub fn on_map_finished(&self, stats: &MapTaskStats) {
        self.records_in.inc(stats.input_records);
        if stats.output_records > 0 {
            self.combine_ratio
                .observe(stats.shuffled_records as f64 / stats.output_records as f64);
        }
        self.publish_profile("map", &stats.profile);
    }

    /// Fold a task profile into the per-phase busy-time counters
    /// (`onepass_engine_phase_micros_total{stage,side,phase}`).
    pub fn publish_profile(&self, side: &str, profile: &Profile) {
        for (phase, d) in profile.phases() {
            self.registry
                .counter(
                    "onepass_engine_phase_micros_total",
                    &[
                        ("phase", phase.label()),
                        ("side", side),
                        ("stage", &self.stage),
                    ],
                )
                .inc(d.as_micros() as u64);
        }
    }

    /// End-of-run governor state gauges.
    pub fn publish_governor(
        &self,
        rebalances: u64,
        sheds: u64,
        shed_bytes: u64,
        pool_high_water: u64,
    ) {
        let l: &[(&str, &str)] = &[("stage", &self.stage)];
        self.registry
            .gauge("onepass_governor_rebalances", l)
            .set(rebalances as f64);
        self.registry
            .gauge("onepass_governor_sheds", l)
            .set(sheds as f64);
        self.registry
            .gauge("onepass_governor_shed_bytes", l)
            .set(shed_bytes as f64);
        self.registry
            .gauge("onepass_governor_pool_high_water_bytes", l)
            .set(pool_high_water as f64);
    }

    /// End-of-run wall clock gauge (`onepass_job_wall_seconds{stage}`).
    pub fn publish_wall(&self, wall: Duration) {
        self.registry
            .gauge("onepass_job_wall_seconds", &[("stage", &self.stage)])
            .set(wall.as_secs_f64());
    }
}

/// Buffered sink-side instruments for one reduce partition.
///
/// Emission counting stays a local `u64`, flushed to the shared atomic
/// every [`Self::FLUSH_EVERY`] emissions (and once at end of task via
/// [`flush`](Self::flush)), so the per-record hot path costs no atomics
/// — the <2% overhead budget enforced by `bench_metrics_overhead`.
#[derive(Debug)]
pub(crate) struct SinkObs {
    ttfa: Histogram,
    records_out: Counter,
    pending: u64,
    ttfa_seen: bool,
}

impl SinkObs {
    const FLUSH_EVERY: u64 = 1024;

    /// Instruments for one partition of `telemetry`'s stage.
    pub fn new(telemetry: &StageTelemetry) -> Self {
        SinkObs {
            ttfa: telemetry.ttfa.clone(),
            records_out: telemetry.records_out.clone(),
            pending: 0,
            ttfa_seen: false,
        }
    }

    /// Record one sink emission at `at` since the job/plan clock.
    #[inline]
    pub fn on_emit(&mut self, is_final: bool, at: Duration) {
        self.pending += 1;
        if self.pending >= Self::FLUSH_EVERY {
            self.records_out.inc(self.pending);
            self.pending = 0;
        }
        if is_final && !self.ttfa_seen {
            self.ttfa_seen = true;
            self.ttfa.observe(at.as_secs_f64());
        }
    }

    /// Flush the locally-buffered emission count to the shared counter.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.records_out.inc(self.pending);
            self.pending = 0;
        }
    }
}
