//! Fair-share admission control for the serving front-end.
//!
//! Admission answers one question: *may this tenant open sessions right
//! now, and with how much memory?* The pool is fixed; the fair share is
//! `pool / max_tenants` (floored), so a full house of tenants exactly
//! subscribes the pool and the governor's spill policies arbitrate the
//! inevitable overcommit *within* leases rather than admission
//! over-promising. When the house is full, subscribers wait (bounded
//! queue, FIFO) until a seat frees; beyond that they are rejected
//! outright — load shedding at the front door instead of collapse inside.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Admission configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Concurrent tenant cap — also the denominator of the fair share.
    pub max_tenants: usize,
    /// Tenants allowed to wait for a seat before outright rejection.
    pub max_waiting: usize,
    /// Floor on the per-tenant lease, bytes (tiny pools still admit).
    pub min_lease_bytes: usize,
    /// How long a queued tenant waits before giving up.
    pub wait_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_tenants: 1024,
            max_waiting: 256,
            min_lease_bytes: 16 * 1024,
            wait_timeout: Duration::from_secs(10),
        }
    }
}

/// Why a tenant was turned away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// House and waiting queue both full.
    QueueFull,
    /// Waited `wait_timeout` without a seat freeing up.
    TimedOut,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull => write!(f, "admission queue full"),
            AdmissionError::TimedOut => write!(f, "admission wait timed out"),
        }
    }
}

#[derive(Debug, Default)]
struct Seats {
    active: usize,
    waiting: usize,
}

/// Counters the metrics layer mirrors.
#[derive(Debug, Default, Clone, Copy)]
pub struct AdmissionCounters {
    /// Tenants admitted, ever.
    pub admitted: u64,
    /// Tenants that had to queue before admission.
    pub queued: u64,
    /// Tenants rejected (queue full or timed out).
    pub rejected: u64,
}

/// A ticket held while a tenant is active; releasing it frees the seat.
/// (Not RAII — the shard worker releases explicitly when the tenant
/// closes or detaches, keeping the controller `Send + Sync` simple.)
#[derive(Debug)]
pub struct FairShareAdmission {
    config: AdmissionConfig,
    pool_bytes: usize,
    seats: Mutex<(Seats, AdmissionCounters)>,
    freed: Condvar,
}

impl FairShareAdmission {
    /// Control admission to `pool_bytes` of governor pool.
    pub fn new(config: AdmissionConfig, pool_bytes: usize) -> FairShareAdmission {
        assert!(config.max_tenants > 0, "max_tenants must be > 0");
        FairShareAdmission {
            config,
            pool_bytes,
            seats: Mutex::new((Seats::default(), AdmissionCounters::default())),
            freed: Condvar::new(),
        }
    }

    /// The per-tenant fair-share lease, bytes.
    pub fn fair_share_bytes(&self) -> usize {
        (self.pool_bytes / self.config.max_tenants).max(self.config.min_lease_bytes)
    }

    /// Take a seat, waiting (bounded) if the house is full. On `Ok`, the
    /// caller owns one seat and must eventually call [`release`].
    ///
    /// [`release`]: FairShareAdmission::release
    pub fn admit(&self) -> Result<usize, AdmissionError> {
        let mut guard = self.seats.lock().expect("admission lock");
        if guard.0.active < self.config.max_tenants {
            guard.0.active += 1;
            guard.1.admitted += 1;
            return Ok(self.fair_share_bytes());
        }
        if guard.0.waiting >= self.config.max_waiting {
            guard.1.rejected += 1;
            return Err(AdmissionError::QueueFull);
        }
        guard.0.waiting += 1;
        guard.1.queued += 1;
        let deadline = Instant::now() + self.config.wait_timeout;
        loop {
            let now = Instant::now();
            if guard.0.active < self.config.max_tenants {
                guard.0.waiting -= 1;
                guard.0.active += 1;
                guard.1.admitted += 1;
                return Ok(self.fair_share_bytes());
            }
            if now >= deadline {
                guard.0.waiting -= 1;
                guard.1.rejected += 1;
                return Err(AdmissionError::TimedOut);
            }
            let (g, timeout) = self
                .freed
                .wait_timeout(guard, deadline - now)
                .expect("admission lock");
            guard = g;
            if timeout.timed_out() && guard.0.active >= self.config.max_tenants {
                guard.0.waiting -= 1;
                guard.1.rejected += 1;
                return Err(AdmissionError::TimedOut);
            }
        }
    }

    /// Free a seat (tenant closed or detached); wakes one waiter.
    pub fn release(&self) {
        let mut guard = self.seats.lock().expect("admission lock");
        guard.0.active = guard.0.active.saturating_sub(1);
        drop(guard);
        self.freed.notify_one();
    }

    /// Active tenants right now.
    pub fn active(&self) -> usize {
        self.seats.lock().expect("admission lock").0.active
    }

    /// Counter snapshot.
    pub fn counters(&self) -> AdmissionCounters {
        self.seats.lock().expect("admission lock").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tiny(max_tenants: usize, max_waiting: usize, timeout_ms: u64) -> FairShareAdmission {
        FairShareAdmission::new(
            AdmissionConfig {
                max_tenants,
                max_waiting,
                min_lease_bytes: 1024,
                wait_timeout: Duration::from_millis(timeout_ms),
            },
            1 << 20,
        )
    }

    #[test]
    fn fair_share_divides_the_pool() {
        let adm = FairShareAdmission::new(
            AdmissionConfig {
                max_tenants: 8,
                ..Default::default()
            },
            8 << 20,
        );
        assert_eq!(adm.fair_share_bytes(), 1 << 20);
        // Tiny pool is floored.
        let adm = tiny(1024, 0, 1);
        assert_eq!(adm.fair_share_bytes(), 1024);
    }

    #[test]
    fn seats_cap_queue_cap_and_release() {
        let adm = tiny(2, 0, 10);
        adm.admit().unwrap();
        adm.admit().unwrap();
        assert_eq!(adm.admit(), Err(AdmissionError::QueueFull));
        adm.release();
        adm.admit().unwrap();
        assert_eq!(adm.active(), 2);
        let c = adm.counters();
        assert_eq!(c.admitted, 3);
        assert_eq!(c.rejected, 1);
    }

    #[test]
    fn queued_tenant_gets_the_freed_seat() {
        let adm = Arc::new(tiny(1, 4, 2000));
        adm.admit().unwrap();
        let a2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || a2.admit());
        // Give the waiter time to park, then free the seat.
        std::thread::sleep(Duration::from_millis(50));
        adm.release();
        assert!(waiter.join().unwrap().is_ok());
        assert_eq!(adm.counters().queued, 1);
    }

    #[test]
    fn queued_tenant_times_out() {
        let adm = tiny(1, 4, 30);
        adm.admit().unwrap();
        assert_eq!(adm.admit(), Err(AdmissionError::TimedOut));
    }
}
