//! One tenant's live query state: a cascade of [`StreamSession`]s plus a
//! dead-letter queue.
//!
//! Stage 0 stays open against the shared ingest stream and produces the
//! tenant's *early* answers (the paper's incremental-hash payoff). At
//! close, each stage's finals pour through the connecting
//! [`PairMap`] into the next stage's session — the
//! streaming equivalent of a pipelined plan edge — and the last stage's
//! finals are the tenant's answer.
//!
//! Poison containment: a record whose map function panics is isolated by
//! re-feeding the offending batch record-by-record (the map phase runs
//! before any grouper state is touched, so a map panic leaves the session
//! clean), quarantined in the DLQ, and retried at later feed boundaries.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use onepass_core::error::Result;
use onepass_groupby::{EmitKind, OpStats};

use crate::plan::PairMap;
use crate::stream::{SessionOptions, StreamAnswer, StreamSession};

use super::dlq::{DeadLetterQueue, DlqConfig};
use super::query::StreamingQuery;

/// Everything a tenant's close produces.
#[derive(Debug)]
pub struct TenantClose {
    /// Final answers of the cascade's last stage.
    pub answers: Vec<StreamAnswer>,
    /// Per-partition operator stats across all stages.
    pub stats: Vec<OpStats>,
    /// Records fed into stage 0 (poisons excluded).
    pub records_in: u64,
    /// Records quarantined, ever.
    pub dlq_poisoned: u64,
    /// Quarantined records that recovered on retry.
    pub dlq_recovered: u64,
    /// Quarantined records that exhausted their retries.
    pub dlq_dead: u64,
}

/// A tenant's open query: session cascade + DLQ.
pub struct TenantSession {
    id: String,
    query_name: String,
    sessions: Vec<StreamSession>,
    routes: Vec<Arc<dyn PairMap>>,
    dlq: DeadLetterQueue,
}

impl std::fmt::Debug for TenantSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantSession")
            .field("id", &self.id)
            .field("query", &self.query_name)
            .field("stages", &self.sessions.len())
            .field("dlq_pending", &self.dlq.pending())
            .finish()
    }
}

impl TenantSession {
    /// Open the cascade for `query` with the given session options (the
    /// serving layer passes a governor lease share here).
    pub fn open(
        id: &str,
        query_name: &str,
        query: &StreamingQuery,
        opts: &SessionOptions,
        dlq: DlqConfig,
    ) -> Result<TenantSession> {
        super::install_poison_panic_filter();
        Ok(TenantSession {
            id: id.to_string(),
            query_name: query_name.to_string(),
            sessions: query.open(opts)?,
            routes: query.routes.clone(),
            dlq: DeadLetterQueue::new(dlq),
        })
    }

    /// Tenant id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Query name this tenant subscribed to.
    pub fn query_name(&self) -> &str {
        &self.query_name
    }

    /// Dead-letter queue state.
    pub fn dlq(&self) -> &DeadLetterQueue {
        &self.dlq
    }

    /// Total bytes of governor lease this tenant holds across stages.
    pub fn lease_bytes(&self) -> usize {
        self.sessions.iter().map(|s| s.budget_bytes()).sum()
    }

    /// Governor-requested sheds serviced across all stages.
    pub fn shed_stats(&self) -> (u64, u64) {
        self.sessions.iter().fold((0, 0), |(n, b), s| {
            let (sn, sb) = s.shed_stats();
            (n + sn, b + sb)
        })
    }

    /// Feed an ingest batch into stage 0; returns any early answers.
    /// Poison records (map panics) are quarantined, not fatal; earlier
    /// quarantined records get one bounded retry per feed boundary.
    pub fn feed(&mut self, records: &[Vec<u8>]) -> Result<Vec<StreamAnswer>> {
        let mut answers = Vec::new();
        let head = &mut self.sessions[0];
        let fed = quiet_catch(|| head.feed(records.iter().map(|r| r.as_slice())));
        match fed {
            Ok(res) => answers.extend(res?),
            Err(()) => {
                // A poison is somewhere in the batch. The map phase runs
                // entirely before groupers are touched, so the panicked
                // feed left no partial state — isolate per record.
                for rec in records {
                    match quiet_catch(|| head.feed(std::iter::once(rec.as_slice()))) {
                        Ok(Ok(a)) => answers.extend(a),
                        Ok(Err(e)) => return Err(e),
                        Err(()) => self.dlq.quarantine(rec.clone()),
                    }
                }
            }
        }
        // Bounded retry of earlier poisons at this feed boundary.
        let head = &mut self.sessions[0];
        let dlq = &mut self.dlq;
        dlq.retry_sweep(
            |rec| match quiet_catch(|| head.feed(std::iter::once(rec))) {
                Ok(Ok(a)) => {
                    answers.extend(a);
                    true
                }
                _ => false,
            },
        );
        Ok(answers)
    }

    /// Close the cascade: drain the DLQ's remaining retries, then pour
    /// each stage's finals into the next, returning the last stage's
    /// finals plus stats and DLQ accounting.
    pub fn close(mut self) -> Result<TenantClose> {
        {
            let head = &mut self.sessions[0];
            self.dlq
                .drain(|rec| matches!(quiet_catch(|| head.feed(std::iter::once(rec))), Ok(Ok(_))));
        }
        let mut stats = Vec::new();
        let mut stages = self.sessions.into_iter();
        let mut routes = self.routes.into_iter();
        let mut current = stages.next().expect("cascade has at least one stage");
        let records_in = current.records_in();
        loop {
            let (answers, st) = current.close()?;
            stats.extend(st);
            let finals: Vec<StreamAnswer> = answers
                .into_iter()
                .filter(|a| a.kind == EmitKind::Final)
                .collect();
            match stages.next() {
                None => {
                    return Ok(TenantClose {
                        answers: finals,
                        stats,
                        records_in,
                        dlq_poisoned: self.dlq.poisoned_total(),
                        dlq_recovered: self.dlq.recovered_total(),
                        dlq_dead: self.dlq.dead_total(),
                    });
                }
                Some(mut next) => {
                    let route = routes.next().expect("one route per cascade edge");
                    next.feed_pairs(
                        finals
                            .iter()
                            .map(|a| (a.key.as_slice(), a.value.as_slice())),
                        route.as_ref(),
                    )?;
                    current = next;
                }
            }
        }
    }
}

/// Run `f`, converting a panic into `Err(())` while suppressing the
/// default panic message (the filter installed by
/// [`install_poison_panic_filter`](super::install_poison_panic_filter)).
fn quiet_catch<T>(f: impl FnOnce() -> T) -> std::result::Result<T, ()> {
    super::QUIET_PANICS.with(|q| q.set(true));
    let out = catch_unwind(AssertUnwindSafe(f));
    super::QUIET_PANICS.with(|q| q.set(false));
    out.map_err(|_| ())
}
