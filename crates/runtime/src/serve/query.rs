//! Streaming query compilation: turn a [`JobSpec`] or a linear
//! [`Plan`] into a cascade of [`StreamSession`]s a tenant can
//! run over a live ingest stream.
//!
//! The batch engine runs a plan stage-by-stage over fixed splits; a
//! serving tenant instead keeps *stage 0* open against the shared ingest
//! stream and, at close, pours each stage's finals through the connecting
//! [`PairMap`] into the next stage's session. Because every aggregate in
//! the catalog is arrival-order-independent, the cascade's finals are
//! byte-identical to a batch `run`/`run_plan` of the same query over the
//! same records — the invariant the serving smoke test enforces.

use std::collections::BTreeMap;
use std::sync::Arc;

use onepass_core::error::{Error, Result};

use crate::job::JobSpec;
use crate::plan::{PairMap, Plan, StageInput};
use crate::stream::{SessionOptions, StreamSession};

/// The ingest family a query not tagged otherwise consumes.
pub const DEFAULT_INGEST: &str = "default";

/// A query compiled for streaming execution: a linear chain of
/// incremental-backend jobs, each (after the first) fed by the previous
/// stage's finals through a [`PairMap`].
#[derive(Clone)]
pub struct StreamingQuery {
    /// Stage jobs, source first. Every backend must be incremental.
    pub stages: Vec<JobSpec>,
    /// `routes[i]` maps stage `i`'s finals into stage `i + 1`'s input;
    /// always `stages.len() - 1` entries.
    pub routes: Vec<Arc<dyn PairMap>>,
    /// Ingest family this query consumes (e.g. `"clicks"` vs `"docs"`):
    /// a server multiplexes several record streams and only feeds each
    /// tenant batches whose family matches.
    pub ingest: String,
}

impl std::fmt::Debug for StreamingQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingQuery")
            .field(
                "stages",
                &self.stages.iter().map(|j| &j.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl StreamingQuery {
    /// A single-stage query.
    pub fn single(job: JobSpec) -> StreamingQuery {
        StreamingQuery {
            stages: vec![job],
            routes: Vec::new(),
            ingest: DEFAULT_INGEST.to_string(),
        }
    }

    /// Tag the ingest family this query consumes.
    pub fn with_ingest(mut self, family: &str) -> StreamingQuery {
        self.ingest = family.to_string();
        self
    }

    /// Compile a *linear* plan (a chain — each stage feeds exactly the
    /// next) into a streaming cascade. Every non-source stage must be a
    /// pair stage: its input is the upstream finals, decoded, which is
    /// exactly what the cascade feeds it.
    pub fn from_plan(plan: &Plan) -> Result<StreamingQuery> {
        let n = plan.stage_count();
        let mut stages = Vec::with_capacity(n);
        let mut routes = Vec::with_capacity(n.saturating_sub(1));
        // Walk the chain from the single source.
        let mut at = plan
            .order
            .iter()
            .copied()
            .find(|&s| plan.incoming[s].is_empty())
            .expect("validated plan has a source");
        loop {
            let stage = &plan.stages[at];
            match (&stage.input, stages.is_empty()) {
                (StageInput::Records, true) => stages.push(stage.job.clone()),
                (StageInput::Pairs(route), false) => {
                    routes.push(Arc::clone(route));
                    stages.push(stage.job.clone());
                }
                (StageInput::Records, false) => {
                    return Err(Error::Config(format!(
                        "stage {} reads raw edge records; streaming cascades need pair stages",
                        stage.job.name
                    )));
                }
                (StageInput::Pairs(_), true) => {
                    return Err(Error::Config("source stage cannot be a pair stage".into()));
                }
            }
            match plan.outgoing[at].as_slice() {
                [] => break,
                [next] => at = *next,
                _ => {
                    return Err(Error::Config(format!(
                        "stage {} fans out; streaming cascades must be linear",
                        stage.job.name
                    )));
                }
            }
        }
        if stages.len() != n {
            return Err(Error::Config("plan is not a single linear chain".into()));
        }
        Ok(StreamingQuery {
            stages,
            routes,
            ingest: DEFAULT_INGEST.to_string(),
        })
    }

    /// Open one [`StreamSession`] per stage, all leasing from the options'
    /// governor (when set). Fails fast on blocking backends.
    pub fn open(&self, opts: &SessionOptions) -> Result<Vec<StreamSession>> {
        self.stages
            .iter()
            .map(|job| StreamSession::with_options(job.clone(), opts.clone()))
            .collect()
    }

    /// Total partitions across all stages — the number of leases a tenant
    /// running this query holds.
    pub fn total_partitions(&self) -> usize {
        self.stages.iter().map(|j| j.reducers).sum()
    }
}

/// A factory producing a fresh [`StreamingQuery`] per tenant.
pub type QueryFactory = Arc<dyn Fn() -> Result<StreamingQuery> + Send + Sync>;

/// Named queries a serving front-end admits tenants for.
///
/// Factories (not cached instances) because each tenant needs its own
/// `JobSpec` clones and sessions; the catalog itself is cheap to share.
#[derive(Clone, Default)]
pub struct QueryCatalog {
    factories: BTreeMap<String, QueryFactory>,
}

impl std::fmt::Debug for QueryCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCatalog")
            .field("queries", &self.names())
            .finish()
    }
}

impl QueryCatalog {
    /// An empty catalog.
    pub fn new() -> QueryCatalog {
        QueryCatalog::default()
    }

    /// Register `name`; replaces any previous registration.
    pub fn register(
        &mut self,
        name: &str,
        factory: impl Fn() -> Result<StreamingQuery> + Send + Sync + 'static,
    ) {
        self.factories.insert(name.to_string(), Arc::new(factory));
    }

    /// Build a fresh query instance for `name`.
    pub fn resolve(&self, name: &str) -> Result<StreamingQuery> {
        match self.factories.get(name) {
            Some(f) => f(),
            None => Err(Error::Config(format!(
                "unknown query {name:?} (catalog: {})",
                self.names().join(", ")
            ))),
        }
    }

    /// Registered query names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{identity_map, ReduceBackend};
    use crate::plan::PlanBuilder;
    use onepass_groupby::SumAgg;

    fn inc_job(name: &str) -> JobSpec {
        JobSpec::builder(name)
            .map_fn(Arc::new(identity_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .backend(ReduceBackend::IncHash { early: None })
            .build()
            .unwrap()
    }

    #[test]
    fn linear_pair_plan_compiles() {
        let mut b = PlanBuilder::new();
        let s1 = b.add_stage(inc_job("a"));
        let route: Arc<dyn PairMap> =
            Arc::new(|k: &[u8], v: &[u8], out: &mut dyn crate::job::MapEmitter| {
                out.emit(k, v);
            });
        let s2 = b.add_pair_stage(inc_job("b"), route);
        b.connect(s1, s2);
        let plan = b.build().unwrap();
        let q = StreamingQuery::from_plan(&plan).unwrap();
        assert_eq!(q.stages.len(), 2);
        assert_eq!(q.routes.len(), 1);
        assert_eq!(q.total_partitions(), 2);
    }

    #[test]
    fn non_pair_downstream_stage_is_rejected() {
        let mut b = PlanBuilder::new();
        let s1 = b.add_stage(inc_job("a"));
        let s2 = b.add_stage(inc_job("b"));
        b.connect(s1, s2);
        let plan = b.build().unwrap();
        assert!(StreamingQuery::from_plan(&plan).is_err());
    }

    #[test]
    fn catalog_resolves_and_rejects() {
        let mut cat = QueryCatalog::new();
        cat.register("sum", || Ok(StreamingQuery::single(inc_job("sum"))));
        assert!(cat.contains("sum"));
        assert_eq!(cat.resolve("sum").unwrap().stages.len(), 1);
        assert!(cat.resolve("nope").is_err());
        assert_eq!(cat.names(), vec!["sum".to_string()]);
    }
}
