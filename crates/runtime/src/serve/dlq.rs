//! Per-tenant dead-letter queue with bounded retry.
//!
//! The plan layer already counts and bounds *decode* errors centrally;
//! serving promotes poison handling to a real queue: a record whose map
//! function panics is quarantined here instead of killing the tenant's
//! session, retried a bounded number of times at later feed boundaries
//! (transient poisons — e.g. a dependency hiccup — recover), and finally
//! declared dead. Dead records are retained (bounded) for inspection.

use std::collections::VecDeque;

/// One quarantined record.
#[derive(Debug, Clone)]
pub struct DlqEntry {
    /// The raw input record that poisoned the session.
    pub record: Vec<u8>,
    /// Failed attempts so far (the initial feed counts as one).
    pub attempts: u32,
}

/// Dead-letter queue configuration.
#[derive(Debug, Clone, Copy)]
pub struct DlqConfig {
    /// Retries after the initial failure before a record is dead.
    pub max_retries: u32,
    /// Most recent dead records retained for inspection.
    pub keep_dead: usize,
}

impl Default for DlqConfig {
    fn default() -> Self {
        DlqConfig {
            max_retries: 2,
            keep_dead: 64,
        }
    }
}

/// A bounded-retry dead-letter queue (single-tenant; the shard worker
/// owns it together with the tenant's sessions, so no locking).
#[derive(Debug, Default)]
pub struct DeadLetterQueue {
    config: DlqConfig,
    pending: VecDeque<DlqEntry>,
    dead: VecDeque<DlqEntry>,
    poisoned_total: u64,
    retries_total: u64,
    recovered_total: u64,
    dead_total: u64,
}

impl DeadLetterQueue {
    /// An empty queue.
    pub fn new(config: DlqConfig) -> DeadLetterQueue {
        DeadLetterQueue {
            config,
            ..Default::default()
        }
    }

    /// Quarantine a record whose first feed attempt failed.
    pub fn quarantine(&mut self, record: Vec<u8>) {
        self.poisoned_total += 1;
        let entry = DlqEntry {
            record,
            attempts: 1,
        };
        if self.config.max_retries == 0 {
            self.bury(entry);
        } else {
            self.pending.push_back(entry);
        }
    }

    /// Retry every pending record once through `feed_one` (true = the
    /// record was applied). Exhausted records move to the dead list.
    /// Returns how many records recovered this sweep.
    pub fn retry_sweep(&mut self, mut feed_one: impl FnMut(&[u8]) -> bool) -> usize {
        let mut recovered = 0;
        for _ in 0..self.pending.len() {
            let mut entry = self.pending.pop_front().expect("len-bounded loop");
            self.retries_total += 1;
            if feed_one(&entry.record) {
                recovered += 1;
                self.recovered_total += 1;
                continue;
            }
            entry.attempts += 1;
            if entry.attempts > self.config.max_retries {
                self.bury(entry);
            } else {
                self.pending.push_back(entry);
            }
        }
        recovered
    }

    /// Sweep until every pending record either recovers or exhausts its
    /// retries — the close-time drain, so poisons near the end of the
    /// stream still get their full retry budget.
    pub fn drain(&mut self, mut feed_one: impl FnMut(&[u8]) -> bool) {
        // Terminates: every sweep either recovers a record or bumps its
        // attempt count, and attempts > max_retries buries it.
        while !self.pending.is_empty() {
            self.retry_sweep(&mut feed_one);
        }
    }

    fn bury(&mut self, entry: DlqEntry) {
        self.dead_total += 1;
        self.dead.push_back(entry);
        while self.dead.len() > self.config.keep_dead {
            self.dead.pop_front();
        }
    }

    /// Records quarantined, ever.
    pub fn poisoned_total(&self) -> u64 {
        self.poisoned_total
    }

    /// Retry attempts issued, ever.
    pub fn retries_total(&self) -> u64 {
        self.retries_total
    }

    /// Records that recovered on retry.
    pub fn recovered_total(&self) -> u64 {
        self.recovered_total
    }

    /// Records declared dead after exhausting retries.
    pub fn dead_total(&self) -> u64 {
        self.dead_total
    }

    /// Currently quarantined (retry-eligible) records.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Retained dead records, oldest first.
    pub fn dead(&self) -> impl Iterator<Item = &DlqEntry> {
        self.dead.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_poison_recovers_after_retries() {
        let mut dlq = DeadLetterQueue::new(DlqConfig {
            max_retries: 3,
            keep_dead: 8,
        });
        dlq.quarantine(b"flaky".to_vec());
        // Fails twice more, then succeeds on the third retry.
        let mut calls = 0;
        while dlq.pending() > 0 {
            dlq.retry_sweep(|_| {
                calls += 1;
                calls >= 3
            });
        }
        assert_eq!(dlq.recovered_total(), 1);
        assert_eq!(dlq.dead_total(), 0);
        assert_eq!(dlq.retries_total(), 3);
    }

    #[test]
    fn permanent_poison_exhausts_and_dies() {
        let mut dlq = DeadLetterQueue::new(DlqConfig {
            max_retries: 2,
            keep_dead: 8,
        });
        dlq.quarantine(b"poison".to_vec());
        dlq.drain(|_| false);
        assert_eq!(dlq.pending(), 0);
        assert_eq!(dlq.dead_total(), 1);
        assert_eq!(dlq.recovered_total(), 0);
        // Initial failure + 2 retries = 3 attempts recorded on the corpse.
        assert_eq!(dlq.dead().next().unwrap().attempts, 3);
    }

    #[test]
    fn zero_retries_buries_immediately_and_dead_list_is_bounded() {
        let mut dlq = DeadLetterQueue::new(DlqConfig {
            max_retries: 0,
            keep_dead: 2,
        });
        for i in 0..5u8 {
            dlq.quarantine(vec![i]);
        }
        assert_eq!(dlq.pending(), 0);
        assert_eq!(dlq.dead_total(), 5);
        let kept: Vec<u8> = dlq.dead().map(|e| e.record[0]).collect();
        assert_eq!(kept, vec![3, 4], "only the most recent corpses kept");
    }
}
