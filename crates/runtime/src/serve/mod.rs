//! Multi-tenant streaming serving front-end.
//!
//! `serve` turns the one-pass engine from a batch tool into a long-lived
//! front-end: one shared ingest stream fans out to thousands of
//! concurrent tenant queries, each an independent
//! [`StreamSession`](crate::stream::StreamSession)
//! cascade leasing memory from a single job-wide
//! [`MemoryGovernor`](onepass_core::governor::MemoryGovernor) pool. The
//! pieces:
//!
//! * [`query`] — named streaming queries ([`StreamingQuery`]) compiled
//!   from jobs or multi-stage [`Plan`](crate::plan::Plan)s, looked up in
//!   a [`QueryCatalog`].
//! * [`admission`] — [`FairShareAdmission`]: a seat-count cap that also
//!   fixes each tenant's fair-share memory lease (`pool / max_tenants`),
//!   with a bounded FIFO wait queue and outright rejection beyond it.
//! * [`tenant`] — [`TenantSession`]: one tenant's session cascade plus a
//!   per-tenant dead-letter queue for poison records.
//! * [`dlq`] — [`DeadLetterQueue`]: bounded-retry quarantine; records
//!   that keep panicking the map function are buried, not fatal.
//! * [`server`] — [`Server`]: shard workers multiplexing many tenants
//!   over the shared ingest, backpressure via the engine's
//!   [`PressureGate`](crate::shuffle), per-tenant TTFA / staleness
//!   metrics in the `obs` registry.
//! * [`front`] — a line-oriented TCP face (`SUBSCRIBE`/`EARLY`/`FINAL`)
//!   used by `onepass serve` + `onepass loadgen`.
//!
//! Fairness and correctness contract: every admitted tenant's final
//! answer is byte-identical to running its query solo over the same
//! ingest — governor sheds, backpressure, and poison isolation are all
//! correctness-neutral (sheds spill, never drop; poisons never touch
//! grouper state).

pub mod admission;
pub mod dlq;
pub mod front;
mod metrics;
pub mod query;
pub mod server;
pub mod tenant;

pub use admission::{AdmissionConfig, AdmissionCounters, AdmissionError, FairShareAdmission};
pub use dlq::{DeadLetterQueue, DlqConfig, DlqEntry};
pub use front::Frontend;
pub use query::{QueryCatalog, QueryFactory, StreamingQuery, DEFAULT_INGEST};
pub use server::{ServeConfig, Server, TenantEvent, TenantHandle};
pub use tenant::{TenantClose, TenantSession};

use std::cell::Cell;
use std::sync::Once;

use onepass_groupby::EmitKind;

use crate::stream::StreamAnswer;

thread_local! {
    /// Set while a poison probe runs so the panic filter stays quiet —
    /// a poison record is expected traffic, not a crash worth a
    /// backtrace per record.
    pub(crate) static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static PANIC_FILTER: Once = Once::new();

/// Install (once, process-wide) a panic hook that delegates to the
/// previous hook unless the current thread is inside a quiet poison
/// probe. Serving a deliberately poisoned stream would otherwise print
/// one panic message per poisoned record per retry.
pub(crate) fn install_poison_panic_filter() {
    PANIC_FILTER.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

/// Render final answers in the exact format `onepass run --dump-out`
/// writes: sorted `key<TAB>hex(value)` lines with a trailing newline.
/// Byte-equality of two dumps is the serving layer's isolation check.
pub fn dump_final_answers(answers: &[StreamAnswer]) -> String {
    let mut lines: Vec<String> = answers
        .iter()
        .filter(|a| a.kind == EmitKind::Final)
        .map(|a| {
            let mut l = String::from_utf8_lossy(&a.key).into_owned();
            l.push('\t');
            for b in &a.value {
                l.push_str(&format!("{b:02x}"));
            }
            l
        })
        .collect();
    lines.sort();
    lines.push(String::new()); // trailing newline
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_matches_cli_dump_format() {
        let answers = vec![
            StreamAnswer {
                key: b"zebra".to_vec(),
                value: vec![0x02, 0x00],
                kind: EmitKind::Final,
            },
            StreamAnswer {
                key: b"apple".to_vec(),
                value: vec![0xff],
                kind: EmitKind::Final,
            },
            StreamAnswer {
                key: b"early".to_vec(),
                value: vec![0x01],
                kind: EmitKind::Early,
            },
        ];
        assert_eq!(dump_final_answers(&answers), "apple\tff\nzebra\t0200\n");
    }

    #[test]
    fn quiet_panics_suppresses_then_restores() {
        install_poison_panic_filter();
        QUIET_PANICS.with(|q| q.set(true));
        let r = std::panic::catch_unwind(|| panic!("expected poison"));
        QUIET_PANICS.with(|q| q.set(false));
        assert!(r.is_err());
    }
}
