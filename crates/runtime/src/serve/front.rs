//! A line-oriented TCP front door over the serving core.
//!
//! Protocol (one session per connection):
//!
//! ```text
//! client: SUBSCRIBE <tenant-id> <query>\n
//! server: ADMITTED <tenant-id>\n            (or REJECTED <reason>\n)
//! server: EARLY <hex-key> <hex-value>\n     (zero or more, as answers surface)
//! server: FINAL <hex-key> <hex-value>\n     (the tenant's final answers)
//! server: DONE records=<n> early=<n> dlq_dead=<n> dlq_recovered=<n>\n
//! ```
//!
//! Keys and values are hex-encoded on the wire because answer keys are
//! raw bytes (little-endian ids) that may contain newlines; clients
//! decode and render however they like. `ERROR <msg>` replaces the
//! `FINAL`/`DONE` tail if the tenant's session failed. A client that
//! disconnects mid-stream is detached server-side (its seat and memory
//! leases free up).
//!
//! Binding `:0` picks an ephemeral port — the CLI prints the actual
//! address so scripts never collide on fixed ports.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use onepass_core::error::{Error, Result};

use super::server::{Server, TenantEvent, TenantHandle};

/// Hex-encode bytes for the wire.
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decode wire hex; `None` on malformed input.
pub fn unhex(s: &str) -> Option<Vec<u8>> {
    // `len & 1`, not `len % 2`: clippy suggests `is_multiple_of`, which
    // postdates the workspace MSRV (1.85).
    if s.len() & 1 != 0 {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// The accept loop plus its bound address.
pub struct Frontend {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<AtomicUsize>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frontend")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Frontend {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve
    /// subscriptions against `server` until [`Frontend::stop`].
    pub fn bind(server: Arc<Server>, addr: &str) -> Result<Frontend> {
        let listener = TcpListener::bind(addr).map_err(|e| {
            Error::Io(std::io::Error::new(
                e.kind(),
                format!("serve: cannot bind {addr}: {e}"),
            ))
        })?;
        let local_addr = listener.local_addr().map_err(Error::Io)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let conns = Arc::new(AtomicUsize::new(0));
        let conns2 = Arc::clone(&conns);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let server = Arc::clone(&server);
                    let conns = Arc::clone(&conns2);
                    conns.fetch_add(1, Ordering::AcqRel);
                    // One thread per subscriber: the handler mostly
                    // blocks on the tenant's event channel.
                    let spawned =
                        std::thread::Builder::new()
                            .name("serve-conn".into())
                            .spawn(move || {
                                handle_conn(conn, server);
                                conns.fetch_sub(1, Ordering::AcqRel);
                            });
                    if spawned.is_err() {
                        conns2.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            })
            .expect("spawn serve accept loop");
        Ok(Frontend {
            local_addr,
            stop,
            conns,
            accept_thread: Some(accept_thread),
        })
    }

    /// Subscriber connections currently being served.
    pub fn active_conns(&self) -> usize {
        self.conns.load(Ordering::Acquire)
    }

    /// Wait (up to `timeout`) for every subscriber connection to finish
    /// writing and hang up; returns whether they all drained.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.active_conns() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        true
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting new subscribers (existing connections drain on
    /// their own).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_conn(conn: TcpStream, server: Arc<Server>) {
    let Ok(peer) = conn.try_clone() else { return };
    let mut reader = BufReader::new(peer);
    let mut writer = BufWriter::new(conn);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let mut parts = line.split_whitespace();
    let handle = match (parts.next(), parts.next(), parts.next()) {
        (Some("SUBSCRIBE"), Some(tenant), Some(query)) => server.subscribe(tenant, query),
        _ => {
            let _ = writeln!(writer, "REJECTED malformed subscribe line");
            return;
        }
    };
    let handle = match handle {
        Ok(h) => h,
        Err(e) => {
            let _ = writeln!(writer, "REJECTED {e}");
            return;
        }
    };
    let _ = writeln!(writer, "ADMITTED {}", handle.id);
    let _ = writer.flush();
    // Dropping `handle` (and with it the event receiver) on any write
    // failure detaches the tenant server-side.
    let _ = pump_events(&handle, &mut writer);
}

fn pump_events(handle: &TenantHandle, w: &mut impl Write) -> std::io::Result<()> {
    let mut early = 0u64;
    loop {
        match handle.events().recv() {
            Ok(TenantEvent::Early(answers)) => {
                early += answers.len() as u64;
                for a in answers {
                    writeln!(w, "EARLY {} {}", hex(&a.key), hex(&a.value))?;
                }
                w.flush()?;
            }
            Ok(TenantEvent::Final(close)) => {
                for a in &close.answers {
                    writeln!(w, "FINAL {} {}", hex(&a.key), hex(&a.value))?;
                }
                writeln!(
                    w,
                    "DONE records={} early={} dlq_dead={} dlq_recovered={}",
                    close.records_in, early, close.dlq_dead, close.dlq_recovered
                )?;
                return w.flush();
            }
            Ok(TenantEvent::Error(e)) => {
                writeln!(w, "ERROR {e}")?;
                return w.flush();
            }
            Err(_) => {
                writeln!(w, "ERROR server closed without delivering finals")?;
                return w.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let bytes = [0x00, 0x0a, 0xff, 0x41];
        assert_eq!(unhex(&hex(&bytes)).unwrap(), bytes);
        assert_eq!(unhex("zz"), None);
        assert_eq!(unhex("abc"), None);
        assert_eq!(unhex("").unwrap(), Vec::<u8>::new());
    }
}
