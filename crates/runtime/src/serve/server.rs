//! The in-process multi-tenant serving core.
//!
//! One [`Server`] owns a shared ingest stream, a job-wide
//! [`MemoryGovernor`] pool, fair-share admission, and a fixed set of
//! *shard* worker threads. Tenants are sharded at admission; each shard
//! worker owns its tenants' [`TenantSession`]s outright (no per-tenant
//! locking) and feeds every ingest batch to each of them in turn. Early
//! answers flow to per-tenant event channels as they surface; finals flow
//! at close.
//!
//! Backpressure: every shard queue is gated by the engine's
//! [`PressureGate`] on the shared governor — when tenant hash state
//! pushes the pool over its high-water mark, ingest stalls on a shrunken
//! queue depth until the governor's cross-tenant rebalancing and shedding
//! catch up. A tenant that stops draining its events slows only its own
//! channel; a disconnected tenant (dropped receiver) is detached and its
//! seat and leases are released.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use onepass_core::error::{Error, Result};
use onepass_core::governor::MemoryGovernor;
use onepass_core::hashlib::HashFamily;
use onepass_core::obs::MetricsRegistry;

use crate::shuffle::PressureGate;
use crate::stream::{SessionOptions, StreamAnswer};

use super::admission::{AdmissionConfig, FairShareAdmission};
use super::dlq::DlqConfig;
use super::metrics::ServeMetrics;
use super::query::QueryCatalog;
use super::tenant::{TenantClose, TenantSession};

/// Serving configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Global memory pool shared by every tenant's sessions, bytes.
    pub pool_bytes: usize,
    /// Spill policy arbitrating shed victims *across* tenants.
    pub policy: Arc<dyn onepass_core::governor::SpillPolicy>,
    /// Pool fraction above which ingest backpressure engages.
    pub high_water: f64,
    /// Admission control knobs.
    pub admission: AdmissionConfig,
    /// Shard worker threads tenants are distributed over.
    pub shards: usize,
    /// Bounded depth of each shard's ingest queue, in batches.
    pub queue_depth: usize,
    /// Per-tenant dead-letter queue knobs.
    pub dlq: DlqConfig,
    /// Hash family for every tenant session's groupers.
    pub hash_family: HashFamily,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pool_bytes: 256 << 20,
            policy: onepass_core::governor::policy_by_name("largest-consumer")
                .expect("largest-consumer is registered"),
            high_water: onepass_core::governor::DEFAULT_HIGH_WATER,
            admission: AdmissionConfig::default(),
            shards: 4,
            queue_depth: 64,
            dlq: DlqConfig::default(),
            hash_family: HashFamily::default(),
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("pool_bytes", &self.pool_bytes)
            .field("shards", &self.shards)
            .field("max_tenants", &self.admission.max_tenants)
            .finish()
    }
}

/// What a tenant's event channel delivers.
#[derive(Debug)]
pub enum TenantEvent {
    /// Early answers surfaced mid-stream by stage 0's incremental hash.
    Early(Vec<StreamAnswer>),
    /// The tenant's final answers and accounting, delivered once at
    /// stream close. The channel closes afterwards.
    Final(TenantClose),
    /// The tenant's session failed; the tenant has been detached.
    Error(String),
}

/// The subscriber's end of a tenant: an event stream.
pub struct TenantHandle {
    /// Tenant id.
    pub id: String,
    /// Subscribed query name.
    pub query: String,
    events: Receiver<TenantEvent>,
}

impl std::fmt::Debug for TenantHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantHandle")
            .field("id", &self.id)
            .field("query", &self.query)
            .finish()
    }
}

impl TenantHandle {
    /// The live event stream.
    pub fn events(&self) -> &Receiver<TenantEvent> {
        &self.events
    }

    /// Block until the final answers arrive, collecting any early
    /// answers seen on the way. Errors if the tenant failed or the
    /// server went away without closing.
    pub fn wait_final(&self) -> Result<(Vec<StreamAnswer>, TenantClose)> {
        let mut earlies = Vec::new();
        loop {
            match self.events.recv() {
                Ok(TenantEvent::Early(a)) => earlies.extend(a),
                Ok(TenantEvent::Final(close)) => return Ok((earlies, close)),
                Ok(TenantEvent::Error(e)) => {
                    return Err(Error::InvalidState(format!(
                        "tenant {} failed: {e}",
                        self.id
                    )))
                }
                Err(_) => {
                    return Err(Error::InvalidState(format!(
                        "tenant {}'s server went away before close",
                        self.id
                    )))
                }
            }
        }
    }
}

struct TenantState {
    session: TenantSession,
    /// Ingest family the tenant's query consumes; batches of any other
    /// family skip this tenant.
    ingest: Arc<str>,
    events: Sender<TenantEvent>,
    admitted_at: Instant,
    answered: bool,
    last_emit: Instant,
}

enum ShardMsg {
    Admit(Box<TenantState>),
    Batch(Arc<str>, Arc<Vec<Vec<u8>>>),
    Close,
}

struct Shard {
    tx: Sender<ShardMsg>,
}

struct Shared {
    admission: FairShareAdmission,
    metrics: ServeMetrics,
}

/// The multi-tenant serving core. Cheap to clone handles are not needed
/// — share via `Arc<Server>` or borrow.
pub struct Server {
    config: ServeConfig,
    catalog: QueryCatalog,
    governor: MemoryGovernor,
    gate: PressureGate,
    shared: Arc<Shared>,
    shards: Vec<Shard>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_shard: AtomicUsize,
    closed: AtomicBool,
    ingest_records: AtomicU64,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .field("active_tenants", &self.shared.admission.active())
            .finish()
    }
}

impl Server {
    /// Start the serving core: spawn shard workers, build the shared
    /// governor pool. `registry` enables the `onepass_serve_*` metrics
    /// family (pass `None` to skip every probe).
    pub fn start(
        config: ServeConfig,
        catalog: QueryCatalog,
        registry: Option<MetricsRegistry>,
    ) -> Result<Server> {
        if config.shards == 0 {
            return Err(Error::Config("serve needs at least one shard".into()));
        }
        super::install_poison_panic_filter();
        let governor = MemoryGovernor::new(
            config.pool_bytes,
            Arc::clone(&config.policy),
            config.high_water,
        );
        let metrics = ServeMetrics::new(registry);
        let gate = PressureGate::new(governor.clone(), config.queue_depth);
        let gate = match metrics.backpressure_stalls() {
            Some(c) => gate.with_stall_metric(c),
            None => gate,
        };
        let shared = Arc::new(Shared {
            admission: FairShareAdmission::new(config.admission, config.pool_bytes),
            metrics,
        });
        let mut shards = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let (tx, rx) = bounded::<ShardMsg>(config.queue_depth);
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("serve-shard-{i}"))
                .spawn(move || shard_worker(rx, shared))
                .expect("spawn shard worker");
            shards.push(Shard { tx });
            workers.push(handle);
        }
        Ok(Server {
            config,
            catalog,
            governor,
            gate,
            shared,
            shards,
            workers: Mutex::new(workers),
            next_shard: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            ingest_records: AtomicU64::new(0),
        })
    }

    /// The serving catalog.
    pub fn catalog(&self) -> &QueryCatalog {
        &self.catalog
    }

    /// The shared governor (for introspection).
    pub fn governor(&self) -> &MemoryGovernor {
        &self.governor
    }

    /// Active tenants right now.
    pub fn active_tenants(&self) -> usize {
        self.shared.admission.active()
    }

    /// Admission counter snapshot (admitted / queued / rejected).
    pub fn admission_counters(&self) -> super::admission::AdmissionCounters {
        self.shared.admission.counters()
    }

    /// Admit a tenant for `query`. Blocks (bounded) while the house is
    /// full; errors on rejection or unknown query. The returned handle's
    /// event channel delivers early answers as they surface and the final
    /// answers at [`Server::close`].
    pub fn subscribe(&self, tenant_id: &str, query: &str) -> Result<TenantHandle> {
        if self.closed.load(Ordering::Acquire) {
            return Err(Error::InvalidState("server is closed".into()));
        }
        let compiled = self.catalog.resolve(query)?;
        let share = self.shared.admission.admit().map_err(|e| {
            self.shared.metrics.on_rejected();
            Error::InvalidState(format!("tenant {tenant_id} rejected: {e}"))
        })?;
        let partitions = compiled.total_partitions().max(1);
        let opts = SessionOptions {
            hash_family: self.config.hash_family,
            governor: Some(self.governor.clone()),
            lease_bytes: Some((share / partitions).max(1024)),
        };
        let session = match TenantSession::open(tenant_id, query, &compiled, &opts, self.config.dlq)
        {
            Ok(s) => s,
            Err(e) => {
                self.shared.admission.release();
                return Err(e);
            }
        };
        let (tx, rx) = unbounded();
        let state = Box::new(TenantState {
            session,
            ingest: Arc::from(compiled.ingest.as_str()),
            events: tx,
            admitted_at: Instant::now(),
            answered: false,
            last_emit: Instant::now(),
        });
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        if self.shards[shard].tx.send(ShardMsg::Admit(state)).is_err() {
            self.shared.admission.release();
            return Err(Error::InvalidState("server shards are gone".into()));
        }
        self.shared
            .metrics
            .on_admitted(self.shared.admission.active());
        Ok(TenantHandle {
            id: tenant_id.to_string(),
            query: query.to_string(),
            events: rx,
        })
    }

    /// Feed one ingest batch of `family` records to every tenant whose
    /// query consumes that family. Applies governor backpressure per
    /// shard queue before enqueueing.
    pub fn feed(&self, family: &str, records: Vec<Vec<u8>>) -> Result<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(Error::InvalidState("server is closed".into()));
        }
        self.ingest_records
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        self.shared.metrics.on_ingest(records.len() as u64);
        let family: Arc<str> = Arc::from(family);
        let batch = Arc::new(records);
        for shard in &self.shards {
            self.gate.admit(&shard.tx);
            shard
                .tx
                .send(ShardMsg::Batch(Arc::clone(&family), Arc::clone(&batch)))
                .map_err(|_| Error::InvalidState("server shards are gone".into()))?;
        }
        Ok(())
    }

    /// Records ingested so far.
    pub fn ingest_records(&self) -> u64 {
        self.ingest_records.load(Ordering::Relaxed)
    }

    /// Close the ingest stream: every tenant's cascade closes and its
    /// finals are delivered on its event channel; shard workers exit.
    /// Idempotent.
    pub fn close(&self) -> Result<()> {
        if self.closed.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        for shard in &self.shards {
            // A shard whose worker already exited has hung up; ignore.
            let _ = shard.tx.send(ShardMsg::Close);
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for w in workers {
            w.join()
                .map_err(|_| Error::InvalidState("serve shard worker panicked".into()))?;
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

/// One shard worker: owns its tenants, feeds them every batch, ships
/// events, and closes them at end of stream.
fn shard_worker(rx: Receiver<ShardMsg>, shared: Arc<Shared>) {
    let mut tenants: Vec<TenantState> = Vec::new();
    let release = |n: usize| {
        for _ in 0..n {
            shared.admission.release();
        }
        shared.metrics.set_active(shared.admission.active());
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Admit(state) => tenants.push(*state),
            ShardMsg::Batch(family, batch) => {
                let mut dropped = 0;
                tenants.retain_mut(|t| {
                    let keep = feed_tenant(t, &family, &batch, &shared);
                    if !keep {
                        dropped += 1;
                    }
                    keep
                });
                if dropped > 0 {
                    release(dropped);
                }
            }
            ShardMsg::Close => {
                let n = tenants.len();
                for t in tenants.drain(..) {
                    let TenantState {
                        session,
                        ingest: _,
                        events,
                        admitted_at,
                        answered,
                        last_emit,
                    } = t;
                    let (sheds, shed_bytes) = session.shed_stats();
                    let tenant_id = session.id().to_string();
                    match session.close() {
                        Ok(close) => {
                            let now = Instant::now();
                            if !answered {
                                shared
                                    .metrics
                                    .on_first_answer(&tenant_id, now - admitted_at);
                            } else {
                                shared.metrics.on_staleness(now - last_emit);
                            }
                            shared.metrics.on_answers(close.answers.len() as u64, true);
                            shared.metrics.on_close(&close, sheds, shed_bytes);
                            let _ = events.send(TenantEvent::Final(close));
                        }
                        Err(e) => {
                            let _ = events.send(TenantEvent::Error(e.to_string()));
                        }
                    }
                }
                release(n);
                break;
            }
        }
    }
}

/// Feed one tenant; returns whether to keep it (false = failed or
/// disconnected).
fn feed_tenant(t: &mut TenantState, family: &str, batch: &[Vec<u8>], shared: &Shared) -> bool {
    if t.ingest.as_ref() != family {
        return true;
    }
    match t.session.feed(batch) {
        Ok(answers) => {
            if answers.is_empty() {
                return true;
            }
            // TTFA on a tenant's first answer, inter-answer staleness on
            // the rest.
            let now = Instant::now();
            if !t.answered {
                t.answered = true;
                shared
                    .metrics
                    .on_first_answer(t.session.id(), now - t.admitted_at);
            } else {
                shared.metrics.on_staleness(now - t.last_emit);
            }
            t.last_emit = now;
            shared.metrics.on_answers(answers.len() as u64, false);
            // A dropped receiver means the subscriber went away — detach.
            t.events.send(TenantEvent::Early(answers)).is_ok()
        }
        Err(e) => {
            let _ = t.events.send(TenantEvent::Error(e.to_string()));
            false
        }
    }
}
