//! The `onepass_serve_*` metrics family.
//!
//! All instruments live in the engine's [`MetricsRegistry`] so the
//! existing exporters (Prometheus endpoint, JSONL sampler) serve them
//! with no extra plumbing. Per-tenant time-to-first-answer is exported as
//! a labeled gauge (`tenant="..."`) so a scraper can assert every tenant
//! actually got an answer — the serving smoke test does exactly that —
//! while the unlabeled histogram carries the p50/p99 the load harness
//! reports.

use std::sync::Mutex;
use std::time::Duration;

use onepass_core::obs::{Counter, Gauge, Histogram, MetricsRegistry};

use super::tenant::TenantClose;

/// Registered instruments; every probe no-ops when the registry is off.
pub(crate) struct ServeMetrics {
    registry: Option<MetricsRegistry>,
    tenants_active: Gauge,
    admitted_total: Counter,
    rejected_total: Counter,
    ingest_records_total: Counter,
    early_answers_total: Counter,
    final_answers_total: Counter,
    ttfa_seconds: Histogram,
    staleness_seconds: Histogram,
    dlq_poisoned_total: Counter,
    dlq_recovered_total: Counter,
    dlq_dead_total: Counter,
    sheds_total: Counter,
    shed_bytes_total: Counter,
    backpressure_stalls_total: Option<Counter>,
    /// Guards per-tenant gauge creation (shard workers race).
    tenant_gauge_lock: Mutex<()>,
}

impl ServeMetrics {
    pub(crate) fn new(registry: Option<MetricsRegistry>) -> ServeMetrics {
        match registry {
            None => ServeMetrics {
                registry: None,
                tenants_active: Gauge::detached(),
                admitted_total: Counter::detached(),
                rejected_total: Counter::detached(),
                ingest_records_total: Counter::detached(),
                early_answers_total: Counter::detached(),
                final_answers_total: Counter::detached(),
                ttfa_seconds: Histogram::detached(),
                staleness_seconds: Histogram::detached(),
                dlq_poisoned_total: Counter::detached(),
                dlq_recovered_total: Counter::detached(),
                dlq_dead_total: Counter::detached(),
                sheds_total: Counter::detached(),
                shed_bytes_total: Counter::detached(),
                backpressure_stalls_total: None,
                tenant_gauge_lock: Mutex::new(()),
            },
            Some(r) => ServeMetrics {
                tenants_active: r.gauge("onepass_serve_tenants", &[]),
                admitted_total: r.counter("onepass_serve_admitted_total", &[]),
                rejected_total: r.counter("onepass_serve_rejected_total", &[]),
                ingest_records_total: r.counter("onepass_serve_ingest_records_total", &[]),
                early_answers_total: r.counter("onepass_serve_early_answers_total", &[]),
                final_answers_total: r.counter("onepass_serve_final_answers_total", &[]),
                ttfa_seconds: r.histogram("onepass_serve_ttfa_seconds", &[]),
                staleness_seconds: r.histogram("onepass_serve_answer_staleness_seconds", &[]),
                dlq_poisoned_total: r.counter("onepass_serve_dlq_poisoned_total", &[]),
                dlq_recovered_total: r.counter("onepass_serve_dlq_recovered_total", &[]),
                dlq_dead_total: r.counter("onepass_serve_dlq_dead_total", &[]),
                sheds_total: r.counter("onepass_serve_sheds_total", &[]),
                shed_bytes_total: r.counter("onepass_serve_shed_bytes_total", &[]),
                backpressure_stalls_total: Some(
                    r.counter("onepass_serve_backpressure_stalls_total", &[]),
                ),
                tenant_gauge_lock: Mutex::new(()),
                registry: Some(r),
            },
        }
    }

    /// The ingest backpressure stall counter, for the pressure gate.
    pub(crate) fn backpressure_stalls(&self) -> Option<Counter> {
        self.backpressure_stalls_total.clone()
    }

    pub(crate) fn on_admitted(&self, active_now: usize) {
        self.admitted_total.inc(1);
        self.tenants_active.set(active_now as f64);
    }

    pub(crate) fn on_rejected(&self) {
        self.rejected_total.inc(1);
    }

    pub(crate) fn set_active(&self, active_now: usize) {
        self.tenants_active.set(active_now as f64);
    }

    pub(crate) fn on_ingest(&self, records: u64) {
        self.ingest_records_total.inc(records);
    }

    pub(crate) fn on_answers(&self, n: u64, is_final: bool) {
        if is_final {
            self.final_answers_total.inc(n);
        } else {
            self.early_answers_total.inc(n);
        }
    }

    /// Record a tenant's time-to-first-answer: once into the family
    /// histogram, once into a per-tenant labeled gauge.
    pub(crate) fn on_first_answer(&self, tenant: &str, ttfa: Duration) {
        self.ttfa_seconds.observe_duration(ttfa);
        if let Some(r) = &self.registry {
            let _guard = self.tenant_gauge_lock.lock().expect("tenant gauge lock");
            r.gauge("onepass_serve_tenant_ttfa_seconds", &[("tenant", tenant)])
                .set(ttfa.as_secs_f64().max(f64::MIN_POSITIVE));
        }
    }

    pub(crate) fn on_staleness(&self, gap: Duration) {
        self.staleness_seconds.observe_duration(gap);
    }

    pub(crate) fn on_close(&self, close: &TenantClose, sheds: u64, shed_bytes: u64) {
        self.dlq_poisoned_total.inc(close.dlq_poisoned);
        self.dlq_recovered_total.inc(close.dlq_recovered);
        self.dlq_dead_total.inc(close.dlq_dead);
        self.sheds_total.inc(sheds);
        self.shed_bytes_total.inc(shed_bytes);
    }
}
