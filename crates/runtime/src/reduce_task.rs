//! Reduce task execution: receive shuffle segments, drive the configured
//! group-by backend, emit output.
//!
//! The sort-merge backend here is the runtime-level reproduction of
//! Hadoop's reducer (Fig. 1 right half): it buffers *pre-sorted* map
//! segments, merges-and-spills them when its memory budget fills, lets
//! [`MultiPassMerger`] run progressive background merges, and performs the
//! blocking final merge at the end. It also implements MapReduce Online's
//! snapshot mechanism (§III-D): at configured map-completion fractions it
//! re-reads everything received so far and emits approximate answers —
//! "this is done by repeating the merge operation for each snapshot",
//! with the corresponding I/O charge.
//!
//! Hash backends delegate to the `onepass-groupby` operators.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Receiver;

use onepass_core::error::{Error, Result};
use onepass_core::hashlib::ByteMap;
use onepass_core::io::{IoStats, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_core::metrics::{Phase, Profile};
use onepass_core::trace::LocalTracer;
use onepass_groupby::aggregate::StateInput;
use onepass_groupby::{
    Aggregator, EmitKind, FreqHashGrouper, GroupBy, HybridHashGrouper, IncHashGrouper,
    MultiPassMerger, OpStats, Sink, SortMergeGrouper,
};

use crate::job::{JobSpec, ReduceBackend};
use crate::shuffle::ShuffleMsg;

/// Result of one reduce task.
#[derive(Debug, Clone)]
pub struct ReduceResult {
    /// The partition this task served.
    pub partition: usize,
    /// Operator statistics (records, groups, spill I/O, CPU profile).
    pub stats: OpStats,
    /// Snapshots emitted (sort-merge + snapshots backend only).
    pub snapshots_taken: u64,
}

/// The aggregate the backend should run: raw job aggregate when segments
/// carry raw values; a [`StateInput`] wrapper when map-side combine ran.
fn effective_agg(job: &JobSpec, combined: bool) -> Arc<dyn Aggregator> {
    if combined {
        Arc::new(StateInput(Arc::clone(&job.agg)))
    } else {
        Arc::clone(&job.agg)
    }
}

/// Run one reduce task until all `total_map_tasks` map tasks have
/// reported done, then finish the backend into `sink`.
#[allow(clippy::too_many_arguments)]
pub fn run_reduce_task(
    job: &JobSpec,
    partition: usize,
    rx: &Receiver<ShuffleMsg>,
    total_map_tasks: usize,
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    sink: &mut dyn Sink,
    trace: &mut LocalTracer,
) -> Result<ReduceResult> {
    match &job.backend {
        ReduceBackend::SortMerge {
            merge_factor,
            snapshots,
        } => run_sortmerge_reduce(
            job,
            partition,
            rx,
            total_map_tasks,
            store,
            budget,
            sink,
            *merge_factor,
            snapshots,
            trace,
        ),
        _ => run_hash_reduce(
            job,
            partition,
            rx,
            total_map_tasks,
            store,
            budget,
            sink,
            trace,
        ),
    }
}

/// Shared message loop for the hash backends: push record-by-record.
#[allow(clippy::too_many_arguments)]
fn run_hash_reduce(
    job: &JobSpec,
    partition: usize,
    rx: &Receiver<ShuffleMsg>,
    total_map_tasks: usize,
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    sink: &mut dyn Sink,
    trace: &mut LocalTracer,
) -> Result<ReduceResult> {
    let mut grouper: Option<Box<dyn GroupBy>> = None;
    let mut shuffle_wait = std::time::Duration::ZERO;
    let mut maps_done = 0usize;

    // The shuffle phase (Fig. 2a lane): from task start until every map
    // task has reported done.
    trace.begin(Phase::Shuffle.label(), "phase");
    while maps_done < total_map_tasks {
        let wait_start = Instant::now();
        let msg = rx
            .recv()
            .map_err(|_| Error::InvalidState("shuffle channel closed early".into()))?;
        shuffle_wait += wait_start.elapsed();
        match msg {
            ShuffleMsg::MapDone { .. } => maps_done += 1,
            ShuffleMsg::Segment(seg) => {
                let g = match &mut grouper {
                    Some(g) => g,
                    None => {
                        // Lazily build the backend now that the first
                        // segment tells us whether input is combined.
                        let agg = effective_agg(job, seg.combined);
                        let g: Box<dyn GroupBy> = match &job.backend {
                            ReduceBackend::HybridHash { fanout } => {
                                let mut g = HybridHashGrouper::new(
                                    Arc::clone(&store),
                                    budget.clone(),
                                    *fanout,
                                    agg,
                                )?;
                                g.set_tracer(trace.fork());
                                Box::new(g)
                            }
                            ReduceBackend::IncHash { early } => {
                                let mut g = IncHashGrouper::with_early(
                                    Arc::clone(&store),
                                    budget.clone(),
                                    agg,
                                    early.clone(),
                                );
                                g.set_tracer(trace.fork());
                                Box::new(g)
                            }
                            ReduceBackend::FreqHash(cfg) => {
                                let mut g = FreqHashGrouper::with_config(
                                    Arc::clone(&store),
                                    budget.clone(),
                                    agg,
                                    cfg.clone(),
                                );
                                g.set_tracer(trace.fork());
                                Box::new(g)
                            }
                            ReduceBackend::SortMerge { .. } => {
                                unreachable!("sort-merge handled separately")
                            }
                        };
                        grouper.insert(g)
                    }
                };
                for (k, v) in &seg.records {
                    g.push(k, v, sink)?;
                }
            }
        }
    }

    trace.end(Phase::Shuffle.label(), "phase");

    trace.begin(Phase::ReduceFn.label(), "phase");
    let mut stats = match grouper {
        Some(mut g) => g.finish(sink)?,
        None => OpStats::default(), // received no data at all
    };
    trace.end(Phase::ReduceFn.label(), "phase");
    stats.profile.add_time(Phase::Shuffle, shuffle_wait);
    Ok(ReduceResult {
        partition,
        stats,
        snapshots_taken: 0,
    })
}

// ---------------------------------------------------------------------------
// Sort-merge reduce (Hadoop / HOP)
// ---------------------------------------------------------------------------

/// A sorted in-memory segment awaiting merge.
struct SortedSeg {
    records: Vec<(Vec<u8>, Vec<u8>)>,
}

#[allow(clippy::too_many_arguments)]
fn run_sortmerge_reduce(
    job: &JobSpec,
    partition: usize,
    rx: &Receiver<ShuffleMsg>,
    total_map_tasks: usize,
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    sink: &mut dyn Sink,
    merge_factor: usize,
    snapshots: &[f64],
    trace: &mut LocalTracer,
) -> Result<ReduceResult> {
    let io_base = store.stats();
    let mut merger = MultiPassMerger::new(Arc::clone(&store), merge_factor)?;
    let mut buffered: Vec<SortedSeg> = Vec::new();
    let mut reserved = 0usize;
    let mut peak_reserved = 0usize;
    let mut profile = Profile::new();
    let mut shuffle_wait = std::time::Duration::ZERO;
    let mut records_in = 0u64;
    let mut spills = 0u64;
    let mut maps_done = 0usize;
    let mut agg: Option<Arc<dyn Aggregator>> = None;
    let mut snapshot_plan: Vec<usize> = snapshots
        .iter()
        .map(|f| ((f * total_map_tasks as f64).ceil() as usize).max(1))
        .collect();
    snapshot_plan.sort_unstable();
    snapshot_plan.dedup();
    let mut snapshots_taken = 0u64;

    trace.begin(Phase::Shuffle.label(), "phase");
    while maps_done < total_map_tasks {
        let wait_start = Instant::now();
        let msg = rx
            .recv()
            .map_err(|_| Error::InvalidState("shuffle channel closed early".into()))?;
        shuffle_wait += wait_start.elapsed();
        match msg {
            ShuffleMsg::Segment(mut seg) => {
                let a = agg
                    .get_or_insert_with(|| effective_agg(job, seg.combined))
                    .clone();
                if !seg.sorted {
                    // HOP "moves some of the sorting work to reducers"
                    // (§III-D); charge it to the reduce side.
                    let t = Instant::now();
                    seg.records.sort_unstable_by(|x, y| x.0.cmp(&y.0));
                    profile.add_time(Phase::ReduceGroup, t.elapsed());
                }
                records_in += seg.len() as u64;
                let bytes: usize = seg
                    .records
                    .iter()
                    .map(|(k, v)| k.len() + v.len() + 16)
                    .sum();
                let count_trigger = buffered.len() + 1 >= job.inmem_merge_threshold;
                if count_trigger || !budget.try_grant(bytes) {
                    spill_buffered(&mut buffered, &mut merger, &store, &a, &mut profile, trace)?;
                    spills += 1;
                    budget.release(reserved);
                    reserved = 0;
                    if !budget.try_grant(bytes) {
                        // A single segment larger than the whole budget: a
                        // reducer must be able to hold at least one
                        // segment, so take it (soft limit) and flush it to
                        // disk right below.
                        budget.force_grant(bytes);
                    }
                }
                reserved += bytes;
                peak_reserved = peak_reserved.max(reserved);
                buffered.push(SortedSeg {
                    records: seg.records,
                });
                if budget.over_limit() {
                    spill_buffered(&mut buffered, &mut merger, &store, &a, &mut profile, trace)?;
                    spills += 1;
                    budget.release(reserved);
                    reserved = 0;
                }
            }
            ShuffleMsg::MapDone { .. } => {
                maps_done += 1;
                if maps_done < total_map_tasks {
                    while snapshot_plan.first().is_some_and(|&t| maps_done >= t) {
                        snapshot_plan.remove(0);
                        if let Some(a) = &agg {
                            trace.begin("snapshot", "phase");
                            take_snapshot(&buffered, &merger, &store, a, sink, &mut profile)?;
                            trace.end("snapshot", "phase");
                            snapshots_taken += 1;
                        }
                    }
                }
            }
        }
    }

    trace.end(Phase::Shuffle.label(), "phase");

    // Final phase.
    let a = agg.unwrap_or_else(|| effective_agg(job, false));
    let mut groups_out = 0u64;
    trace.begin(Phase::ReduceFn.label(), "phase");
    if merger.runs().is_empty() && merger.merge_passes() == 0 {
        // All data still in memory: merge and reduce directly.
        let t = Instant::now();
        let mut cursor = VecMergeCursor::new(&buffered);
        let mut current: Option<(Vec<u8>, Vec<u8>)> = None;
        while let Some((k, v)) = cursor.next_pair() {
            match &mut current {
                Some((ck, state)) if *ck == k => a.update(&k, state, v),
                _ => {
                    if let Some((ck, state)) = current.take() {
                        let out = a.finish(&ck, state);
                        sink.emit(&ck, &out, EmitKind::Final);
                        groups_out += 1;
                    }
                    current = Some((k.clone(), a.init(&k, v)));
                }
            }
        }
        if let Some((ck, state)) = current.take() {
            let out = a.finish(&ck, state);
            sink.emit(&ck, &out, EmitKind::Final);
            groups_out += 1;
        }
        profile.add_time(Phase::ReduceFn, t.elapsed());
    } else {
        // Hadoop behaviour: the in-memory tail is spilled too, then the
        // final (multi-pass if needed) merge feeds the reduce function.
        if !buffered.is_empty() {
            spill_buffered(&mut buffered, &mut merger, &store, &a, &mut profile, trace)?;
            spills += 1;
        }
        let mut grouped = merger.into_grouped()?;
        let t = Instant::now();
        while let Some((key, states)) = grouped.next_group()? {
            let mut iter = states.into_iter();
            let mut state = iter.next().expect("non-empty group");
            for other in iter {
                a.merge(&key, &mut state, &other);
            }
            let out = a.finish(&key, state);
            sink.emit(&key, &out, EmitKind::Final);
            groups_out += 1;
        }
        profile.add_time(Phase::ReduceFn, t.elapsed());
        profile.merge(grouped.profile());
        grouped.cleanup()?;
    }
    trace.end(Phase::ReduceFn.label(), "phase");
    budget.release(reserved);
    profile.add_time(Phase::Shuffle, shuffle_wait);

    let io_now = store.stats();
    Ok(ReduceResult {
        partition,
        stats: OpStats {
            records_in,
            groups_out,
            early_emits: 0, // snapshots are counted separately
            io: IoStats {
                bytes_written: io_now.bytes_written - io_base.bytes_written,
                bytes_read: io_now.bytes_read - io_base.bytes_read,
                runs_created: io_now.runs_created - io_base.runs_created,
                runs_deleted: io_now.runs_deleted - io_base.runs_deleted,
            },
            profile,
            peak_mem: peak_reserved,
            spills,
            passes: 0,
        },
        snapshots_taken,
    })
}

/// Streaming k-way merge over sorted in-memory segments.
struct VecMergeCursor<'a> {
    segs: &'a [SortedSeg],
    heap: BinaryHeap<Reverse<(&'a [u8], usize, usize)>>, // (key, seg, idx)
}

impl<'a> VecMergeCursor<'a> {
    fn new(segs: &'a [SortedSeg]) -> Self {
        let mut heap = BinaryHeap::new();
        for (s, seg) in segs.iter().enumerate() {
            if !seg.records.is_empty() {
                heap.push(Reverse((seg.records[0].0.as_slice(), s, 0)));
            }
        }
        VecMergeCursor { segs, heap }
    }

    fn next_pair(&mut self) -> Option<(Vec<u8>, &'a [u8])> {
        let Reverse((key, s, i)) = self.heap.pop()?;
        if i + 1 < self.segs[s].records.len() {
            self.heap.push(Reverse((
                self.segs[s].records[i + 1].0.as_slice(),
                s,
                i + 1,
            )));
        }
        Some((key.to_vec(), self.segs[s].records[i].1.as_slice()))
    }
}

/// Merge all buffered sorted segments into one on-disk run, collapsing
/// key-streaks through the aggregate (Hadoop applies combine on reducer
/// buffer fill — and writes the data out regardless, §III-B.4).
fn spill_buffered(
    buffered: &mut Vec<SortedSeg>,
    merger: &mut MultiPassMerger,
    store: &Arc<dyn SpillStore>,
    agg: &Arc<dyn Aggregator>,
    profile: &mut Profile,
    trace: &mut LocalTracer,
) -> Result<()> {
    if buffered.is_empty() {
        return Ok(());
    }
    trace.begin(Phase::Merge.label(), "phase");
    let t = Instant::now();
    let mut writer = store.begin_run()?;
    let mut cursor = VecMergeCursor::new(buffered);
    let mut current: Option<(Vec<u8>, Vec<u8>)> = None;
    while let Some((k, v)) = cursor.next_pair() {
        match &mut current {
            Some((ck, state)) if *ck == k => agg.update(&k, state, v),
            _ => {
                if let Some((ck, state)) = current.take() {
                    writer.write_record(&ck, &state)?;
                }
                current = Some((k.clone(), agg.init(&k, v)));
            }
        }
    }
    if let Some((ck, state)) = current.take() {
        writer.write_record(&ck, &state)?;
    }
    let meta = writer.finish()?;
    profile.add_time(Phase::Merge, t.elapsed());
    trace.end(Phase::Merge.label(), "phase");
    trace.instant(
        "reduce_spill",
        "spill",
        &[
            ("bytes", meta.bytes as f64),
            ("records", meta.records as f64),
        ],
    );
    buffered.clear();
    merger.add_run(meta)
}

/// MapReduce Online snapshot: non-destructively re-read everything
/// received so far (on-disk runs + in-memory segments), aggregate, and
/// emit approximate answers. The re-read is the snapshot's I/O cost.
fn take_snapshot(
    buffered: &[SortedSeg],
    merger: &MultiPassMerger,
    store: &Arc<dyn SpillStore>,
    agg: &Arc<dyn Aggregator>,
    sink: &mut dyn Sink,
    profile: &mut Profile,
) -> Result<()> {
    let t = Instant::now();
    let mut states: ByteMap<Vec<u8>> = ByteMap::default();
    for run in merger.runs() {
        let mut reader = store.open_run(run.id)?;
        while let Some(rec) = reader.next_record()? {
            // Run records are already aggregate states.
            match states.get_mut(rec.key) {
                Some(s) => agg.merge(rec.key, s, rec.value),
                None => {
                    states.insert(rec.key.to_vec(), rec.value.to_vec());
                }
            }
        }
    }
    for seg in buffered {
        for (k, v) in &seg.records {
            match states.get_mut(k.as_slice()) {
                Some(s) => agg.update(k, s, v),
                None => {
                    states.insert(k.clone(), agg.init(k, v));
                }
            }
        }
    }
    for (k, state) in states {
        let out = agg.finish(&k, state);
        sink.emit(&k, &out, EmitKind::Early);
    }
    profile.add_time(Phase::Merge, t.elapsed());
    Ok(())
}

/// In-memory sort-merge reduce used by tests and by the capability matrix;
/// delegates to [`SortMergeGrouper`]. Exposed mainly so downstream crates
/// can run a standalone sort-merge reduce outside a full job.
pub fn standalone_sortmerge(
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    merge_factor: usize,
    agg: Arc<dyn Aggregator>,
) -> Result<SortMergeGrouper> {
    SortMergeGrouper::new(store, budget, merge_factor, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, ShuffleMode};
    use crate::shuffle::{shuffle_fabric, Segment};
    use onepass_core::io::SharedMemStore;
    use onepass_groupby::{SumAgg, VecSink};

    fn sorted_seg(map_task: usize, pairs: &[(&str, u64)]) -> Segment {
        let mut records: Vec<(Vec<u8>, Vec<u8>)> = pairs
            .iter()
            .map(|(k, v)| (k.as_bytes().to_vec(), v.to_le_bytes().to_vec()))
            .collect();
        records.sort();
        Segment {
            map_task,
            partition: 0,
            sorted: true,
            combined: false,
            records,
        }
    }

    fn job_sortmerge(snapshots: Vec<f64>) -> JobSpec {
        JobSpec::builder("t")
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .backend(ReduceBackend::SortMerge {
                merge_factor: 3,
                snapshots,
            })
            .shuffle(ShuffleMode::Pull)
            .build()
            .unwrap()
    }

    fn dec(v: &[u8]) -> u64 {
        u64::from_le_bytes(v.try_into().unwrap())
    }

    #[test]
    fn sortmerge_reduce_in_memory() {
        let job = job_sortmerge(vec![]);
        let (tx, rxs) = shuffle_fabric(1, 64);
        tx.send_segment(sorted_seg(0, &[("a", 1), ("b", 2)]));
        tx.send_segment(sorted_seg(1, &[("a", 10), ("c", 3)]));
        tx.map_done(0);
        tx.map_done(1);
        let mut sink = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let res = run_reduce_task(
            &job,
            0,
            &rxs[0],
            2,
            store,
            MemoryBudget::unlimited(),
            &mut sink,
            &mut LocalTracer::disabled(),
        )
        .unwrap();
        assert_eq!(res.stats.groups_out, 3);
        assert_eq!(res.stats.io.bytes_written, 0);
        let a = sink
            .emitted
            .iter()
            .find(|(k, _, _)| k == b"a")
            .map(|(_, v, _)| dec(v))
            .unwrap();
        assert_eq!(a, 11);
    }

    #[test]
    fn sortmerge_reduce_spills_and_merges() {
        let job = job_sortmerge(vec![]);
        let (tx, rxs) = shuffle_fabric(1, 1024);
        let n_maps = 12;
        for m in 0..n_maps {
            let pairs: Vec<(String, u64)> = (0..20)
                .map(|i| (format!("key{:03}", (m * 7 + i) % 40), 1u64))
                .collect();
            let borrowed: Vec<(&str, u64)> = pairs.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            tx.send_segment(sorted_seg(m, &borrowed));
            tx.map_done(m);
        }
        let mut sink = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let res = run_reduce_task(
            &job,
            0,
            &rxs[0],
            n_maps,
            store,
            MemoryBudget::new(700),
            &mut sink,
            &mut LocalTracer::disabled(),
        )
        .unwrap();
        assert_eq!(res.stats.groups_out, 40);
        assert!(res.stats.spills >= 2);
        assert!(res.stats.io.bytes_written > 0);
        let total: u64 = sink
            .emitted
            .iter()
            .filter(|(_, _, k)| *k == EmitKind::Final)
            .map(|(_, v, _)| dec(v))
            .sum();
        assert_eq!(total, (n_maps * 20) as u64);
    }

    #[test]
    fn snapshots_emit_early_answers_and_cost_io() {
        let job = job_sortmerge(vec![0.5]);
        let (tx, rxs) = shuffle_fabric(1, 1024);
        let n_maps = 4;
        for m in 0..n_maps {
            tx.send_segment(sorted_seg(m, &[("x", 1), ("y", 1)]));
            tx.map_done(m);
        }
        let mut sink = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let res = run_reduce_task(
            &job,
            0,
            &rxs[0],
            n_maps,
            store,
            MemoryBudget::unlimited(),
            &mut sink,
            &mut LocalTracer::disabled(),
        )
        .unwrap();
        assert_eq!(res.snapshots_taken, 1);
        let early: Vec<_> = sink
            .emitted
            .iter()
            .filter(|(_, _, k)| *k == EmitKind::Early)
            .collect();
        assert_eq!(early.len(), 2, "snapshot covers both keys");
        // Snapshot values are partial (2 of 4 maps seen).
        let x_early = early.iter().find(|(k, _, _)| k == b"x").unwrap();
        assert_eq!(dec(&x_early.1), 2);
        // Finals are exact.
        let x_final = sink
            .emitted
            .iter()
            .find(|(k, _, kind)| k == b"x" && *kind == EmitKind::Final)
            .unwrap();
        assert_eq!(dec(&x_final.1), 4);
    }

    #[test]
    fn hash_backend_reduces_combined_segments() {
        let job = JobSpec::builder("t")
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .backend(ReduceBackend::IncHash { early: None })
            .build()
            .unwrap();
        let (tx, rxs) = shuffle_fabric(1, 64);
        // Combined segments: values are partial sums (states).
        let mut seg = sorted_seg(0, &[("a", 5), ("b", 7)]);
        seg.combined = true;
        tx.send_segment(seg);
        let mut seg = sorted_seg(1, &[("a", 3)]);
        seg.combined = true;
        tx.send_segment(seg);
        tx.map_done(0);
        tx.map_done(1);
        let mut sink = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let res = run_reduce_task(
            &job,
            0,
            &rxs[0],
            2,
            store,
            MemoryBudget::unlimited(),
            &mut sink,
            &mut LocalTracer::disabled(),
        )
        .unwrap();
        assert_eq!(res.stats.groups_out, 2);
        let a = sink
            .emitted
            .iter()
            .find(|(k, _, _)| k == b"a")
            .map(|(_, v, _)| dec(v))
            .unwrap();
        assert_eq!(a, 8, "partial states must merge, not re-count");
    }

    #[test]
    fn reducer_with_no_segments_finishes_cleanly() {
        let job = job_sortmerge(vec![]);
        let (tx, rxs) = shuffle_fabric(1, 8);
        tx.map_done(0);
        let mut sink = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let res = run_reduce_task(
            &job,
            0,
            &rxs[0],
            1,
            store,
            MemoryBudget::unlimited(),
            &mut sink,
            &mut LocalTracer::disabled(),
        )
        .unwrap();
        assert_eq!(res.stats.groups_out, 0);
        assert!(sink.emitted.is_empty());
    }
}
