//! Reduce task execution: receive shuffle segments, drive the configured
//! group-by backend, emit output.
//!
//! The sort-merge backend here is the runtime-level reproduction of
//! Hadoop's reducer (Fig. 1 right half): it buffers *pre-sorted* map
//! segments, merges-and-spills them when its memory budget fills, lets
//! [`MultiPassMerger`] run progressive background merges, and performs the
//! blocking final merge at the end. It also implements MapReduce Online's
//! snapshot mechanism (§III-D): at configured map-completion fractions it
//! re-reads everything received so far and emits approximate answers —
//! "this is done by repeating the merge operation for each snapshot",
//! with the corresponding I/O charge.
//!
//! Hash backends delegate to the `onepass-groupby` operators.
//!
//! # Attempts, dedup, and retry
//!
//! When the driver runs with fault tolerance enabled, a reduce task must
//! cope with two new realities:
//!
//! * **Duplicate map attempts.** Retried or speculative map tasks can emit
//!   segments for the same logical map task more than once. The reducer
//!   buffers segments per `(map_task, attempt)` and *commits* exactly one
//!   attempt per task — the one whose [`ShuffleMsg::MapDone`] arrives
//!   first (per-channel FIFO ordering guarantees all of an attempt's
//!   segments precede its `MapDone`). Segments from losing attempts are
//!   dropped, so re-execution never double-counts records.
//! * **Its own failures.** A failing spill store (or an injected fault)
//!   aborts the in-flight backend state. Under a retry budget the wrapper
//!   rebuilds fresh backend state from a resources factory and *replays*
//!   the committed segments it retained, with early emissions muted so
//!   downstream consumers never see the same snapshot twice. Final output
//!   is staged and only released once `finish` succeeds, so a failed
//!   final merge cannot double-emit.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Receiver;

use onepass_core::bytes_kv::{SegmentBuf, SegmentBufBuilder};
use onepass_core::error::{Error, Result};
use onepass_core::fault::{FaultAction, FaultInjector, FaultTarget};
use onepass_core::hashlib::{ByteMap, HashFamily};
use onepass_core::io::{IoStats, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_core::metrics::{gauges, Phase, Profile};
use onepass_core::trace::LocalTracer;
use onepass_groupby::aggregate::StateInput;
use onepass_groupby::{
    Aggregator, EmitKind, GroupBy, MultiPassMerger, OpStats, Sink, SortMergeGrouper, VecSink,
};

use crate::job::{JobSpec, ReduceBackend};
use crate::shuffle::{Segment, ShuffleMsg};

/// Result of one reduce task.
#[derive(Debug, Clone)]
pub struct ReduceResult {
    /// The partition this task served.
    pub partition: usize,
    /// Operator statistics (records, groups, spill I/O, CPU profile).
    pub stats: OpStats,
    /// Snapshots emitted (sort-merge + snapshots backend only).
    pub snapshots_taken: u64,
    /// Execution attempts consumed (1 = succeeded first try).
    pub attempts: usize,
}

/// Fault-tolerance knobs for [`run_reduce_task_ft`].
#[derive(Debug, Clone)]
pub struct ReduceRetryOpts {
    /// Total attempts allowed, including the first (1 = no retries).
    pub max_attempts: usize,
    /// Sleep between a failed attempt and its retry.
    pub backoff: Duration,
    /// Dedup segments by `(map_task, attempt)` and commit the first
    /// attempt whose `MapDone` arrives. Enable whenever map tasks can run
    /// more than once (retries or speculation); leave off to preserve the
    /// eager single-attempt fast path.
    pub dedup_attempts: bool,
    /// Planned fault schedule consulted per absorbed segment.
    pub injector: FaultInjector,
    /// Hash family used to construct hash-backend groupers (the engine's
    /// [`EngineConfig::hash_family`](crate::EngineConfig::hash_family)).
    pub hash_family: HashFamily,
}

impl Default for ReduceRetryOpts {
    fn default() -> Self {
        ReduceRetryOpts {
            max_attempts: 1,
            backoff: Duration::ZERO,
            dedup_attempts: false,
            injector: FaultInjector::none(),
            hash_family: HashFamily::default(),
        }
    }
}

/// The aggregate the backend should run: raw job aggregate when segments
/// carry raw values; a [`StateInput`] wrapper when map-side combine ran.
fn effective_agg(job: &JobSpec, combined: bool) -> Arc<dyn Aggregator> {
    if combined {
        Arc::new(StateInput(Arc::clone(&job.agg)))
    } else {
        Arc::clone(&job.agg)
    }
}

/// Render a caught panic payload for error messages.
pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

/// Run `f`, converting a panic into an [`Error::InvalidState`] so the
/// retry machinery treats buggy user code like any other task failure.
fn guarded<R>(f: impl FnOnce() -> Result<R>) -> Result<R> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(p) => Err(Error::InvalidState(format!(
            "reduce task panicked: {}",
            panic_message(p.as_ref())
        ))),
    }
}

/// Consult the fault plan before absorbing more records. `records` is the
/// number of shuffle records this attempt has already absorbed.
fn check_injector(
    injector: &FaultInjector,
    partition: usize,
    attempt: usize,
    records: u64,
) -> Result<()> {
    match injector.check(FaultTarget::Reduce, partition, attempt, records) {
        None => Ok(()),
        Some(FaultAction::Fail) => Err(Error::Io(std::io::Error::other(format!(
            "injected fault: reduce task {partition} attempt {attempt}"
        )))),
        Some(FaultAction::Panic) => {
            panic!("injected panic: reduce task {partition} attempt {attempt}")
        }
        Some(FaultAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

/// Per-task governance bookkeeping for [`run_reduce_task_ft`].
struct GovState {
    /// Lease limit at the last check; a change means the governor
    /// rebalanced this task's share.
    last_limit: usize,
    /// Shed requests this task honoured.
    sheds: u64,
    /// Bytes those sheds actually freed.
    shed_bytes: u64,
}

/// Sink adapter that drops [`EmitKind::Early`] emissions. Used while
/// replaying retained segments into a rebuilt attempt, so snapshots /
/// early answers the first attempt already published are not repeated.
struct MuteEarly<'a> {
    inner: &'a mut dyn Sink,
}

impl Sink for MuteEarly<'_> {
    fn emit(&mut self, key: &[u8], value: &[u8], kind: EmitKind) {
        if kind != EmitKind::Early {
            self.inner.emit(key, value, kind);
        }
    }
}

/// Run one reduce task until all `total_map_tasks` map tasks have
/// reported done, then finish the backend into `sink`. Single-attempt
/// compatibility entry point: no retries, no attempt dedup.
#[allow(clippy::too_many_arguments)]
pub fn run_reduce_task(
    job: &JobSpec,
    partition: usize,
    rx: &Receiver<ShuffleMsg>,
    total_map_tasks: usize,
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    sink: &mut dyn Sink,
    trace: &mut LocalTracer,
) -> Result<ReduceResult> {
    let mut first = Some((store, budget));
    run_reduce_task_ft(
        job,
        partition,
        rx,
        total_map_tasks,
        &mut move || {
            first
                .take()
                .ok_or_else(|| Error::InvalidState("single-attempt reduce cannot rebuild".into()))
        },
        sink,
        trace,
        &ReduceRetryOpts::default(),
    )
}

/// Factory producing the spill store + memory budget for one reduce
/// attempt. Called once up front and once per retry; handing each attempt
/// a *fresh* budget guarantees reservations abandoned by a failed attempt
/// cannot starve its successor.
pub type ReduceResources<'a> = dyn FnMut() -> Result<(Arc<dyn SpillStore>, MemoryBudget)> + 'a;

/// Fault-tolerant reduce task: attempt-dedups shuffle input, retries the
/// backend on failure (rebuilding state and replaying retained committed
/// segments), and never double-emits output across attempts.
#[allow(clippy::too_many_arguments)]
pub fn run_reduce_task_ft(
    job: &JobSpec,
    partition: usize,
    rx: &Receiver<ShuffleMsg>,
    total_map_tasks: usize,
    resources: &mut ReduceResources<'_>,
    sink: &mut dyn Sink,
    trace: &mut LocalTracer,
    opts: &ReduceRetryOpts,
) -> Result<ReduceResult> {
    run_reduce_task_open(
        job,
        partition,
        rx,
        Some(total_map_tasks),
        resources,
        sink,
        trace,
        opts,
    )
}

/// [`run_reduce_task_ft`] generalised over an *unknown* map-task count:
/// with `total_map_tasks == None` (a streamed split feed), the task keeps
/// absorbing until a [`ShuffleMsg::InputExhausted`] broadcast tells it how
/// many map tasks the job ended up with. Per-task bookkeeping grows on
/// demand since task ids are discovered as segments arrive.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_reduce_task_open(
    job: &JobSpec,
    partition: usize,
    rx: &Receiver<ShuffleMsg>,
    total_map_tasks: Option<usize>,
    resources: &mut ReduceResources<'_>,
    sink: &mut dyn Sink,
    trace: &mut LocalTracer,
    opts: &ReduceRetryOpts,
) -> Result<ReduceResult> {
    let retain = opts.max_attempts > 1;
    let dedup = opts.dedup_attempts;
    let mut total = total_map_tasks;
    let mut attempt = 0usize;
    // Records absorbed by the *current* attempt; the injector's trigger
    // counter. Reset (to the replayed total) when an attempt is rebuilt.
    let mut attempt_records = 0u64;
    // Committed segments kept for replay; only populated when retries are
    // actually possible, so the common single-attempt path pays nothing.
    let mut retained: Vec<Segment> = Vec::new();
    let sized = total.unwrap_or(0);
    // Per map task: the committed attempt id, once its MapDone arrived.
    let mut committed: Vec<Option<usize>> = vec![None; sized];
    // Segments from not-yet-committed attempts, buffered until a MapDone
    // picks the winner.
    let mut pending: Vec<Vec<Segment>> = (0..sized).map(|_| Vec::new()).collect();
    let mut maps_done = 0usize;
    let mut snapshots_taken = 0u64;
    let mut shuffle_wait = Duration::ZERO;

    let (store, budget) = resources()?;
    if budget.is_leased() {
        trace.instant(
            "mem_lease",
            "mem",
            &[
                ("partition", partition as f64),
                ("limit_bytes", budget.limit() as f64),
            ],
        );
    }
    // Governance bookkeeping: the last lease limit we observed (to spot
    // governor rebalances) and shed totals for the profile counters.
    let mut gov = GovState {
        last_limit: budget.limit(),
        sheds: 0,
        shed_bytes: 0,
    };
    let mut state = Some(AttemptState::new(
        job,
        store,
        budget,
        total,
        opts.hash_family,
    )?);

    // Retry ladder shared by absorb / snapshot / finish failures: burn an
    // attempt, back off, rebuild state, replay retained segments. Returns
    // the original error once the budget is exhausted.
    macro_rules! recover {
        ($err:expr) => {{
            let mut err = $err;
            loop {
                trace.instant(
                    "task_failed",
                    "fault",
                    &[("partition", partition as f64), ("attempt", attempt as f64)],
                );
                attempt += 1;
                if attempt >= opts.max_attempts {
                    return Err(err);
                }
                if !opts.backoff.is_zero() {
                    std::thread::sleep(opts.backoff);
                }
                trace.instant(
                    "retry",
                    "fault",
                    &[("partition", partition as f64), ("attempt", attempt as f64)],
                );
                match rebuild(
                    job, resources, total, maps_done, &retained, opts, partition, attempt, sink,
                ) {
                    Ok((st, replayed)) => {
                        gov.last_limit = st.budget_ref().limit();
                        state = Some(st);
                        attempt_records = replayed;
                        break;
                    }
                    Err(e2) => err = e2,
                }
            }
        }};
    }

    // Service governor demands between segments: record an observed lease
    // rebalance and honour a posted shed request (spill victim duty).
    // Static budgets never carry either, so this is branch-only overhead.
    macro_rules! govern {
        () => {{
            let (lim, target) = {
                let st = state.as_ref().expect("attempt state present");
                let b = st.budget_ref();
                (b.limit(), b.take_shed_request())
            };
            if lim != gov.last_limit {
                gov.last_limit = lim;
                trace.instant(
                    "mem_rebalance",
                    "mem",
                    &[("partition", partition as f64), ("limit_bytes", lim as f64)],
                );
            }
            if target > 0 {
                let res = {
                    let st = state.as_mut().expect("attempt state present");
                    guarded(|| st.shed(target, trace))
                };
                match res {
                    Ok(freed) => {
                        gov.sheds += 1;
                        gov.shed_bytes += freed as u64;
                        trace.instant(
                            "mem_shed",
                            "mem",
                            &[
                                ("partition", partition as f64),
                                ("target_bytes", target as f64),
                                ("freed_bytes", freed as f64),
                            ],
                        );
                    }
                    Err(e) => {
                        if let Some(st) = state.as_mut() {
                            st.abandon();
                        }
                        recover!(e);
                    }
                }
            }
        }};
    }

    // Absorb one committed segment into the current attempt's state,
    // recovering on failure.
    macro_rules! deliver {
        ($seg:expr) => {{
            let seg = $seg;
            if retain {
                retained.push(seg.clone());
            }
            let n = seg.len() as u64;
            let res = {
                let st = state.as_mut().expect("attempt state present");
                guarded(|| {
                    check_injector(&opts.injector, partition, attempt, attempt_records)?;
                    st.absorb(job, seg, sink, trace)
                })
            };
            match res {
                Ok(()) => {
                    attempt_records += n;
                    govern!();
                }
                Err(e) => {
                    if let Some(st) = state.as_mut() {
                        st.abandon();
                    }
                    recover!(e);
                }
            }
        }};
    }

    // Bookkeeping after a map task commits: snapshots may be due.
    macro_rules! after_commit {
        () => {{
            let res = {
                let st = state.as_mut().expect("attempt state present");
                guarded(|| st.on_map_committed(maps_done, total, sink, trace))
            };
            match res {
                Ok(n) => snapshots_taken += n,
                Err(e) => {
                    if let Some(st) = state.as_mut() {
                        st.abandon();
                    }
                    recover!(e);
                }
            }
        }};
    }

    // Grow per-task bookkeeping on demand: under a streamed feed, map
    // task ids are discovered as their segments arrive.
    macro_rules! ensure_task {
        ($id:expr) => {{
            let id = $id;
            if id >= committed.len() {
                committed.resize(id + 1, None);
                pending.resize_with(id + 1, Vec::new);
            }
        }};
    }

    // The shuffle phase (Fig. 2a lane): from task start until every map
    // task has a committed attempt. With an unknown total (streamed
    // feed), keep going until InputExhausted pins it down.
    trace.begin(Phase::Shuffle.label(), "phase");
    while total.is_none_or(|t| maps_done < t) {
        let wait_start = Instant::now();
        let msg = rx
            .recv()
            .map_err(|_| Error::InvalidState("shuffle channel closed early".into()))?;
        shuffle_wait += wait_start.elapsed();
        match msg {
            ShuffleMsg::Abort => {
                trace.end(Phase::Shuffle.label(), "phase");
                return Err(Error::InvalidState("job aborted by driver".into()));
            }
            ShuffleMsg::InputExhausted { total_map_tasks: t } => {
                total = Some(t);
                // Snapshot fractions become concrete map-completion
                // triggers now; triggers already passed are dropped so a
                // late-arriving total can't cause stale snapshots.
                if let Some(st) = state.as_mut() {
                    st.install_snapshot_plan(t, maps_done);
                }
            }
            ShuffleMsg::Segment(seg) => {
                if !dedup {
                    // Fast path: exactly one attempt per map task exists,
                    // consume eagerly (pipelined reduce).
                    deliver!(seg);
                } else {
                    ensure_task!(seg.map_task);
                    match committed[seg.map_task] {
                        Some(a) if a == seg.attempt => deliver!(seg),
                        Some(_) => {} // losing attempt: drop
                        None => pending[seg.map_task].push(seg),
                    }
                }
            }
            ShuffleMsg::MapDone {
                map_task,
                attempt: map_attempt,
            } => {
                if !dedup {
                    maps_done += 1;
                    after_commit!();
                } else {
                    ensure_task!(map_task);
                    if committed[map_task].is_none() {
                        committed[map_task] = Some(map_attempt);
                        maps_done += 1;
                        for seg in std::mem::take(&mut pending[map_task]) {
                            if seg.attempt == map_attempt {
                                deliver!(seg);
                            }
                        }
                        after_commit!();
                    }
                    // else: a duplicate MapDone from a losing attempt —
                    // ignore.
                }
            }
        }
    }
    trace.end(Phase::Shuffle.label(), "phase");

    // Finish, retrying on failure. While retries remain, finals are staged
    // and only flushed on success so a mid-merge failure cannot leave half
    // the output already emitted.
    let mut stats = loop {
        let st = state.take().expect("attempt state present");
        let can_retry = attempt + 1 < opts.max_attempts;
        let res = if can_retry {
            let mut staged = VecSink::default();
            let r = guarded(|| {
                check_injector(&opts.injector, partition, attempt, attempt_records)?;
                st.finish(job, &mut staged, trace)
            });
            r.inspect(|_| {
                for (k, v, kind) in staged.emitted {
                    sink.emit(&k, &v, kind);
                }
            })
        } else {
            guarded(|| {
                check_injector(&opts.injector, partition, attempt, attempt_records)?;
                st.finish(job, sink, trace)
            })
        };
        match res {
            Ok(stats) => break stats,
            Err(e) => recover!(e),
        }
    };
    stats.profile.add_time(Phase::Shuffle, shuffle_wait);
    if gov.sheds > 0 {
        stats.profile.add_count(gauges::MEM_SHED, gov.sheds);
        stats
            .profile
            .add_count(gauges::MEM_SHED_BYTES, gov.shed_bytes);
    }
    Ok(ReduceResult {
        partition,
        stats,
        snapshots_taken,
        attempts: attempt + 1,
    })
}

/// Build fresh attempt state and replay the retained committed segments
/// into it. Early emissions are muted (already published by a previous
/// attempt) and pending snapshots that were already due are suppressed.
#[allow(clippy::too_many_arguments)]
fn rebuild(
    job: &JobSpec,
    resources: &mut ReduceResources<'_>,
    total_map_tasks: Option<usize>,
    maps_done: usize,
    retained: &[Segment],
    opts: &ReduceRetryOpts,
    partition: usize,
    attempt: usize,
    sink: &mut dyn Sink,
) -> Result<(AttemptState, u64)> {
    let (store, budget) = resources()?;
    let mut st = AttemptState::new(job, store, budget, total_map_tasks, opts.hash_family)?;
    st.skip_snapshots_up_to(maps_done, total_map_tasks);
    let mut records = 0u64;
    // Replay runs under a disabled tracer: the phases were already traced
    // by the failed attempt and re-tracing them would double the spans.
    let mut replay_trace = LocalTracer::disabled();
    let mut mute = MuteEarly { inner: sink };
    for seg in retained {
        let n = seg.len() as u64;
        let res = guarded(|| {
            check_injector(&opts.injector, partition, attempt, records)?;
            st.absorb(job, seg.clone(), &mut mute, &mut replay_trace)
        });
        if let Err(e) = res {
            st.abandon();
            return Err(e);
        }
        records += n;
    }
    Ok((st, records))
}

// ---------------------------------------------------------------------------
// Per-attempt backend state
// ---------------------------------------------------------------------------

/// One attempt's worth of backend state. Built fresh per attempt so a
/// retry never trusts data structures a failure may have corrupted.
enum AttemptState {
    Sort(Box<SortState>),
    Hash(HashState),
}

impl AttemptState {
    fn new(
        job: &JobSpec,
        store: Arc<dyn SpillStore>,
        budget: MemoryBudget,
        total_map_tasks: Option<usize>,
        family: HashFamily,
    ) -> Result<Self> {
        match &job.backend {
            ReduceBackend::SortMerge {
                merge_factor,
                snapshots,
            } => {
                let io_base = store.stats();
                let merger = MultiPassMerger::new(Arc::clone(&store), *merge_factor)?;
                // Snapshot fractions only become concrete map-completion
                // triggers once the total is known; under a streamed feed
                // that happens at InputExhausted.
                let snapshot_plan = match total_map_tasks {
                    Some(total) => plan_from_fracs(snapshots, total),
                    None => Vec::new(),
                };
                Ok(AttemptState::Sort(Box::new(SortState {
                    store,
                    budget,
                    io_base,
                    merger,
                    buffered: Vec::new(),
                    reserved: 0,
                    peak_reserved: 0,
                    profile: Profile::new(),
                    records_in: 0,
                    spills: 0,
                    agg: None,
                    snapshot_fracs: snapshots.clone(),
                    snapshot_plan,
                })))
            }
            _ => Ok(AttemptState::Hash(HashState {
                store,
                budget,
                family,
                grouper: None,
            })),
        }
    }

    /// The map-task total just became known (streamed feed): compute the
    /// snapshot triggers, dropping any already passed.
    fn install_snapshot_plan(&mut self, total_map_tasks: usize, maps_done: usize) {
        if let AttemptState::Sort(s) = self {
            let mut plan = plan_from_fracs(&s.snapshot_fracs, total_map_tasks);
            plan.retain(|&t| t > maps_done);
            s.snapshot_plan = plan;
        }
    }

    /// Drop snapshot triggers that already fired (or can no longer fire)
    /// in a previous attempt.
    fn skip_snapshots_up_to(&mut self, maps_done: usize, total_map_tasks: Option<usize>) {
        if let AttemptState::Sort(s) = self {
            match total_map_tasks {
                Some(total) if maps_done >= total => s.snapshot_plan.clear(),
                _ => s.snapshot_plan.retain(|&t| t > maps_done),
            }
        }
    }

    /// Release memory reservations held by a failed attempt so the next
    /// one starts from a clean budget (best effort; spill runs the failed
    /// attempt created stay on disk until the store is dropped).
    fn abandon(&mut self) {
        if let AttemptState::Sort(s) = self {
            s.budget.release(s.reserved);
            s.reserved = 0;
        }
    }

    /// The attempt's memory budget (a governor lease when adaptive).
    fn budget_ref(&self) -> &MemoryBudget {
        match self {
            AttemptState::Sort(s) => &s.budget,
            AttemptState::Hash(h) => &h.budget,
        }
    }

    /// Honour a governor shed request: move in-memory state to spill,
    /// freeing budget. Returns bytes freed.
    fn shed(&mut self, target_bytes: usize, trace: &mut LocalTracer) -> Result<usize> {
        match self {
            AttemptState::Sort(s) => s.shed(trace),
            AttemptState::Hash(h) => match &mut h.grouper {
                Some(g) => g.shed(target_bytes),
                None => Ok(0),
            },
        }
    }

    /// Absorb one committed segment.
    fn absorb(
        &mut self,
        job: &JobSpec,
        seg: Segment,
        sink: &mut dyn Sink,
        trace: &mut LocalTracer,
    ) -> Result<()> {
        match self {
            AttemptState::Sort(s) => s.absorb(job, seg, trace),
            AttemptState::Hash(h) => h.absorb(job, seg, sink, trace),
        }
    }

    /// A map task just committed; take any snapshots that are now due.
    /// Returns the number of snapshots emitted.
    fn on_map_committed(
        &mut self,
        maps_done: usize,
        total_map_tasks: Option<usize>,
        sink: &mut dyn Sink,
        trace: &mut LocalTracer,
    ) -> Result<u64> {
        match self {
            AttemptState::Sort(s) => s.on_map_committed(maps_done, total_map_tasks, sink, trace),
            AttemptState::Hash(_) => Ok(0),
        }
    }

    /// All input absorbed: run the final merge / reduce into `sink`.
    fn finish(
        self,
        job: &JobSpec,
        sink: &mut dyn Sink,
        trace: &mut LocalTracer,
    ) -> Result<OpStats> {
        match self {
            AttemptState::Sort(s) => s.finish(job, sink, trace),
            AttemptState::Hash(h) => h.finish(sink, trace),
        }
    }
}

/// Hash-backend state: a lazily-built `onepass-groupby` operator.
struct HashState {
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    family: HashFamily,
    grouper: Option<Box<dyn GroupBy>>,
}

impl HashState {
    fn absorb(
        &mut self,
        job: &JobSpec,
        seg: Segment,
        sink: &mut dyn Sink,
        trace: &mut LocalTracer,
    ) -> Result<()> {
        let g = match &mut self.grouper {
            Some(g) => g,
            None => {
                // Lazily build the backend now that the first segment
                // tells us whether input is combined. Construction goes
                // through the executor's shared service.
                let agg = effective_agg(job, seg.combined);
                let g = crate::executor::build_hash_grouper(
                    &job.backend,
                    Arc::clone(&self.store),
                    self.budget.clone(),
                    agg,
                    Some(trace.fork()),
                    self.family,
                )?;
                self.grouper.insert(g)
            }
        };
        g.push_batch(&seg.records, sink)?;
        Ok(())
    }

    fn finish(self, sink: &mut dyn Sink, trace: &mut LocalTracer) -> Result<OpStats> {
        trace.begin(Phase::ReduceFn.label(), "phase");
        let stats = match self.grouper {
            Some(mut g) => g.finish(sink),
            None => Ok(OpStats::default()), // received no data at all
        };
        trace.end(Phase::ReduceFn.label(), "phase");
        stats
    }
}

// ---------------------------------------------------------------------------
// Sort-merge reduce (Hadoop / HOP)
// ---------------------------------------------------------------------------

/// Sort-merge backend state for one attempt. Buffered segments are the
/// arena-backed [`SegmentBuf`]s straight off the shuffle channel — sorted
/// in place (entry permutation only) when a segment arrives unsorted.
struct SortState {
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    io_base: IoStats,
    merger: MultiPassMerger,
    buffered: Vec<SegmentBuf>,
    reserved: usize,
    peak_reserved: usize,
    profile: Profile,
    records_in: u64,
    spills: u64,
    agg: Option<Arc<dyn Aggregator>>,
    /// Configured snapshot fractions, kept so the trigger plan can be
    /// (re)computed when a streamed feed's total arrives late.
    snapshot_fracs: Vec<f64>,
    snapshot_plan: Vec<usize>,
}

/// Convert snapshot fractions into sorted, deduped map-completion
/// trigger counts for a known map-task total.
fn plan_from_fracs(fracs: &[f64], total_map_tasks: usize) -> Vec<usize> {
    let mut plan: Vec<usize> = fracs
        .iter()
        .map(|f| ((f * total_map_tasks as f64).ceil() as usize).max(1))
        .collect();
    plan.sort_unstable();
    plan.dedup();
    plan
}

impl SortState {
    fn absorb(&mut self, job: &JobSpec, seg: Segment, trace: &mut LocalTracer) -> Result<()> {
        let a = self
            .agg
            .get_or_insert_with(|| effective_agg(job, seg.combined))
            .clone();
        let records = if seg.sorted {
            seg.records
        } else {
            // HOP "moves some of the sorting work to reducers"
            // (§III-D); charge it to the reduce side. Sorting permutes
            // the entry table only — the arena stays shared.
            let t = Instant::now();
            let sorted = seg.records.sorted_by_key();
            self.profile.add_time(Phase::ReduceGroup, t.elapsed());
            sorted
        };
        self.records_in += records.len() as u64;
        let bytes: usize = records.payload_bytes() + 16 * records.len();
        let count_trigger = self.buffered.len() + 1 >= job.inmem_merge_threshold;
        // Under a governor lease, ask for more budget before giving up
        // and spilling; a static budget rejects escalation outright.
        if count_trigger || !self.budget.try_grant_or_request(bytes) {
            spill_buffered(
                &mut self.buffered,
                &mut self.merger,
                &self.store,
                &a,
                &mut self.profile,
                trace,
            )?;
            self.spills += 1;
            self.budget.release(self.reserved);
            self.reserved = 0;
            if !self.budget.try_grant(bytes) {
                // A single segment larger than the whole budget: a
                // reducer must be able to hold at least one
                // segment, so take it (soft limit) and flush it to
                // disk right below.
                self.budget.force_grant(bytes);
            }
        }
        self.reserved += bytes;
        self.peak_reserved = self.peak_reserved.max(self.reserved);
        self.buffered.push(records);
        if self.budget.over_limit() {
            spill_buffered(
                &mut self.buffered,
                &mut self.merger,
                &self.store,
                &a,
                &mut self.profile,
                trace,
            )?;
            self.spills += 1;
            self.budget.release(self.reserved);
            self.reserved = 0;
        }
        Ok(())
    }

    /// Governor shed duty: merge-spill the whole buffered tail (the
    /// smallest spillable unit this backend has) and release its budget.
    fn shed(&mut self, trace: &mut LocalTracer) -> Result<usize> {
        if self.buffered.is_empty() {
            return Ok(0);
        }
        let Some(a) = self.agg.clone() else {
            return Ok(0);
        };
        let freed = self.reserved;
        spill_buffered(
            &mut self.buffered,
            &mut self.merger,
            &self.store,
            &a,
            &mut self.profile,
            trace,
        )?;
        self.spills += 1;
        self.budget.release(self.reserved);
        self.reserved = 0;
        Ok(freed)
    }

    fn on_map_committed(
        &mut self,
        maps_done: usize,
        total_map_tasks: Option<usize>,
        sink: &mut dyn Sink,
        trace: &mut LocalTracer,
    ) -> Result<u64> {
        let mut taken = 0u64;
        // Snapshots are mid-stream approximations: none fire while the
        // total is unknown (empty plan) or once every map has committed.
        if total_map_tasks.is_some_and(|t| maps_done < t) {
            while self.snapshot_plan.first().is_some_and(|&t| maps_done >= t) {
                self.snapshot_plan.remove(0);
                if let Some(a) = &self.agg {
                    trace.begin("snapshot", "phase");
                    take_snapshot(
                        &self.buffered,
                        &self.merger,
                        &self.store,
                        a,
                        sink,
                        &mut self.profile,
                    )?;
                    trace.end("snapshot", "phase");
                    taken += 1;
                }
            }
        }
        Ok(taken)
    }

    fn finish(
        mut self,
        job: &JobSpec,
        sink: &mut dyn Sink,
        trace: &mut LocalTracer,
    ) -> Result<OpStats> {
        let a = self.agg.take().unwrap_or_else(|| effective_agg(job, false));
        let mut groups_out = 0u64;
        trace.begin(Phase::ReduceFn.label(), "phase");
        if self.merger.runs().is_empty() && self.merger.merge_passes() == 0 {
            // All data still in memory: merge and reduce directly.
            let t = Instant::now();
            let mut cursor = VecMergeCursor::new(&self.buffered);
            let mut current: Option<(Vec<u8>, Vec<u8>)> = None;
            while let Some((k, v)) = cursor.next_pair() {
                match &mut current {
                    Some((ck, state)) if ck.as_slice() == k => a.update(k, state, v),
                    _ => {
                        if let Some((ck, state)) = current.take() {
                            let out = a.finish(&ck, state);
                            sink.emit(&ck, &out, EmitKind::Final);
                            groups_out += 1;
                        }
                        current = Some((k.to_vec(), a.init(k, v)));
                    }
                }
            }
            if let Some((ck, state)) = current.take() {
                let out = a.finish(&ck, state);
                sink.emit(&ck, &out, EmitKind::Final);
                groups_out += 1;
            }
            self.profile.add_time(Phase::ReduceFn, t.elapsed());
        } else {
            // Hadoop behaviour: the in-memory tail is spilled too, then the
            // final (multi-pass if needed) merge feeds the reduce function.
            if !self.buffered.is_empty() {
                spill_buffered(
                    &mut self.buffered,
                    &mut self.merger,
                    &self.store,
                    &a,
                    &mut self.profile,
                    trace,
                )?;
                self.spills += 1;
            }
            let mut grouped = self.merger.into_grouped()?;
            let t = Instant::now();
            while let Some((key, states)) = grouped.next_group()? {
                let mut iter = states.into_iter();
                let mut state = iter.next().expect("non-empty group");
                for other in iter {
                    a.merge(&key, &mut state, &other);
                }
                let out = a.finish(&key, state);
                sink.emit(&key, &out, EmitKind::Final);
                groups_out += 1;
            }
            self.profile.add_time(Phase::ReduceFn, t.elapsed());
            self.profile.merge(grouped.profile());
            grouped.cleanup()?;
        }
        trace.end(Phase::ReduceFn.label(), "phase");
        self.budget.release(self.reserved);

        let io_now = self.store.stats();
        Ok(OpStats {
            records_in: self.records_in,
            groups_out,
            early_emits: 0, // snapshots are counted separately
            io: IoStats {
                bytes_written: io_now.bytes_written - self.io_base.bytes_written,
                bytes_read: io_now.bytes_read - self.io_base.bytes_read,
                runs_created: io_now.runs_created - self.io_base.runs_created,
                runs_deleted: io_now.runs_deleted - self.io_base.runs_deleted,
            },
            profile: self.profile,
            peak_mem: self.peak_reserved,
            spills: self.spills,
            passes: 0,
        })
    }
}

/// Streaming k-way merge over sorted in-memory segments. Fully borrowed:
/// keys and values are served as slices into the segments' arenas.
struct VecMergeCursor<'a> {
    segs: &'a [SegmentBuf],
    heap: BinaryHeap<Reverse<(&'a [u8], usize, usize)>>, // (key, seg, idx)
}

impl<'a> VecMergeCursor<'a> {
    fn new(segs: &'a [SegmentBuf]) -> Self {
        let mut heap = BinaryHeap::new();
        for (s, seg) in segs.iter().enumerate() {
            if !seg.is_empty() {
                heap.push(Reverse((seg.key(0), s, 0)));
            }
        }
        VecMergeCursor { segs, heap }
    }

    fn next_pair(&mut self) -> Option<(&'a [u8], &'a [u8])> {
        let Reverse((key, s, i)) = self.heap.pop()?;
        if i + 1 < self.segs[s].len() {
            self.heap.push(Reverse((self.segs[s].key(i + 1), s, i + 1)));
        }
        Some((key, self.segs[s].value(i)))
    }
}

/// Merge all buffered sorted segments into one on-disk run, collapsing
/// key-streaks through the aggregate (Hadoop applies combine on reducer
/// buffer fill — and writes the data out regardless, §III-B.4). The
/// combined output is staged in one arena and written as a single batch.
fn spill_buffered(
    buffered: &mut Vec<SegmentBuf>,
    merger: &mut MultiPassMerger,
    store: &Arc<dyn SpillStore>,
    agg: &Arc<dyn Aggregator>,
    profile: &mut Profile,
    trace: &mut LocalTracer,
) -> Result<()> {
    if buffered.is_empty() {
        return Ok(());
    }
    trace.begin(Phase::Merge.label(), "phase");
    let t = Instant::now();
    let mut writer = store.begin_run()?;
    let mut cursor = VecMergeCursor::new(buffered);
    let mut out = SegmentBufBuilder::new();
    let mut current: Option<(Vec<u8>, Vec<u8>)> = None;
    while let Some((k, v)) = cursor.next_pair() {
        match &mut current {
            Some((ck, state)) if ck.as_slice() == k => agg.update(k, state, v),
            _ => {
                if let Some((ck, state)) = current.take() {
                    out.push(&ck, &state);
                }
                current = Some((k.to_vec(), agg.init(k, v)));
            }
        }
    }
    if let Some((ck, state)) = current.take() {
        out.push(&ck, &state);
    }
    writer.write_segment(&out.finish())?;
    let meta = writer.finish()?;
    profile.add_time(Phase::Merge, t.elapsed());
    trace.end(Phase::Merge.label(), "phase");
    trace.instant(
        "reduce_spill",
        "spill",
        &[
            ("bytes", meta.bytes as f64),
            ("records", meta.records as f64),
        ],
    );
    buffered.clear();
    merger.add_run(meta)
}

/// MapReduce Online snapshot: non-destructively re-read everything
/// received so far (on-disk runs + in-memory segments), aggregate, and
/// emit approximate answers. The re-read is the snapshot's I/O cost.
fn take_snapshot(
    buffered: &[SegmentBuf],
    merger: &MultiPassMerger,
    store: &Arc<dyn SpillStore>,
    agg: &Arc<dyn Aggregator>,
    sink: &mut dyn Sink,
    profile: &mut Profile,
) -> Result<()> {
    let t = Instant::now();
    let mut states: ByteMap<Vec<u8>> = ByteMap::default();
    for run in merger.runs() {
        let mut reader = store.open_run(run.id)?;
        while let Some(rec) = reader.next_record()? {
            // Run records are already aggregate states.
            match states.get_mut(rec.key) {
                Some(s) => agg.merge(rec.key, s, rec.value),
                None => {
                    states.insert(rec.key.to_vec(), rec.value.to_vec());
                }
            }
        }
    }
    for seg in buffered {
        for (k, v) in seg.iter() {
            match states.get_mut(k) {
                Some(s) => agg.update(k, s, v),
                None => {
                    states.insert(k.to_vec(), agg.init(k, v));
                }
            }
        }
    }
    for (k, state) in states {
        let out = agg.finish(&k, state);
        sink.emit(&k, &out, EmitKind::Early);
    }
    profile.add_time(Phase::Merge, t.elapsed());
    Ok(())
}

/// In-memory sort-merge reduce used by tests and by the capability matrix;
/// delegates to [`SortMergeGrouper`]. Exposed mainly so downstream crates
/// can run a standalone sort-merge reduce outside a full job.
pub fn standalone_sortmerge(
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    merge_factor: usize,
    agg: Arc<dyn Aggregator>,
) -> Result<SortMergeGrouper> {
    SortMergeGrouper::new(store, budget, merge_factor, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, ShuffleMode};
    use crate::shuffle::{shuffle_fabric, Segment};
    use onepass_core::fault::FaultPlan;
    use onepass_core::io::SharedMemStore;
    use onepass_groupby::{SumAgg, VecSink};

    fn sorted_seg(map_task: usize, pairs: &[(&str, u64)]) -> Segment {
        let mut records: Vec<(Vec<u8>, Vec<u8>)> = pairs
            .iter()
            .map(|(k, v)| (k.as_bytes().to_vec(), v.to_le_bytes().to_vec()))
            .collect();
        records.sort();
        Segment {
            map_task,
            attempt: 0,
            partition: 0,
            sorted: true,
            combined: false,
            records: SegmentBuf::from_pairs(records.iter().map(|(k, v)| (&k[..], &v[..]))),
        }
    }

    fn job_sortmerge(snapshots: Vec<f64>) -> JobSpec {
        JobSpec::builder("t")
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .backend(ReduceBackend::SortMerge {
                merge_factor: 3,
                snapshots,
            })
            .shuffle(ShuffleMode::Pull)
            .build()
            .unwrap()
    }

    fn dec(v: &[u8]) -> u64 {
        u64::from_le_bytes(v.try_into().unwrap())
    }

    #[test]
    fn sortmerge_reduce_in_memory() {
        let job = job_sortmerge(vec![]);
        let (tx, rxs) = shuffle_fabric(1, 64);
        tx.send_segment(sorted_seg(0, &[("a", 1), ("b", 2)]));
        tx.send_segment(sorted_seg(1, &[("a", 10), ("c", 3)]));
        tx.map_done(0, 0);
        tx.map_done(1, 0);
        let mut sink = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let res = run_reduce_task(
            &job,
            0,
            &rxs[0],
            2,
            store,
            MemoryBudget::unlimited(),
            &mut sink,
            &mut LocalTracer::disabled(),
        )
        .unwrap();
        assert_eq!(res.stats.groups_out, 3);
        assert_eq!(res.stats.io.bytes_written, 0);
        assert_eq!(res.attempts, 1);
        let a = sink
            .emitted
            .iter()
            .find(|(k, _, _)| k == b"a")
            .map(|(_, v, _)| dec(v))
            .unwrap();
        assert_eq!(a, 11);
    }

    #[test]
    fn sortmerge_reduce_spills_and_merges() {
        let job = job_sortmerge(vec![]);
        let (tx, rxs) = shuffle_fabric(1, 1024);
        let n_maps = 12;
        for m in 0..n_maps {
            let pairs: Vec<(String, u64)> = (0..20)
                .map(|i| (format!("key{:03}", (m * 7 + i) % 40), 1u64))
                .collect();
            let borrowed: Vec<(&str, u64)> = pairs.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            tx.send_segment(sorted_seg(m, &borrowed));
            tx.map_done(m, 0);
        }
        let mut sink = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let res = run_reduce_task(
            &job,
            0,
            &rxs[0],
            n_maps,
            store,
            MemoryBudget::new(700),
            &mut sink,
            &mut LocalTracer::disabled(),
        )
        .unwrap();
        assert_eq!(res.stats.groups_out, 40);
        assert!(res.stats.spills >= 2);
        assert!(res.stats.io.bytes_written > 0);
        let total: u64 = sink
            .emitted
            .iter()
            .filter(|(_, _, k)| *k == EmitKind::Final)
            .map(|(_, v, _)| dec(v))
            .sum();
        assert_eq!(total, (n_maps * 20) as u64);
    }

    #[test]
    fn snapshots_emit_early_answers_and_cost_io() {
        let job = job_sortmerge(vec![0.5]);
        let (tx, rxs) = shuffle_fabric(1, 1024);
        let n_maps = 4;
        for m in 0..n_maps {
            tx.send_segment(sorted_seg(m, &[("x", 1), ("y", 1)]));
            tx.map_done(m, 0);
        }
        let mut sink = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let res = run_reduce_task(
            &job,
            0,
            &rxs[0],
            n_maps,
            store,
            MemoryBudget::unlimited(),
            &mut sink,
            &mut LocalTracer::disabled(),
        )
        .unwrap();
        assert_eq!(res.snapshots_taken, 1);
        let early: Vec<_> = sink
            .emitted
            .iter()
            .filter(|(_, _, k)| *k == EmitKind::Early)
            .collect();
        assert_eq!(early.len(), 2, "snapshot covers both keys");
        // Snapshot values are partial (2 of 4 maps seen).
        let x_early = early.iter().find(|(k, _, _)| k == b"x").unwrap();
        assert_eq!(dec(&x_early.1), 2);
        // Finals are exact.
        let x_final = sink
            .emitted
            .iter()
            .find(|(k, _, kind)| k == b"x" && *kind == EmitKind::Final)
            .unwrap();
        assert_eq!(dec(&x_final.1), 4);
    }

    #[test]
    fn hash_backend_reduces_combined_segments() {
        let job = JobSpec::builder("t")
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .backend(ReduceBackend::IncHash { early: None })
            .build()
            .unwrap();
        let (tx, rxs) = shuffle_fabric(1, 64);
        // Combined segments: values are partial sums (states).
        let mut seg = sorted_seg(0, &[("a", 5), ("b", 7)]);
        seg.combined = true;
        tx.send_segment(seg);
        let mut seg = sorted_seg(1, &[("a", 3)]);
        seg.combined = true;
        tx.send_segment(seg);
        tx.map_done(0, 0);
        tx.map_done(1, 0);
        let mut sink = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let res = run_reduce_task(
            &job,
            0,
            &rxs[0],
            2,
            store,
            MemoryBudget::unlimited(),
            &mut sink,
            &mut LocalTracer::disabled(),
        )
        .unwrap();
        assert_eq!(res.stats.groups_out, 2);
        let a = sink
            .emitted
            .iter()
            .find(|(k, _, _)| k == b"a")
            .map(|(_, v, _)| dec(v))
            .unwrap();
        assert_eq!(a, 8, "partial states must merge, not re-count");
    }

    #[test]
    fn reducer_with_no_segments_finishes_cleanly() {
        let job = job_sortmerge(vec![]);
        let (tx, rxs) = shuffle_fabric(1, 8);
        tx.map_done(0, 0);
        let mut sink = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let res = run_reduce_task(
            &job,
            0,
            &rxs[0],
            1,
            store,
            MemoryBudget::unlimited(),
            &mut sink,
            &mut LocalTracer::disabled(),
        )
        .unwrap();
        assert_eq!(res.stats.groups_out, 0);
        assert!(sink.emitted.is_empty());
    }

    /// Build a per-attempt resources factory over fresh memory stores
    /// (each attempt gets its own store + budget, like the FT driver).
    fn fresh_resources() -> impl FnMut() -> Result<(Arc<dyn SpillStore>, MemoryBudget)> {
        move || {
            let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
            Ok((store, MemoryBudget::unlimited()))
        }
    }

    #[test]
    fn injected_fault_retries_and_output_matches_clean_run() {
        let job = job_sortmerge(vec![]);
        let feed = |tx: &crate::shuffle::ShuffleTx| {
            tx.send_segment(sorted_seg(0, &[("a", 1), ("b", 2)]));
            tx.map_done(0, 0);
            tx.send_segment(sorted_seg(1, &[("a", 10), ("c", 3)]));
            tx.map_done(1, 0);
        };

        // Clean run.
        let (tx, rxs) = shuffle_fabric(1, 64);
        feed(&tx);
        let mut clean = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        run_reduce_task(
            &job,
            0,
            &rxs[0],
            2,
            store,
            MemoryBudget::unlimited(),
            &mut clean,
            &mut LocalTracer::disabled(),
        )
        .unwrap();

        // Faulted run: attempt 0 dies after absorbing 1 record.
        let (tx, rxs) = shuffle_fabric(1, 64);
        feed(&tx);
        let mut sink = VecSink::default();
        let opts = ReduceRetryOpts {
            max_attempts: 3,
            injector: FaultPlan::new().fail_reduce(0, 0, 1).into_injector(),
            ..Default::default()
        };
        let res = run_reduce_task_ft(
            &job,
            0,
            &rxs[0],
            2,
            &mut fresh_resources(),
            &mut sink,
            &mut LocalTracer::disabled(),
            &opts,
        )
        .unwrap();
        assert_eq!(res.attempts, 2, "one retry consumed");
        assert_eq!(sink.emitted, clean.emitted, "recovered output identical");
    }

    #[test]
    fn exhausted_attempts_surface_the_error() {
        let job = job_sortmerge(vec![]);
        let (tx, rxs) = shuffle_fabric(1, 64);
        tx.send_segment(sorted_seg(0, &[("a", 1), ("b", 2)]));
        tx.map_done(0, 0);
        let mut sink = VecSink::default();
        // Both attempts are scheduled to fail.
        let opts = ReduceRetryOpts {
            max_attempts: 2,
            injector: FaultPlan::new()
                .fail_reduce(0, 0, 0)
                .fail_reduce(0, 1, 0)
                .into_injector(),
            ..Default::default()
        };
        let err = run_reduce_task_ft(
            &job,
            0,
            &rxs[0],
            1,
            &mut fresh_resources(),
            &mut sink,
            &mut LocalTracer::disabled(),
            &opts,
        )
        .unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert!(sink.emitted.is_empty(), "no partial finals leak");
    }

    #[test]
    fn attempt_dedup_commits_first_map_done_winner() {
        let job = job_sortmerge(vec![]);
        let (tx, rxs) = shuffle_fabric(1, 64);
        // Two attempts of map task 0 race; attempt 1's MapDone arrives
        // first so its segments win. Attempt 0's earlier/later segments
        // must all be dropped.
        let mut loser = sorted_seg(0, &[("a", 100)]);
        loser.attempt = 0;
        tx.send_segment(loser);
        let mut winner = sorted_seg(0, &[("a", 1)]);
        winner.attempt = 1;
        tx.send_segment(winner);
        tx.map_done(0, 1);
        // A straggling segment + MapDone from the losing attempt.
        let mut late = sorted_seg(0, &[("a", 100)]);
        late.attempt = 0;
        tx.send_segment(late);
        tx.map_done(0, 0);
        // Second logical map task, single attempt.
        tx.send_segment(sorted_seg(1, &[("a", 2)]));
        tx.map_done(1, 0);

        let mut sink = VecSink::default();
        let opts = ReduceRetryOpts {
            dedup_attempts: true,
            ..Default::default()
        };
        let res = run_reduce_task_ft(
            &job,
            0,
            &rxs[0],
            2,
            &mut fresh_resources(),
            &mut sink,
            &mut LocalTracer::disabled(),
            &opts,
        )
        .unwrap();
        assert_eq!(res.stats.records_in, 2, "losing attempt never absorbed");
        let a = sink
            .emitted
            .iter()
            .find(|(k, _, _)| k == b"a")
            .map(|(_, v, _)| dec(v))
            .unwrap();
        assert_eq!(a, 3, "winner (1) + task 1 (2), duplicates dropped");
    }

    #[test]
    fn abort_unblocks_reducer_with_error() {
        let job = job_sortmerge(vec![]);
        let (tx, rxs) = shuffle_fabric(1, 8);
        tx.send_segment(sorted_seg(0, &[("a", 1)]));
        tx.abort();
        let mut sink = VecSink::default();
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        let err = run_reduce_task(
            &job,
            0,
            &rxs[0],
            4, // would otherwise wait for 3 more map tasks
            store,
            MemoryBudget::unlimited(),
            &mut sink,
            &mut LocalTracer::disabled(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("aborted"));
    }

    #[test]
    fn retry_mutes_duplicate_snapshots() {
        // One snapshot due at 50% of maps; the fault fires after the
        // snapshot was taken, so the rebuilt attempt must not repeat it.
        let job = job_sortmerge(vec![0.5]);
        let (tx, rxs) = shuffle_fabric(1, 64);
        let n_maps = 4;
        for m in 0..n_maps {
            tx.send_segment(sorted_seg(m, &[("x", 1)]));
            tx.map_done(m, 0);
        }
        let mut sink = VecSink::default();
        let opts = ReduceRetryOpts {
            max_attempts: 3,
            // 4 segments × 1 record: fail once 3 records were absorbed —
            // after the 50% snapshot (2 maps committed).
            injector: FaultPlan::new().fail_reduce(0, 0, 3).into_injector(),
            ..Default::default()
        };
        let res = run_reduce_task_ft(
            &job,
            0,
            &rxs[0],
            n_maps,
            &mut fresh_resources(),
            &mut sink,
            &mut LocalTracer::disabled(),
            &opts,
        )
        .unwrap();
        assert_eq!(res.attempts, 2);
        let early = sink
            .emitted
            .iter()
            .filter(|(_, _, k)| *k == EmitKind::Early)
            .count();
        assert_eq!(early, 1, "snapshot emitted exactly once across attempts");
        let x_final = sink
            .emitted
            .iter()
            .find(|(k, _, kind)| k == b"x" && *kind == EmitKind::Final)
            .unwrap();
        assert_eq!(dec(&x_final.1), n_maps as u64);
    }
}
