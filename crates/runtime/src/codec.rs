//! The inter-stage pair codec: how a final `(key, value)` emission of one
//! plan stage becomes one input record for the next.
//!
//! Every edge in a [`Plan`](crate::plan::Plan) — materialized (barrier
//! mode), streamed (pipelined mode), or replayed out of the
//! [`DatasetCache`](crate::cache::DatasetCache) — carries records in this
//! framing: `[u32 klen][key][value]`, little-endian length. Pair stages
//! ([`PairMap`](crate::plan::PairMap)) never see the framing; the plan
//! layer decodes it (or skips the round-trip entirely for cached,
//! partition-aligned edges) before calling user code.

/// Encode a `(key, value)` pair as an edge record:
/// `[u32 klen][key][value]`.
pub fn encode_pair(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(4 + key.len() + value.len());
    rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
    rec.extend_from_slice(key);
    rec.extend_from_slice(value);
    rec
}

/// Decode an edge record back into `(key, value)`.
pub fn decode_pair(record: &[u8]) -> Option<(&[u8], &[u8])> {
    if record.len() < 4 {
        return None;
    }
    let klen = u32::from_le_bytes(record[0..4].try_into().ok()?) as usize;
    if record.len() < 4 + klen {
        return None;
    }
    Some((&record[4..4 + klen], &record[4 + klen..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_codec_roundtrip() {
        let rec = encode_pair(b"key", b"value with \x00 bytes");
        let (k, v) = decode_pair(&rec).unwrap();
        assert_eq!(k, b"key");
        assert_eq!(v, b"value with \x00 bytes");
        // Empty key and value are legal.
        let rec = encode_pair(b"", b"");
        assert_eq!(decode_pair(&rec).unwrap(), (&b""[..], &b""[..]));
        // Truncated records are rejected.
        assert!(decode_pair(b"").is_none());
        assert!(decode_pair(&[200, 0, 0, 0, 1]).is_none());
    }
}
