//! The engine driver: schedules map tasks over a worker pool, wires the
//! shuffle, runs one reduce task per partition, and assembles the job
//! report. Thread fan-out uses crossbeam scoped threads; all inter-task
//! communication is channel-based (no shared mutable state beyond the
//! spill stores' atomic counters).

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::unbounded;

use onepass_core::error::{Error, Result};
use onepass_core::io::{FileSpillStore, SharedMemStore, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_core::trace::{Tracer, Track};
use onepass_groupby::{EmitKind, Sink};

use crate::job::JobSpec;
use crate::map_task::{run_map_task, MapTaskStats, Split};
use crate::reduce_task::{run_reduce_task, ReduceResult};
use crate::report::{JobOutput, JobReport, TaskKind, TaskSpan};
use crate::shuffle::shuffle_fabric;

/// Where spill runs live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillBackend {
    /// In-memory runs: exact I/O accounting without filesystem traffic.
    /// The default — deterministic and fast for tests and CPU studies.
    Memory,
    /// Real temp files with buffered I/O — for experiments that should
    /// touch disk.
    TempFiles,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Concurrent map workers (task slots). Default 4.
    pub map_workers: usize,
    /// Reducer channel depth (shuffle backpressure). Default 64.
    pub channel_depth: usize,
    /// Spill-run backend. Default memory.
    pub spill: SpillBackend,
    /// Persist map output before task completion (Hadoop fault-tolerance
    /// write, §II-A). Default true.
    pub persist_map_output: bool,
    /// Trace collection point. Default disabled: every probe site in the
    /// engine then costs a single branch. Hand in [`Tracer::enabled`] and
    /// drain it after [`Engine::run`] to get the event stream.
    pub tracer: Tracer,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            map_workers: 4,
            channel_depth: 64,
            spill: SpillBackend::Memory,
            persist_map_output: true,
            tracer: Tracer::disabled(),
        }
    }
}

/// The MapReduce engine.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Engine with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine { config }
    }

    fn make_store(&self) -> Result<Arc<dyn SpillStore>> {
        Ok(match self.config.spill {
            SpillBackend::Memory => Arc::new(SharedMemStore::new()),
            SpillBackend::TempFiles => Arc::new(FileSpillStore::temp()?),
        })
    }

    /// Run `job` over `splits` (one map task per split) and return the
    /// report.
    pub fn run(&self, job: &JobSpec, splits: Vec<Split>) -> Result<JobReport> {
        job.validate()?;
        let start = Instant::now();
        let total_map_tasks = splits.len();
        let (shuffle_tx, shuffle_rxs) = shuffle_fabric(job.reducers, self.config.channel_depth);

        // Map-side persistence store (shared; only totals are read).
        let map_store = if self.config.persist_map_output {
            Some(self.make_store()?)
        } else {
            None
        };
        // One spill store per reducer so per-task I/O deltas are exact.
        let mut reduce_stores = Vec::with_capacity(job.reducers);
        for _ in 0..job.reducers {
            reduce_stores.push(self.make_store()?);
        }

        // Work queue of map tasks.
        let (task_tx, task_rx) = unbounded::<(usize, Split)>();
        for (id, split) in splits.into_iter().enumerate() {
            task_tx
                .send((id, split))
                .expect("queue cannot be disconnected yet");
        }
        drop(task_tx);

        // Result channels.
        let (map_res_tx, map_res_rx) = unbounded::<Result<(MapTaskStats, TaskSpan)>>();
        let (red_res_tx, red_res_rx) = unbounded::<Result<(ReduceResult, TaskSpan, TimedSink)>>();

        let tracer = &self.config.tracer;
        let mut driver_trace = tracer.local(Track::new("driver", 0));
        driver_trace.begin("job", "job");

        crossbeam::thread::scope(|scope| {
            // Map workers.
            for _ in 0..self.config.map_workers.max(1) {
                let task_rx = task_rx.clone();
                let shuffle_tx = shuffle_tx.clone();
                let map_res_tx = map_res_tx.clone();
                let map_store = map_store.clone();
                scope.spawn(move |_| {
                    while let Ok((id, split)) = task_rx.recv() {
                        let mut trace = tracer.local(Track::new("map", id as u64));
                        trace.begin("map_task", "task");
                        let t0 = start.elapsed();
                        let res = run_map_task(
                            job,
                            id,
                            &split,
                            &shuffle_tx,
                            map_store.as_ref(),
                            &mut trace,
                        );
                        let span = TaskSpan {
                            kind: TaskKind::Map,
                            id,
                            start: t0,
                            end: start.elapsed(),
                        };
                        trace.end("map_task", "task");
                        drop(trace);
                        let _ = map_res_tx.send(res.map(|s| (s, span)));
                    }
                });
            }
            drop(map_res_tx);

            // Reduce workers, one per partition.
            for (partition, rx) in shuffle_rxs.into_iter().enumerate() {
                let red_res_tx = red_res_tx.clone();
                let store = Arc::clone(&reduce_stores[partition]);
                scope.spawn(move |_| {
                    let mut trace = tracer.local(Track::new("reduce", partition as u64));
                    trace.begin("reduce_task", "task");
                    let t0 = start.elapsed();
                    let mut sink = TimedSink::new(start, job.collect_output);
                    let budget = MemoryBudget::new(job.reduce_budget_bytes);
                    let res = run_reduce_task(
                        job,
                        partition,
                        &rx,
                        total_map_tasks,
                        store,
                        budget,
                        &mut sink,
                        &mut trace,
                    );
                    let span = TaskSpan {
                        kind: TaskKind::Reduce,
                        id: partition,
                        start: t0,
                        end: start.elapsed(),
                    };
                    trace.end("reduce_task", "task");
                    drop(trace);
                    let _ = red_res_tx.send(res.map(|r| (r, span, sink)));
                });
            }
            drop(red_res_tx);
        })
        .map_err(|_| Error::InvalidState("engine worker panicked".into()))?;

        driver_trace.end("job", "job");
        drop(driver_trace);

        // Assemble the report.
        let mut report = JobReport {
            name: job.name.clone(),
            backend: job.backend.label().to_string(),
            ..Default::default()
        };
        for res in map_res_rx.iter() {
            let (stats, span) = res?;
            report.absorb_map(&stats);
            report.task_spans.push(span);
        }
        if report.map_tasks != total_map_tasks {
            return Err(Error::InvalidState(format!(
                "expected {total_map_tasks} map results, got {}",
                report.map_tasks
            )));
        }
        let mut early_total = 0u64;
        for res in red_res_rx.iter() {
            let (result, span, sink) = res?;
            report.absorb_reduce(&result);
            report.task_spans.push(span);
            early_total += sink.early_seen;
            if let Some(t) = sink.first_early {
                report.first_early_at = Some(match report.first_early_at {
                    Some(cur) => cur.min(t),
                    None => t,
                });
            }
            if let Some(t) = sink.first_final {
                report.first_final_at = Some(match report.first_final_at {
                    Some(cur) => cur.min(t),
                    None => t,
                });
            }
            report.outputs.extend(sink.outputs);
        }
        // Early emissions = what the sinks actually saw: covers backend
        // early output *and* HOP snapshots uniformly, independent of
        // whether outputs were collected.
        report.early_emits = early_total;
        report.shuffled_bytes = shuffle_tx.shuffled_bytes();
        if let Some(ms) = &map_store {
            report.map_write_io = ms.stats();
        }
        report.wall = start.elapsed();
        Ok(report)
    }
}

/// Sink that timestamps emissions and optionally stores them.
#[derive(Debug)]
pub(crate) struct TimedSink {
    start: Instant,
    collect: bool,
    pub(crate) outputs: Vec<JobOutput>,
    pub(crate) early_seen: u64,
    pub(crate) final_seen: u64,
    pub(crate) first_early: Option<std::time::Duration>,
    pub(crate) first_final: Option<std::time::Duration>,
}

impl TimedSink {
    fn new(start: Instant, collect: bool) -> Self {
        TimedSink {
            start,
            collect,
            outputs: Vec::new(),
            early_seen: 0,
            final_seen: 0,
            first_early: None,
            first_final: None,
        }
    }
}

impl Sink for TimedSink {
    fn emit(&mut self, key: &[u8], value: &[u8], kind: EmitKind) {
        let at = self.start.elapsed();
        match kind {
            EmitKind::Early => {
                self.early_seen += 1;
                self.first_early.get_or_insert(at);
            }
            EmitKind::Final => {
                self.final_seen += 1;
                self.first_final.get_or_insert(at);
            }
        }
        if self.collect {
            self.outputs.push(JobOutput {
                key: key.to_vec(),
                value: value.to_vec(),
                kind,
                at,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{MapEmitter, MapSideMode, ReduceBackend, ShuffleMode};
    use onepass_groupby::SumAgg;
    use std::collections::BTreeMap;

    fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
        for w in record.split(|&b| b == b' ') {
            if !w.is_empty() {
                out.emit(w, &1u64.to_le_bytes());
            }
        }
    }

    fn splits(lines: &[&str], per_split: usize) -> Vec<Split> {
        lines
            .chunks(per_split)
            .map(|c| Split::new(c.iter().map(|l| l.as_bytes().to_vec()).collect()))
            .collect()
    }

    fn final_counts(report: &JobReport) -> BTreeMap<String, u64> {
        report
            .outputs
            .iter()
            .filter(|o| o.kind == EmitKind::Final)
            .map(|o| {
                (
                    String::from_utf8(o.key.clone()).unwrap(),
                    u64::from_le_bytes(o.value.as_slice().try_into().unwrap()),
                )
            })
            .collect()
    }

    fn expected() -> BTreeMap<String, u64> {
        [("a", 4u64), ("b", 3), ("c", 2), ("d", 1)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }

    fn input() -> Vec<Split> {
        splits(&["a b a", "c b", "a d c", "b a"], 2)
    }

    #[test]
    fn hadoop_pipeline_end_to_end() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(3)
            .preset_hadoop()
            .build()
            .unwrap();
        let report = Engine::new().run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        assert_eq!(report.map_tasks, 2);
        assert_eq!(report.reduce_tasks, 3);
        assert_eq!(report.input_records, 4);
        assert_eq!(report.map_output_records, 10);
        assert_eq!(report.early_emits, 0, "stock Hadoop has no early output");
        assert!(report.map_write_io.bytes_written > 0);
    }

    #[test]
    fn onepass_pipeline_end_to_end() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .preset_onepass()
            .build()
            .unwrap();
        let report = Engine::new().run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        // Hash path must not register any sort CPU.
        assert_eq!(
            report
                .map_profile
                .time(onepass_core::metrics::Phase::MapSort),
            std::time::Duration::ZERO
        );
    }

    #[test]
    fn hop_pipeline_produces_snapshots() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .preset_hop()
            .build()
            .unwrap();
        // Enough map tasks that the 25/50/75% snapshot points exist.
        let many: Vec<&str> = vec!["a b"; 8];
        let report = Engine::new().run(&job, splits(&many, 1)).unwrap();
        assert_eq!(final_counts(&report)["a"], 8);
        assert!(report.snapshots >= 1, "HOP must take snapshots");
        assert!(report.early_emits > 0);
        assert!(report.first_early_at.unwrap() <= report.first_final_at.unwrap());
    }

    #[test]
    fn all_backends_agree() {
        let backends = vec![
            ReduceBackend::SortMerge {
                merge_factor: 4,
                snapshots: vec![],
            },
            ReduceBackend::HybridHash { fanout: 4 },
            ReduceBackend::IncHash { early: None },
            ReduceBackend::FreqHash(Default::default()),
        ];
        for backend in backends {
            let label = backend.label();
            let job = JobSpec::builder("wc")
                .map_fn(Arc::new(word_map))
                .aggregate(Arc::new(SumAgg))
                .reducers(2)
                .map_side(MapSideMode::HashPartitionOnly)
                .combine(false)
                .shuffle(ShuffleMode::Push { granularity: 3 })
                .backend(backend)
                .build()
                .unwrap();
            let report = Engine::new().run(&job, input()).unwrap();
            assert_eq!(final_counts(&report), expected(), "{label} diverged");
        }
    }

    #[test]
    fn empty_input_completes() {
        let job = JobSpec::builder("empty").build().unwrap();
        let report = Engine::new().run(&job, vec![]).unwrap();
        assert_eq!(report.map_tasks, 0);
        assert_eq!(report.groups_out, 0);
    }

    #[test]
    fn spans_cover_all_tasks() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .build()
            .unwrap();
        let report = Engine::new().run(&job, input()).unwrap();
        let maps = report
            .task_spans
            .iter()
            .filter(|s| s.kind == TaskKind::Map)
            .count();
        let reds = report
            .task_spans
            .iter()
            .filter(|s| s.kind == TaskKind::Reduce)
            .count();
        assert_eq!(maps, 2);
        assert_eq!(reds, 2);
        for s in &report.task_spans {
            assert!(s.end >= s.start);
        }
    }

    #[test]
    fn file_spill_backend_works() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .reduce_budget_bytes(2048)
            .build()
            .unwrap();
        let engine = Engine::with_config(EngineConfig {
            spill: SpillBackend::TempFiles,
            ..Default::default()
        });
        let many: Vec<String> = (0..200)
            .map(|i| format!("w{} w{} a", i % 37, i % 11))
            .collect();
        let refs: Vec<&str> = many.iter().map(|s| s.as_str()).collect();
        let report = engine.run(&job, splits(&refs, 20)).unwrap();
        let counts = final_counts(&report);
        assert_eq!(counts["a"], 200);
        assert!(report.reduce_spill_io.bytes_written > 0);
    }
}
