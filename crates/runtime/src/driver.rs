//! The engine driver: schedules map tasks over a worker pool, wires the
//! shuffle, runs one reduce task per partition, and assembles the job
//! report. Thread fan-out uses crossbeam scoped threads; all inter-task
//! communication is channel-based (no shared mutable state beyond the
//! spill stores' atomic counters).
//!
//! # Fault tolerance
//!
//! The driver gives every map and reduce execution an **attempt id** and
//! implements the recovery loop the paper's Hadoop baseline pays its
//! map-output persistence tax for (§II-A):
//!
//! * **Retries.** A failed attempt (an `Err` from a spill store, a panic
//!   in a user map function, or an injected [`FaultPlan`] fault) is
//!   re-executed with a fresh attempt id, up to
//!   [`RetryPolicy::max_attempts`].
//! * **Speculative execution.** With [`SpeculationConfig::enabled`], the
//!   coordinator watches running map attempts against the median duration
//!   of completed ones and launches one backup clone per straggling task;
//!   the first attempt to finish wins and the loser is cancelled.
//! * **Attempt-aware shuffle.** Reducers commit exactly one attempt per
//!   map task (the first whose `MapDone` arrives), so retried or raced
//!   attempts never double-count records (see [`crate::shuffle`]).
//!
//! When retries are exhausted the driver cancels all outstanding
//! attempts, broadcasts [`ShuffleMsg::Abort`](crate::shuffle::ShuffleMsg)
//! so reducers unblock, and returns the original error — it never hangs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError};

use onepass_core::error::{Error, Result};
use onepass_core::fault::{FaultInjector, FaultPlan};
use onepass_core::governor::{MemoryGovernor, MemoryPolicy};
use onepass_core::io::{FileSpillStore, SharedMemStore, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_core::trace::{Tracer, Track};
use onepass_groupby::{EmitKind, Sink};

use crate::job::JobSpec;
use crate::map_task::{run_map_task, MapAttemptCtx, MapTaskStats, Split};
use crate::reduce_task::{panic_message, run_reduce_task_ft, ReduceResult, ReduceRetryOpts};
use crate::report::{JobOutput, JobReport, TaskKind, TaskSpan};
use crate::shuffle::shuffle_fabric;

/// Where spill runs live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillBackend {
    /// In-memory runs: exact I/O accounting without filesystem traffic.
    /// The default — deterministic and fast for tests and CPU studies.
    Memory,
    /// Real temp files with buffered I/O — for experiments that should
    /// touch disk.
    TempFiles,
}

/// Whether map output is synchronously persisted before task completion —
/// the Hadoop fault-tolerance write of §II-A. Replaces the old
/// `persist_map_output: bool` field with a self-documenting two-variant
/// type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapOutputPersistence {
    /// Write map output to the map-side store before completing the task
    /// (Hadoop behaviour). The default.
    #[default]
    Persist,
    /// Skip the map-output write — the paper's one-pass configuration;
    /// failed map tasks are recovered by re-running them from the input
    /// split instead.
    Volatile,
}

impl MapOutputPersistence {
    /// True when map output is persisted.
    pub fn is_persist(self) -> bool {
        matches!(self, MapOutputPersistence::Persist)
    }
}

/// Per-task retry budget for failed attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed per task, including the first. Must be at
    /// least 1; 1 means a single failure fails the job.
    pub max_attempts: usize,
    /// Delay before launching a retry attempt.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// Policy allowing `max_attempts` total attempts with no backoff.
    pub fn attempts(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: Duration::ZERO,
        }
    }
}

/// Straggler mitigation: speculative backup execution of slow map tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// Master switch. Default off.
    pub enabled: bool,
    /// An attempt is a straggler once it has run longer than
    /// `slow_factor` × the median duration of completed map tasks.
    pub slow_factor: f64,
    /// Completed map tasks required before the median is trusted.
    pub min_completed: usize,
    /// Coordinator polling cadence while watching for stragglers.
    pub poll: Duration,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            enabled: false,
            slow_factor: 2.0,
            min_completed: 2,
            poll: Duration::from_millis(5),
        }
    }
}

impl SpeculationConfig {
    /// Speculation enabled with default thresholds.
    pub fn on() -> Self {
        SpeculationConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Concurrent map workers (task slots). Default 4.
    pub map_workers: usize,
    /// Reducer channel depth (shuffle backpressure). Default 64.
    pub channel_depth: usize,
    /// Spill-run backend. Default memory.
    pub spill: SpillBackend,
    /// Persist map output before task completion (Hadoop fault-tolerance
    /// write, §II-A). Default [`MapOutputPersistence::Persist`].
    pub persist_map_output: MapOutputPersistence,
    /// Trace collection point. Default disabled: every probe site in the
    /// engine then costs a single branch. Hand in [`Tracer::enabled`] and
    /// drain it after [`Engine::run`] to get the event stream.
    pub tracer: Tracer,
    /// Retry budget for failed task attempts. Default: no retries.
    pub retry: RetryPolicy,
    /// Speculative execution of straggling map tasks. Default off.
    pub speculation: SpeculationConfig,
    /// Planned fault schedule for recovery testing. Default inert.
    pub faults: FaultInjector,
    /// Reduce-side memory governance. [`MemoryPolicy::Static`] (default)
    /// gives every reduce task a fixed private budget of
    /// `job.reduce_budget_bytes`. [`MemoryPolicy::Adaptive`] pools
    /// `reduce_budget_bytes × reducers` under a [`MemoryGovernor`] that
    /// rebalances lease limits between concurrent reducers, picks spill
    /// victims via the configured policy under global pressure, and gates
    /// map-side shuffle pushes above the high-water fraction.
    pub memory_policy: MemoryPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            map_workers: 4,
            channel_depth: 64,
            spill: SpillBackend::Memory,
            persist_map_output: MapOutputPersistence::Persist,
            tracer: Tracer::disabled(),
            retry: RetryPolicy::default(),
            speculation: SpeculationConfig::default(),
            faults: FaultInjector::none(),
            memory_policy: MemoryPolicy::Static,
        }
    }
}

impl EngineConfig {
    /// Fluent builder over the default configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }
}

/// Builder for [`EngineConfig`].
#[derive(Debug, Default)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Concurrent map workers (task slots).
    pub fn map_workers(mut self, n: usize) -> Self {
        self.cfg.map_workers = n;
        self
    }

    /// Reducer channel depth (shuffle backpressure).
    pub fn channel_depth(mut self, depth: usize) -> Self {
        self.cfg.channel_depth = depth;
        self
    }

    /// Spill-run backend.
    pub fn spill(mut self, spill: SpillBackend) -> Self {
        self.cfg.spill = spill;
        self
    }

    /// Map-output persistence mode.
    pub fn map_output(mut self, mode: MapOutputPersistence) -> Self {
        self.cfg.persist_map_output = mode;
        self
    }

    /// Trace collection point.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.cfg.tracer = tracer;
        self
    }

    /// Retry budget for failed attempts.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Speculative-execution policy.
    pub fn speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.cfg.speculation = speculation;
        self
    }

    /// Install a planned fault schedule.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = plan.into_injector();
        self
    }

    /// Reduce-side memory governance policy.
    pub fn memory_policy(mut self, policy: MemoryPolicy) -> Self {
        self.cfg.memory_policy = policy;
        self
    }

    /// Finalize the configuration.
    pub fn build(self) -> EngineConfig {
        self.cfg
    }
}

/// One unit of map work handed to a worker.
struct MapAssignment {
    task: usize,
    attempt: usize,
    speculative: bool,
    split: Arc<Split>,
    cancel: Arc<AtomicBool>,
    /// Retry backoff, slept by the worker so the coordinator never blocks.
    delay: Duration,
}

/// Worker → coordinator notifications.
enum MapEvent {
    Started {
        task: usize,
        attempt: usize,
        at: Duration,
    },
    Finished {
        task: usize,
        attempt: usize,
        speculative: bool,
        span: TaskSpan,
        result: Result<MapTaskStats>,
    },
}

/// A map attempt the coordinator believes is queued or running.
struct RunningAttempt {
    attempt: usize,
    started: Option<Duration>,
    cancel: Arc<AtomicBool>,
    speculative: bool,
}

/// The MapReduce engine.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Engine with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine { config }
    }

    fn make_store(&self) -> Result<Arc<dyn SpillStore>> {
        Ok(match self.config.spill {
            SpillBackend::Memory => Arc::new(SharedMemStore::new()),
            SpillBackend::TempFiles => Arc::new(FileSpillStore::temp()?),
        })
    }

    /// Run `job` over `splits` (one map task per split) and return the
    /// report.
    pub fn run(&self, job: &JobSpec, splits: Vec<Split>) -> Result<JobReport> {
        job.validate()?;
        let retry = self.config.retry;
        if retry.max_attempts == 0 {
            return Err(Error::Config("retry.max_attempts must be >= 1".into()));
        }
        let spec = self.config.speculation;
        let injector = self.config.faults.clone();
        // Attempt-aware shuffle dedup is only needed when a map task can
        // run more than once; otherwise reducers keep the eager
        // commit-on-arrival fast path.
        let ft_active = retry.max_attempts > 1 || spec.enabled || injector.is_active();

        let start = Instant::now();
        let splits: Vec<Arc<Split>> = splits.into_iter().map(Arc::new).collect();
        let total_map_tasks = splits.len();
        let (shuffle_tx, shuffle_rxs) = shuffle_fabric(job.reducers, self.config.channel_depth);

        // Adaptive governance: pool the per-reducer budgets job-wide and
        // gate map pushes on pool pressure. Static keeps the seed
        // behaviour: a fixed private budget per reduce attempt.
        let governor = match &self.config.memory_policy {
            MemoryPolicy::Static => None,
            MemoryPolicy::Adaptive { policy, high_water } => Some(MemoryGovernor::new(
                job.reduce_budget_bytes.saturating_mul(job.reducers.max(1)),
                Arc::clone(policy),
                *high_water,
            )),
        };
        let shuffle_tx = match &governor {
            Some(g) => shuffle_tx.with_pressure(g.clone(), self.config.channel_depth),
            None => shuffle_tx,
        };

        // Map-side persistence store (shared; only totals are read).
        let map_store = if self.config.persist_map_output.is_persist() {
            Some(self.make_store()?)
        } else {
            None
        };
        let spill = self.config.spill;

        // Work queue + event stream between coordinator and map workers.
        let (task_tx, task_rx) = unbounded::<MapAssignment>();
        let (evt_tx, evt_rx) = unbounded::<MapEvent>();
        let (red_res_tx, red_res_rx) = unbounded::<Result<(ReduceResult, TaskSpan, TimedSink)>>();

        let tracer = &self.config.tracer;
        let mut driver_trace = tracer.local(Track::new("driver", 0));
        driver_trace.begin("job", "job");

        // Coordinator results, filled inside the scope.
        let mut map_results: Vec<(MapTaskStats, TaskSpan)> = Vec::with_capacity(total_map_tasks);
        let mut extra_spans: Vec<TaskSpan> = Vec::new();
        let mut map_attempts = 0usize;
        let mut failed_attempts = 0usize;
        let mut speculative_launched = 0usize;
        let mut speculative_wins = 0usize;
        let mut fatal: Option<Error> = None;

        crossbeam::thread::scope(|scope| {
            // Map workers.
            for _ in 0..self.config.map_workers.max(1) {
                let task_rx = task_rx.clone();
                let shuffle_tx = shuffle_tx.clone();
                let evt_tx = evt_tx.clone();
                let map_store = map_store.clone();
                let injector = injector.clone();
                scope.spawn(move |_| {
                    while let Ok(asg) = task_rx.recv() {
                        if !asg.delay.is_zero() {
                            std::thread::sleep(asg.delay);
                        }
                        let MapAssignment {
                            task,
                            attempt,
                            speculative,
                            split,
                            cancel,
                            ..
                        } = asg;
                        let t0 = start.elapsed();
                        let _ = evt_tx.send(MapEvent::Started {
                            task,
                            attempt,
                            at: t0,
                        });
                        let mut trace = tracer.local(Track::new("map", task as u64));
                        trace.begin("map_task", "task");
                        let ctx = MapAttemptCtx {
                            attempt,
                            injector: injector.clone(),
                            cancel: Some(cancel),
                        };
                        // A panicking map function is a task failure, not
                        // an engine failure: convert it to Err so the
                        // retry budget applies.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_map_task(
                                job,
                                task,
                                &split,
                                &shuffle_tx,
                                map_store.as_ref(),
                                &mut trace,
                                &ctx,
                            )
                        }))
                        .unwrap_or_else(|p| {
                            Err(Error::InvalidState(format!(
                                "map task panicked: {}",
                                panic_message(p.as_ref())
                            )))
                        });
                        trace.end("map_task", "task");
                        drop(trace);
                        let span = TaskSpan {
                            kind: TaskKind::Map,
                            id: task,
                            attempt,
                            start: t0,
                            end: start.elapsed(),
                        };
                        let _ = evt_tx.send(MapEvent::Finished {
                            task,
                            attempt,
                            speculative,
                            span,
                            result,
                        });
                    }
                });
            }
            drop(evt_tx);

            // Reduce workers, one per partition.
            for (partition, rx) in shuffle_rxs.into_iter().enumerate() {
                let red_res_tx = red_res_tx.clone();
                let injector = injector.clone();
                let governor = governor.clone();
                scope.spawn(move |_| {
                    let mut trace = tracer.local(Track::new("reduce", partition as u64));
                    trace.begin("reduce_task", "task");
                    let t0 = start.elapsed();
                    let mut sink = TimedSink::new(start, job.collect_output.is_collect());
                    // Each reduce attempt gets a fresh store + budget, so
                    // state a failed attempt abandoned can never starve or
                    // corrupt its successor.
                    let mut resources = || -> Result<(Arc<dyn SpillStore>, MemoryBudget)> {
                        let store: Arc<dyn SpillStore> = match spill {
                            SpillBackend::Memory => Arc::new(SharedMemStore::new()),
                            SpillBackend::TempFiles => Arc::new(FileSpillStore::temp()?),
                        };
                        // Under the governor, a retry's fresh lease starts
                        // back at the nominal share; whatever the failed
                        // attempt was holding drained back to the pool
                        // when its budget dropped.
                        let budget = match &governor {
                            Some(g) => g.lease(job.reduce_budget_bytes),
                            None => MemoryBudget::new(job.reduce_budget_bytes),
                        };
                        Ok((store, budget))
                    };
                    let opts = ReduceRetryOpts {
                        max_attempts: retry.max_attempts,
                        backoff: retry.backoff,
                        dedup_attempts: ft_active,
                        injector,
                    };
                    let res = run_reduce_task_ft(
                        job,
                        partition,
                        &rx,
                        total_map_tasks,
                        &mut resources,
                        &mut sink,
                        &mut trace,
                        &opts,
                    );
                    let attempt = res
                        .as_ref()
                        .map_or(retry.max_attempts.saturating_sub(1), |r| r.attempts - 1);
                    let span = TaskSpan {
                        kind: TaskKind::Reduce,
                        id: partition,
                        attempt,
                        start: t0,
                        end: start.elapsed(),
                    };
                    trace.end("reduce_task", "task");
                    drop(trace);
                    let _ = red_res_tx.send(res.map(|r| (r, span, sink)));
                });
            }
            drop(red_res_tx);

            // ---- Map coordinator (this thread). ----
            let mut running: Vec<Vec<RunningAttempt>> =
                (0..total_map_tasks).map(|_| Vec::new()).collect();
            let mut completed: Vec<bool> = vec![false; total_map_tasks];
            let mut completed_count = 0usize;
            let mut durations: Vec<Duration> = Vec::new();
            let mut next_attempt: Vec<usize> = vec![1; total_map_tasks];
            let mut spec_cloned: Vec<bool> = vec![false; total_map_tasks];
            let mut outstanding = 0usize;

            for (task, split) in splits.iter().enumerate() {
                let cancel = Arc::new(AtomicBool::new(false));
                running[task].push(RunningAttempt {
                    attempt: 0,
                    started: None,
                    cancel: Arc::clone(&cancel),
                    speculative: false,
                });
                let _ = task_tx.send(MapAssignment {
                    task,
                    attempt: 0,
                    speculative: false,
                    split: Arc::clone(split),
                    cancel,
                    delay: Duration::ZERO,
                });
                outstanding += 1;
            }

            while outstanding > 0 {
                let evt = if spec.enabled {
                    match evt_rx.recv_timeout(spec.poll) {
                        Ok(e) => Some(e),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                } else {
                    match evt_rx.recv() {
                        Ok(e) => Some(e),
                        Err(_) => break,
                    }
                };

                match evt {
                    None => {} // poll tick: fall through to straggler scan
                    Some(MapEvent::Started { task, attempt, at }) => {
                        if let Some(r) = running[task].iter_mut().find(|r| r.attempt == attempt) {
                            r.started = Some(at);
                        }
                    }
                    Some(MapEvent::Finished {
                        task,
                        attempt,
                        speculative,
                        span,
                        result,
                    }) => {
                        outstanding -= 1;
                        map_attempts += 1;
                        running[task].retain(|r| r.attempt != attempt);
                        match result {
                            Ok(stats) => {
                                if completed[task] {
                                    // A raced twin also finished; reducers
                                    // committed only one of them.
                                    extra_spans.push(span);
                                } else {
                                    completed[task] = true;
                                    completed_count += 1;
                                    durations.push(span.end.saturating_sub(span.start));
                                    if speculative {
                                        speculative_wins += 1;
                                    }
                                    // First finisher wins: cancel twins.
                                    for r in &running[task] {
                                        r.cancel.store(true, Ordering::Relaxed);
                                    }
                                    map_results.push((stats, span));
                                }
                            }
                            Err(Error::Cancelled) => {
                                // Benign: the driver told it to stop.
                                extra_spans.push(span);
                            }
                            Err(e) => {
                                failed_attempts += 1;
                                extra_spans.push(span);
                                driver_trace.instant(
                                    "task_failed",
                                    "fault",
                                    &[("task", task as f64), ("attempt", attempt as f64)],
                                );
                                if completed[task] || fatal.is_some() {
                                    // Another attempt already delivered the
                                    // task (or the job is going down);
                                    // nothing to recover.
                                } else if next_attempt[task] < retry.max_attempts {
                                    let a = next_attempt[task];
                                    next_attempt[task] += 1;
                                    driver_trace.instant(
                                        "retry",
                                        "fault",
                                        &[("task", task as f64), ("attempt", a as f64)],
                                    );
                                    let cancel = Arc::new(AtomicBool::new(false));
                                    running[task].push(RunningAttempt {
                                        attempt: a,
                                        started: None,
                                        cancel: Arc::clone(&cancel),
                                        speculative: false,
                                    });
                                    let _ = task_tx.send(MapAssignment {
                                        task,
                                        attempt: a,
                                        speculative: false,
                                        split: Arc::clone(&splits[task]),
                                        cancel,
                                        delay: retry.backoff,
                                    });
                                    outstanding += 1;
                                } else {
                                    // Budget exhausted: fail the job, but
                                    // keep draining outstanding attempts
                                    // so no thread is left blocked.
                                    fatal = Some(e);
                                    for rs in &running {
                                        for r in rs {
                                            r.cancel.store(true, Ordering::Relaxed);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }

                // Straggler scan: clone slow first attempts once a median
                // over completed tasks exists.
                if spec.enabled
                    && fatal.is_none()
                    && completed_count >= spec.min_completed.max(1)
                    && completed_count < total_map_tasks
                {
                    let mut sorted = durations.clone();
                    sorted.sort_unstable();
                    let median = sorted[sorted.len() / 2];
                    // Floor the threshold so micro-benchmark medians don't
                    // flag everything as slow.
                    let threshold = median
                        .mul_f64(spec.slow_factor)
                        .max(Duration::from_millis(1));
                    let now = start.elapsed();
                    for task in 0..total_map_tasks {
                        if completed[task] || spec_cloned[task] {
                            continue;
                        }
                        let Some(orig) = running[task].iter().find(|r| !r.speculative) else {
                            continue;
                        };
                        let Some(started_at) = orig.started else {
                            continue; // still queued, not slow
                        };
                        if now.saturating_sub(started_at) <= threshold {
                            continue;
                        }
                        spec_cloned[task] = true;
                        speculative_launched += 1;
                        let a = next_attempt[task];
                        next_attempt[task] += 1;
                        driver_trace.instant(
                            "speculate",
                            "fault",
                            &[("task", task as f64), ("attempt", a as f64)],
                        );
                        let cancel = Arc::new(AtomicBool::new(false));
                        running[task].push(RunningAttempt {
                            attempt: a,
                            started: None,
                            cancel: Arc::clone(&cancel),
                            speculative: true,
                        });
                        let _ = task_tx.send(MapAssignment {
                            task,
                            attempt: a,
                            speculative: true,
                            split: Arc::clone(&splits[task]),
                            cancel,
                            delay: Duration::ZERO,
                        });
                        outstanding += 1;
                    }
                }
            }

            // All attempts drained. Shut the workers down; on failure,
            // unblock reducers still waiting for MapDones that will never
            // arrive.
            drop(task_tx);
            if fatal.is_some() {
                shuffle_tx.abort();
            }
        })
        .map_err(|_| Error::InvalidState("engine worker panicked".into()))?;

        driver_trace.end("job", "job");
        drop(driver_trace);

        if let Some(e) = fatal {
            return Err(e);
        }

        // Assemble the report.
        let mut report = JobReport {
            name: job.name.clone(),
            backend: job.backend.label().to_string(),
            ..Default::default()
        };
        for (stats, span) in &map_results {
            report.absorb_map(stats);
            report.task_spans.push(*span);
        }
        report.task_spans.extend(extra_spans);
        report.map_attempts = map_attempts;
        report.failed_attempts = failed_attempts;
        report.speculative_launched = speculative_launched;
        report.speculative_wins = speculative_wins;
        if report.map_tasks != total_map_tasks {
            return Err(Error::InvalidState(format!(
                "expected {total_map_tasks} map results, got {}",
                report.map_tasks
            )));
        }
        let mut early_total = 0u64;
        for res in red_res_rx.iter() {
            let (result, span, sink) = res?;
            report.absorb_reduce(&result);
            report.task_spans.push(span);
            early_total += sink.early_seen;
            if let Some(t) = sink.first_early {
                report.first_early_at = Some(match report.first_early_at {
                    Some(cur) => cur.min(t),
                    None => t,
                });
            }
            if let Some(t) = sink.first_final {
                report.first_final_at = Some(match report.first_final_at {
                    Some(cur) => cur.min(t),
                    None => t,
                });
            }
            report.outputs.extend(sink.outputs);
        }
        // Early emissions = what the sinks actually saw: covers backend
        // early output *and* HOP snapshots uniformly, independent of
        // whether outputs were collected.
        report.early_emits = early_total;
        report.shuffled_bytes = shuffle_tx.shuffled_bytes();
        if let Some(ms) = &map_store {
            report.map_write_io = ms.stats();
        }
        if let Some(g) = &governor {
            let c = g.counters();
            report.mem_rebalances = c.rebalances;
            report.mem_sheds = c.sheds;
            report.mem_shed_bytes = c.shed_bytes_requested;
            report.mem_pool_high_water = g.pool().high_water() as u64;
        }
        report.backpressure_stalls = shuffle_tx.backpressure_stalls();
        report.wall = start.elapsed();
        Ok(report)
    }
}

/// Sink that timestamps emissions and optionally stores them.
#[derive(Debug)]
pub(crate) struct TimedSink {
    start: Instant,
    collect: bool,
    pub(crate) outputs: Vec<JobOutput>,
    pub(crate) early_seen: u64,
    pub(crate) final_seen: u64,
    pub(crate) first_early: Option<std::time::Duration>,
    pub(crate) first_final: Option<std::time::Duration>,
}

impl TimedSink {
    fn new(start: Instant, collect: bool) -> Self {
        TimedSink {
            start,
            collect,
            outputs: Vec::new(),
            early_seen: 0,
            final_seen: 0,
            first_early: None,
            first_final: None,
        }
    }
}

impl Sink for TimedSink {
    fn emit(&mut self, key: &[u8], value: &[u8], kind: EmitKind) {
        let at = self.start.elapsed();
        match kind {
            EmitKind::Early => {
                self.early_seen += 1;
                self.first_early.get_or_insert(at);
            }
            EmitKind::Final => {
                self.final_seen += 1;
                self.first_final.get_or_insert(at);
            }
        }
        if self.collect {
            self.outputs.push(JobOutput {
                key: key.to_vec(),
                value: value.to_vec(),
                kind,
                at,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Combine, MapEmitter, MapSideMode, ReduceBackend, ShuffleMode};
    use onepass_groupby::SumAgg;
    use std::collections::BTreeMap;

    fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
        for w in record.split(|&b| b == b' ') {
            if !w.is_empty() {
                out.emit(w, &1u64.to_le_bytes());
            }
        }
    }

    fn splits(lines: &[&str], per_split: usize) -> Vec<Split> {
        lines
            .chunks(per_split)
            .map(|c| Split::new(c.iter().map(|l| l.as_bytes().to_vec()).collect()))
            .collect()
    }

    fn final_counts(report: &JobReport) -> BTreeMap<String, u64> {
        report
            .outputs
            .iter()
            .filter(|o| o.kind == EmitKind::Final)
            .map(|o| {
                (
                    String::from_utf8(o.key.clone()).unwrap(),
                    u64::from_le_bytes(o.value.as_slice().try_into().unwrap()),
                )
            })
            .collect()
    }

    fn expected() -> BTreeMap<String, u64> {
        [("a", 4u64), ("b", 3), ("c", 2), ("d", 1)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }

    fn input() -> Vec<Split> {
        splits(&["a b a", "c b", "a d c", "b a"], 2)
    }

    fn wc_job(reducers: usize) -> JobSpec {
        JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(reducers)
            .build()
            .unwrap()
    }

    #[test]
    fn hadoop_pipeline_end_to_end() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(3)
            .preset_hadoop()
            .build()
            .unwrap();
        let report = Engine::new().run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        assert_eq!(report.map_tasks, 2);
        assert_eq!(report.reduce_tasks, 3);
        assert_eq!(report.input_records, 4);
        assert_eq!(report.map_output_records, 10);
        assert_eq!(report.early_emits, 0, "stock Hadoop has no early output");
        assert!(report.map_write_io.bytes_written > 0);
        assert_eq!(report.map_attempts, 2, "no retries on a clean run");
        assert_eq!(report.reduce_attempts, 3);
        assert_eq!(report.failed_attempts, 0);
    }

    #[test]
    fn onepass_pipeline_end_to_end() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .preset_onepass()
            .build()
            .unwrap();
        let report = Engine::new().run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        // Hash path must not register any sort CPU.
        assert_eq!(
            report
                .map_profile
                .time(onepass_core::metrics::Phase::MapSort),
            std::time::Duration::ZERO
        );
    }

    #[test]
    fn hop_pipeline_produces_snapshots() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .preset_hop()
            .build()
            .unwrap();
        // Enough map tasks that the 25/50/75% snapshot points exist.
        let many: Vec<&str> = vec!["a b"; 8];
        let report = Engine::new().run(&job, splits(&many, 1)).unwrap();
        assert_eq!(final_counts(&report)["a"], 8);
        assert!(report.snapshots >= 1, "HOP must take snapshots");
        assert!(report.early_emits > 0);
        assert!(report.first_early_at.unwrap() <= report.first_final_at.unwrap());
    }

    #[test]
    fn all_backends_agree() {
        let backends = vec![
            ReduceBackend::SortMerge {
                merge_factor: 4,
                snapshots: vec![],
            },
            ReduceBackend::HybridHash { fanout: 4 },
            ReduceBackend::IncHash { early: None },
            ReduceBackend::FreqHash(Default::default()),
        ];
        for backend in backends {
            let label = backend.label();
            let job = JobSpec::builder("wc")
                .map_fn(Arc::new(word_map))
                .aggregate(Arc::new(SumAgg))
                .reducers(2)
                .map_side(MapSideMode::HashPartitionOnly)
                .combine_mode(Combine::Off)
                .shuffle(ShuffleMode::Push { granularity: 3 })
                .backend(backend)
                .build()
                .unwrap();
            let report = Engine::new().run(&job, input()).unwrap();
            assert_eq!(final_counts(&report), expected(), "{label} diverged");
        }
    }

    #[test]
    fn empty_input_completes() {
        let job = JobSpec::builder("empty").build().unwrap();
        let report = Engine::new().run(&job, vec![]).unwrap();
        assert_eq!(report.map_tasks, 0);
        assert_eq!(report.groups_out, 0);
    }

    #[test]
    fn spans_cover_all_tasks() {
        let job = wc_job(2);
        let report = Engine::new().run(&job, input()).unwrap();
        let maps = report
            .task_spans
            .iter()
            .filter(|s| s.kind == TaskKind::Map)
            .count();
        let reds = report
            .task_spans
            .iter()
            .filter(|s| s.kind == TaskKind::Reduce)
            .count();
        assert_eq!(maps, 2);
        assert_eq!(reds, 2);
        for s in &report.task_spans {
            assert!(s.end >= s.start);
            assert_eq!(s.attempt, 0, "clean run uses only first attempts");
        }
    }

    #[test]
    fn file_spill_backend_works() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .reduce_budget_bytes(2048)
            .build()
            .unwrap();
        let engine = Engine::with_config(
            EngineConfig::builder()
                .spill(SpillBackend::TempFiles)
                .build(),
        );
        let many: Vec<String> = (0..200)
            .map(|i| format!("w{} w{} a", i % 37, i % 11))
            .collect();
        let refs: Vec<&str> = many.iter().map(|s| s.as_str()).collect();
        let report = engine.run(&job, splits(&refs, 20)).unwrap();
        let counts = final_counts(&report);
        assert_eq!(counts["a"], 200);
        assert!(report.reduce_spill_io.bytes_written > 0);
    }

    #[test]
    fn builder_covers_every_knob() {
        let cfg = EngineConfig::builder()
            .map_workers(2)
            .channel_depth(8)
            .spill(SpillBackend::TempFiles)
            .map_output(MapOutputPersistence::Volatile)
            .retry(RetryPolicy::attempts(3))
            .speculation(SpeculationConfig::on())
            .faults(FaultPlan::new().fail_map(0, 0, 1))
            .memory_policy(MemoryPolicy::adaptive())
            .build();
        assert_eq!(cfg.map_workers, 2);
        assert_eq!(cfg.channel_depth, 8);
        assert_eq!(cfg.spill, SpillBackend::TempFiles);
        assert!(!cfg.persist_map_output.is_persist());
        assert_eq!(cfg.retry.max_attempts, 3);
        assert!(cfg.speculation.enabled);
        assert!(cfg.faults.is_active());
        assert!(matches!(cfg.memory_policy, MemoryPolicy::Adaptive { .. }));
        let defaults = EngineConfig::builder().build();
        assert!(matches!(defaults.memory_policy, MemoryPolicy::Static));
    }

    #[test]
    fn adaptive_policy_matches_static_output() {
        for backend in [
            ReduceBackend::SortMerge {
                merge_factor: 4,
                snapshots: vec![],
            },
            ReduceBackend::HybridHash { fanout: 4 },
            ReduceBackend::IncHash { early: None },
            ReduceBackend::FreqHash(Default::default()),
        ] {
            let label = backend.label();
            let job = JobSpec::builder("wc")
                .map_fn(Arc::new(word_map))
                .aggregate(Arc::new(SumAgg))
                .reducers(2)
                .reduce_budget_bytes(2048)
                .backend(backend)
                .build()
                .unwrap();
            let many: Vec<String> = (0..300)
                .map(|i| format!("w{} w{} a", i % 53, i % 17))
                .collect();
            let refs: Vec<&str> = many.iter().map(|s| s.as_str()).collect();
            let input = splits(&refs, 25);

            let static_rep = Engine::new().run(&job, input.clone()).unwrap();
            let adaptive = Engine::with_config(
                EngineConfig::builder()
                    .memory_policy(MemoryPolicy::adaptive())
                    .build(),
            );
            let adaptive_rep = adaptive.run(&job, input).unwrap();
            assert_eq!(
                final_counts(&static_rep),
                final_counts(&adaptive_rep),
                "{label}: adaptive governance changed the output"
            );
        }
    }

    #[test]
    fn map_output_knob_sets_persistence() {
        let cfg = EngineConfig::builder()
            .map_output(MapOutputPersistence::Volatile)
            .build();
        assert_eq!(cfg.persist_map_output, MapOutputPersistence::Volatile);
        assert!(!cfg.persist_map_output.is_persist());
        let defaults = EngineConfig::builder().build();
        assert_eq!(defaults.persist_map_output, MapOutputPersistence::Persist);
    }

    #[test]
    fn map_fault_retries_and_recovers() {
        let job = wc_job(2);
        let cfg = EngineConfig::builder()
            .retry(RetryPolicy::attempts(3))
            .faults(FaultPlan::new().fail_map(0, 0, 1))
            .build();
        let report = Engine::with_config(cfg).run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        assert_eq!(report.map_tasks, 2);
        assert_eq!(report.map_attempts, 3, "two firsts + one retry");
        assert_eq!(report.failed_attempts, 1);
        // The failed attempt leaves its own span.
        assert!(report
            .task_spans
            .iter()
            .any(|s| s.kind == TaskKind::Map && s.id == 0 && s.attempt == 1));
    }

    #[test]
    fn map_panic_is_caught_and_retried() {
        let job = wc_job(1);
        let cfg = EngineConfig::builder()
            .retry(RetryPolicy::attempts(2))
            .faults(FaultPlan::new().panic_map(1, 0, 0))
            .build();
        let report = Engine::with_config(cfg).run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        assert_eq!(report.failed_attempts, 1);
    }

    #[test]
    fn exhausted_map_retries_fail_the_job_without_hanging() {
        let job = wc_job(2);
        let cfg = EngineConfig::builder()
            .retry(RetryPolicy::attempts(2))
            .faults(
                FaultPlan::new()
                    .fail_map(0, 0, 0) // first attempt dies...
                    .fail_map(0, 1, 0), // ...and so does the retry
            )
            .build();
        let err = Engine::with_config(cfg).run(&job, input()).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
    }

    #[test]
    fn reduce_fault_retries_and_recovers() {
        let job = wc_job(2);
        let cfg = EngineConfig::builder()
            .retry(RetryPolicy::attempts(3))
            .faults(FaultPlan::new().fail_reduce(1, 0, 1))
            .build();
        let report = Engine::with_config(cfg).run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        assert_eq!(report.reduce_tasks, 2);
        assert!(report.reduce_attempts >= 3, "one reducer retried");
        assert!(report.failed_attempts >= 1);
    }

    #[test]
    fn speculative_clone_beats_straggler() {
        let job = wc_job(2);
        // Task 0's first attempt sleeps 25 ms per record; its clone runs
        // at full speed and must win. 3 records bound the cancelled
        // straggler's exit latency to one sleep.
        let lines: Vec<String> = (0..12).map(|i| format!("w{} a b", i % 5)).collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let input = splits(&refs, 3);
        let cfg = EngineConfig::builder()
            .speculation(SpeculationConfig {
                enabled: true,
                slow_factor: 2.0,
                min_completed: 1,
                poll: Duration::from_millis(2),
            })
            .faults(FaultPlan::new().straggle_map(0, 0, Duration::from_millis(25)))
            .build();
        let report = Engine::with_config(cfg).run(&job, input).unwrap();
        let mut want = BTreeMap::new();
        for line in &lines {
            for w in line.split(' ') {
                *want.entry(w.to_string()).or_insert(0u64) += 1;
            }
        }
        assert_eq!(
            final_counts(&report),
            want,
            "speculation must not change output"
        );
        assert!(report.speculative_launched >= 1, "straggler was cloned");
        assert!(report.speculative_wins >= 1, "clone finished first");
        assert_eq!(report.map_tasks, 4, "each task counted once");
    }

    #[test]
    fn zero_max_attempts_is_rejected() {
        let job = wc_job(1);
        let cfg = EngineConfig {
            retry: RetryPolicy {
                max_attempts: 0,
                backoff: Duration::ZERO,
            },
            ..Default::default()
        };
        let err = Engine::with_config(cfg).run(&job, input()).unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }
}
