//! The engine facade: public configuration types ([`EngineConfig`] and
//! friends) and the [`Engine`] entry point. The actual machinery lives in
//! two focused layers: `scheduler` (task queues, retries,
//! speculation) and `executor` (worker pools, shuffle wiring,
//! shared spill/governor services, report assembly). Thread fan-out uses
//! crossbeam scoped threads; all inter-task communication is
//! channel-based (no shared mutable state beyond the spill stores' atomic
//! counters).
//!
//! # Fault tolerance
//!
//! The driver gives every map and reduce execution an **attempt id** and
//! implements the recovery loop the paper's Hadoop baseline pays its
//! map-output persistence tax for (§II-A):
//!
//! * **Retries.** A failed attempt (an `Err` from a spill store, a panic
//!   in a user map function, or an injected [`FaultPlan`] fault) is
//!   re-executed with a fresh attempt id, up to
//!   [`RetryPolicy::max_attempts`].
//! * **Speculative execution.** With [`SpeculationConfig::enabled`], the
//!   coordinator watches running map attempts against the median duration
//!   of completed ones and launches one backup clone per straggling task;
//!   the first attempt to finish wins and the loser is cancelled.
//! * **Attempt-aware shuffle.** Reducers commit exactly one attempt per
//!   map task (the first whose `MapDone` arrives), so retried or raced
//!   attempts never double-count records (see [`crate::shuffle`]).
//!
//! When retries are exhausted the driver cancels all outstanding
//! attempts, broadcasts [`ShuffleMsg::Abort`](crate::shuffle::ShuffleMsg)
//! so reducers unblock, and returns the original error — it never hangs.

use std::time::{Duration, Instant};

use onepass_core::error::Result;
use onepass_core::fault::{FaultInjector, FaultPlan};
use onepass_core::governor::MemoryPolicy;
use onepass_core::hashlib::HashFamily;
use onepass_core::trace::Tracer;

use crate::executor;
use crate::in_node::InNodeCombine;
use crate::job::JobSpec;
use crate::map_task::Split;
use crate::report::JobReport;
use crate::scheduler::SplitFeed;
use crate::transport::Transport;

/// Where spill runs live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillBackend {
    /// In-memory runs: exact I/O accounting without filesystem traffic.
    /// The default — deterministic and fast for tests and CPU studies.
    Memory,
    /// Real temp files with buffered I/O — for experiments that should
    /// touch disk.
    TempFiles,
}

/// Whether map output is synchronously persisted before task completion —
/// the Hadoop fault-tolerance write of §II-A. Replaces the old
/// `persist_map_output: bool` field with a self-documenting two-variant
/// type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapOutputPersistence {
    /// Write map output to the map-side store before completing the task
    /// (Hadoop behaviour). The default.
    #[default]
    Persist,
    /// Skip the map-output write — the paper's one-pass configuration;
    /// failed map tasks are recovered by re-running them from the input
    /// split instead.
    Volatile,
}

impl MapOutputPersistence {
    /// True when map output is persisted.
    pub fn is_persist(self) -> bool {
        matches!(self, MapOutputPersistence::Persist)
    }
}

/// Per-task retry budget for failed attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed per task, including the first. Must be at
    /// least 1; 1 means a single failure fails the job.
    pub max_attempts: usize,
    /// Delay before launching a retry attempt.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// Policy allowing `max_attempts` total attempts with no backoff.
    pub fn attempts(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: Duration::ZERO,
        }
    }
}

/// Straggler mitigation: speculative backup execution of slow map tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// Master switch. Default off.
    pub enabled: bool,
    /// An attempt is a straggler once it has run longer than
    /// `slow_factor` × the median duration of completed map tasks.
    pub slow_factor: f64,
    /// Completed map tasks required before the median is trusted.
    pub min_completed: usize,
    /// Coordinator polling cadence while watching for stragglers.
    pub poll: Duration,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            enabled: false,
            slow_factor: 2.0,
            min_completed: 2,
            poll: Duration::from_millis(5),
        }
    }
}

impl SpeculationConfig {
    /// Speculation enabled with default thresholds.
    pub fn on() -> Self {
        SpeculationConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Concurrent map workers (task slots). Defaults to the machine's
    /// available parallelism (min 2 so speculation and straggler tests
    /// still overlap attempts), capped at 4.
    pub map_workers: usize,
    /// Reducer channel depth (shuffle backpressure). Default 64.
    pub channel_depth: usize,
    /// Spill-run backend. Default memory.
    pub spill: SpillBackend,
    /// Persist map output before task completion (Hadoop fault-tolerance
    /// write, §II-A). Default [`MapOutputPersistence::Persist`].
    pub persist_map_output: MapOutputPersistence,
    /// Trace collection point. Default disabled: every probe site in the
    /// engine then costs a single branch. Hand in [`Tracer::enabled`] and
    /// drain it after [`Engine::run`] to get the event stream.
    pub tracer: Tracer,
    /// Retry budget for failed task attempts. Default: no retries.
    pub retry: RetryPolicy,
    /// Speculative execution of straggling map tasks. Default off.
    pub speculation: SpeculationConfig,
    /// Planned fault schedule for recovery testing. Default inert.
    pub faults: FaultInjector,
    /// Reduce-side memory governance. [`MemoryPolicy::Static`] (default)
    /// gives every reduce task a fixed private budget of
    /// `job.reduce_budget_bytes`. [`MemoryPolicy::Adaptive`] pools
    /// `reduce_budget_bytes × reducers` under a
    /// [`MemoryGovernor`](onepass_core::governor::MemoryGovernor) that
    /// rebalances lease limits between concurrent reducers, picks spill
    /// victims via the configured policy under global pressure, and gates
    /// map-side shuffle pushes above the high-water fraction.
    pub memory_policy: MemoryPolicy,
    /// Live-metrics registry. `None` (default) builds no instruments:
    /// every probe site then costs one branch, exactly like the disabled
    /// tracer. Hand in a registry (shared with a
    /// [`MetricsSampler`](onepass_core::obs::MetricsSampler) or
    /// [`MetricsServer`](onepass_core::obs::MetricsServer)) to get live
    /// per-stage progress, phase cost, shuffle volume, and TTFA metrics.
    pub metrics: Option<onepass_core::obs::MetricsRegistry>,
    /// Hash family for the engine's hash groupers (reduce-side hybrid /
    /// frequent-key tables and their recursive children). Default
    /// [`HashFamily::MultiplyShift`] — one multiply + shift per probe;
    /// [`HashFamily::Tabulation`] trades a table lookup per byte for
    /// stronger independence guarantees.
    pub hash_family: HashFamily,
    /// Worker-scoped in-node combining of map output (see
    /// [`crate::in_node`]). Default [`InNodeCombine::On`]: eligible jobs
    /// (hash-combine map side, combinable aggregate, speculation off)
    /// combine across all map tasks sharing a worker before shuffling.
    pub in_node_combine: InNodeCombine,
    /// Executor/shuffle transport. [`Transport::InProc`] (default) runs
    /// map and reduce tasks on in-process worker threads over the
    /// zero-copy channel fabric. [`Transport::Tcp`] places tasks on
    /// external worker processes (`onepass worker --listen ADDR`); each
    /// job must be registered by name in every worker's
    /// [`JobRegistry`](crate::transport::JobRegistry). See
    /// [`crate::transport`] for the framing, heartbeat, and replay
    /// semantics.
    pub transport: Transport,
}

/// Map task slots sized to the machine: one per hardware thread, floored
/// at 2 (so speculative attempts can overlap their originals) and capped
/// at 4 (more slots than that just thrash worker combine tables on the
/// small inputs this engine targets).
fn default_map_workers() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 4))
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            map_workers: default_map_workers(),
            channel_depth: 64,
            spill: SpillBackend::Memory,
            persist_map_output: MapOutputPersistence::Persist,
            tracer: Tracer::disabled(),
            retry: RetryPolicy::default(),
            speculation: SpeculationConfig::default(),
            faults: FaultInjector::none(),
            memory_policy: MemoryPolicy::Static,
            metrics: None,
            hash_family: HashFamily::default(),
            in_node_combine: InNodeCombine::default(),
            transport: Transport::default(),
        }
    }
}

impl EngineConfig {
    /// Fluent builder over the default configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }
}

/// Builder for [`EngineConfig`].
#[derive(Debug, Default)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Concurrent map workers (task slots).
    pub fn map_workers(mut self, n: usize) -> Self {
        self.cfg.map_workers = n;
        self
    }

    /// Reducer channel depth (shuffle backpressure).
    pub fn channel_depth(mut self, depth: usize) -> Self {
        self.cfg.channel_depth = depth;
        self
    }

    /// Spill-run backend.
    pub fn spill(mut self, spill: SpillBackend) -> Self {
        self.cfg.spill = spill;
        self
    }

    /// Map-output persistence mode.
    pub fn map_output(mut self, mode: MapOutputPersistence) -> Self {
        self.cfg.persist_map_output = mode;
        self
    }

    /// Trace collection point.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.cfg.tracer = tracer;
        self
    }

    /// Retry budget for failed attempts.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Speculative-execution policy.
    pub fn speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.cfg.speculation = speculation;
        self
    }

    /// Install a planned fault schedule.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = plan.into_injector();
        self
    }

    /// Reduce-side memory governance policy.
    pub fn memory_policy(mut self, policy: MemoryPolicy) -> Self {
        self.cfg.memory_policy = policy;
        self
    }

    /// Publish live metrics into `registry` while jobs run.
    pub fn metrics(mut self, registry: onepass_core::obs::MetricsRegistry) -> Self {
        self.cfg.metrics = Some(registry);
        self
    }

    /// Hash family for the engine's hash groupers.
    pub fn hash_family(mut self, family: HashFamily) -> Self {
        self.cfg.hash_family = family;
        self
    }

    /// Worker-scoped in-node combining of map output.
    pub fn in_node_combine(mut self, mode: InNodeCombine) -> Self {
        self.cfg.in_node_combine = mode;
        self
    }

    /// Executor/shuffle transport (in-proc fabric or TCP worker fleet).
    pub fn transport(mut self, transport: Transport) -> Self {
        self.cfg.transport = transport;
        self
    }

    /// Finalize the configuration.
    pub fn build(self) -> EngineConfig {
        self.cfg
    }
}

/// The MapReduce engine.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Engine with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// The engine's configuration (used by the plan layer to run stages
    /// through the shared executor).
    pub(crate) fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Run `job` over `splits` (one map task per split) and return the
    /// report.
    pub fn run(&self, job: &JobSpec, splits: Vec<Split>) -> Result<JobReport> {
        executor::execute(executor::ExecParams {
            config: &self.config,
            job,
            feed: SplitFeed::Fixed(splits),
            clock: Instant::now(),
            tap: None,
            governor: None,
            track_offset: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Combine, MapEmitter, MapSideMode, ReduceBackend, ShuffleMode};
    use crate::report::TaskKind;
    use onepass_core::error::Error;
    use onepass_groupby::{EmitKind, SumAgg};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
        for w in record.split(|&b| b == b' ') {
            if !w.is_empty() {
                out.emit(w, &1u64.to_le_bytes());
            }
        }
    }

    fn splits(lines: &[&str], per_split: usize) -> Vec<Split> {
        lines
            .chunks(per_split)
            .map(|c| Split::new(c.iter().map(|l| l.as_bytes().to_vec()).collect()))
            .collect()
    }

    fn final_counts(report: &JobReport) -> BTreeMap<String, u64> {
        report
            .outputs
            .iter()
            .filter(|o| o.kind == EmitKind::Final)
            .map(|o| {
                (
                    String::from_utf8(o.key.clone()).unwrap(),
                    u64::from_le_bytes(o.value.as_slice().try_into().unwrap()),
                )
            })
            .collect()
    }

    fn expected() -> BTreeMap<String, u64> {
        [("a", 4u64), ("b", 3), ("c", 2), ("d", 1)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }

    fn input() -> Vec<Split> {
        splits(&["a b a", "c b", "a d c", "b a"], 2)
    }

    fn wc_job(reducers: usize) -> JobSpec {
        JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(reducers)
            .build()
            .unwrap()
    }

    #[test]
    fn hadoop_pipeline_end_to_end() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(3)
            .preset_hadoop()
            .build()
            .unwrap();
        let report = Engine::new().run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        assert_eq!(report.map_tasks, 2);
        assert_eq!(report.reduce_tasks, 3);
        assert_eq!(report.input_records, 4);
        assert_eq!(report.map_output_records, 10);
        assert_eq!(report.early_emits, 0, "stock Hadoop has no early output");
        assert!(report.map_write_io.bytes_written > 0);
        assert_eq!(report.map_attempts, 2, "no retries on a clean run");
        assert_eq!(report.reduce_attempts, 3);
        assert_eq!(report.failed_attempts, 0);
    }

    #[test]
    fn onepass_pipeline_end_to_end() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(2)
            .preset_onepass()
            .build()
            .unwrap();
        let report = Engine::new().run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        // Hash path must not register any sort CPU.
        assert_eq!(
            report
                .map_profile
                .time(onepass_core::metrics::Phase::MapSort),
            std::time::Duration::ZERO
        );
    }

    #[test]
    fn hop_pipeline_produces_snapshots() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .preset_hop()
            .build()
            .unwrap();
        // Enough map tasks that the 25/50/75% snapshot points exist.
        let many: Vec<&str> = vec!["a b"; 8];
        let report = Engine::new().run(&job, splits(&many, 1)).unwrap();
        assert_eq!(final_counts(&report)["a"], 8);
        assert!(report.snapshots >= 1, "HOP must take snapshots");
        assert!(report.early_emits > 0);
        assert!(report.first_early_at.unwrap() <= report.first_final_at.unwrap());
    }

    #[test]
    fn all_backends_agree() {
        let backends = vec![
            ReduceBackend::SortMerge {
                merge_factor: 4,
                snapshots: vec![],
            },
            ReduceBackend::HybridHash { fanout: 4 },
            ReduceBackend::IncHash { early: None },
            ReduceBackend::FreqHash(Default::default()),
        ];
        for backend in backends {
            let label = backend.label();
            let job = JobSpec::builder("wc")
                .map_fn(Arc::new(word_map))
                .aggregate(Arc::new(SumAgg))
                .reducers(2)
                .map_side(MapSideMode::HashPartitionOnly)
                .combine_mode(Combine::Off)
                .shuffle(ShuffleMode::Push { granularity: 3 })
                .backend(backend)
                .build()
                .unwrap();
            let report = Engine::new().run(&job, input()).unwrap();
            assert_eq!(final_counts(&report), expected(), "{label} diverged");
        }
    }

    #[test]
    fn empty_input_completes() {
        let job = JobSpec::builder("empty").build().unwrap();
        let report = Engine::new().run(&job, vec![]).unwrap();
        assert_eq!(report.map_tasks, 0);
        assert_eq!(report.groups_out, 0);
    }

    #[test]
    fn spans_cover_all_tasks() {
        let job = wc_job(2);
        let report = Engine::new().run(&job, input()).unwrap();
        let maps = report
            .task_spans
            .iter()
            .filter(|s| s.kind == TaskKind::Map)
            .count();
        let reds = report
            .task_spans
            .iter()
            .filter(|s| s.kind == TaskKind::Reduce)
            .count();
        assert_eq!(maps, 2);
        assert_eq!(reds, 2);
        for s in &report.task_spans {
            assert!(s.end >= s.start);
            assert_eq!(s.attempt, 0, "clean run uses only first attempts");
        }
    }

    #[test]
    fn file_spill_backend_works() {
        let job = JobSpec::builder("wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(1)
            .reduce_budget_bytes(2048)
            .build()
            .unwrap();
        let engine = Engine::with_config(
            EngineConfig::builder()
                .spill(SpillBackend::TempFiles)
                .build(),
        );
        let many: Vec<String> = (0..200)
            .map(|i| format!("w{} w{} a", i % 37, i % 11))
            .collect();
        let refs: Vec<&str> = many.iter().map(|s| s.as_str()).collect();
        let report = engine.run(&job, splits(&refs, 20)).unwrap();
        let counts = final_counts(&report);
        assert_eq!(counts["a"], 200);
        assert!(report.reduce_spill_io.bytes_written > 0);
    }

    #[test]
    fn builder_covers_every_knob() {
        let cfg = EngineConfig::builder()
            .map_workers(2)
            .channel_depth(8)
            .spill(SpillBackend::TempFiles)
            .map_output(MapOutputPersistence::Volatile)
            .retry(RetryPolicy::attempts(3))
            .speculation(SpeculationConfig::on())
            .faults(FaultPlan::new().fail_map(0, 0, 1))
            .memory_policy(MemoryPolicy::adaptive())
            .metrics(onepass_core::obs::MetricsRegistry::new())
            .hash_family(HashFamily::Tabulation)
            .in_node_combine(InNodeCombine::Off)
            .transport(Transport::Tcp {
                workers: vec!["127.0.0.1:7777".into()],
            })
            .build();
        assert_eq!(cfg.map_workers, 2);
        assert_eq!(cfg.channel_depth, 8);
        assert_eq!(cfg.spill, SpillBackend::TempFiles);
        assert!(!cfg.persist_map_output.is_persist());
        assert_eq!(cfg.retry.max_attempts, 3);
        assert!(cfg.speculation.enabled);
        assert!(cfg.faults.is_active());
        assert!(matches!(cfg.memory_policy, MemoryPolicy::Adaptive { .. }));
        assert!(cfg.metrics.is_some());
        assert_eq!(cfg.hash_family, HashFamily::Tabulation);
        assert_eq!(cfg.in_node_combine, InNodeCombine::Off);
        assert!(matches!(cfg.transport, Transport::Tcp { ref workers } if workers.len() == 1));
        let defaults = EngineConfig::builder().build();
        assert!(matches!(defaults.memory_policy, MemoryPolicy::Static));
        assert!(defaults.metrics.is_none());
        assert_eq!(defaults.hash_family, HashFamily::MultiplyShift);
        assert!(matches!(defaults.transport, Transport::InProc));
        assert!(
            defaults.in_node_combine.is_on(),
            "in-node combining is the default fast path"
        );
    }

    #[test]
    fn adaptive_policy_matches_static_output() {
        for backend in [
            ReduceBackend::SortMerge {
                merge_factor: 4,
                snapshots: vec![],
            },
            ReduceBackend::HybridHash { fanout: 4 },
            ReduceBackend::IncHash { early: None },
            ReduceBackend::FreqHash(Default::default()),
        ] {
            let label = backend.label();
            let job = JobSpec::builder("wc")
                .map_fn(Arc::new(word_map))
                .aggregate(Arc::new(SumAgg))
                .reducers(2)
                .reduce_budget_bytes(2048)
                .backend(backend)
                .build()
                .unwrap();
            let many: Vec<String> = (0..300)
                .map(|i| format!("w{} w{} a", i % 53, i % 17))
                .collect();
            let refs: Vec<&str> = many.iter().map(|s| s.as_str()).collect();
            let input = splits(&refs, 25);

            let static_rep = Engine::new().run(&job, input.clone()).unwrap();
            let adaptive = Engine::with_config(
                EngineConfig::builder()
                    .memory_policy(MemoryPolicy::adaptive())
                    .build(),
            );
            let adaptive_rep = adaptive.run(&job, input).unwrap();
            assert_eq!(
                final_counts(&static_rep),
                final_counts(&adaptive_rep),
                "{label}: adaptive governance changed the output"
            );
        }
    }

    #[test]
    fn map_output_knob_sets_persistence() {
        let cfg = EngineConfig::builder()
            .map_output(MapOutputPersistence::Volatile)
            .build();
        assert_eq!(cfg.persist_map_output, MapOutputPersistence::Volatile);
        assert!(!cfg.persist_map_output.is_persist());
        let defaults = EngineConfig::builder().build();
        assert_eq!(defaults.persist_map_output, MapOutputPersistence::Persist);
    }

    #[test]
    fn map_fault_retries_and_recovers() {
        let job = wc_job(2);
        let cfg = EngineConfig::builder()
            .retry(RetryPolicy::attempts(3))
            .faults(FaultPlan::new().fail_map(0, 0, 1))
            .build();
        let report = Engine::with_config(cfg).run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        assert_eq!(report.map_tasks, 2);
        assert_eq!(report.map_attempts, 3, "two firsts + one retry");
        assert_eq!(report.failed_attempts, 1);
        // The failed attempt leaves its own span.
        assert!(report
            .task_spans
            .iter()
            .any(|s| s.kind == TaskKind::Map && s.id == 0 && s.attempt == 1));
    }

    #[test]
    fn map_panic_is_caught_and_retried() {
        let job = wc_job(1);
        let cfg = EngineConfig::builder()
            .retry(RetryPolicy::attempts(2))
            .faults(FaultPlan::new().panic_map(1, 0, 0))
            .build();
        let report = Engine::with_config(cfg).run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        assert_eq!(report.failed_attempts, 1);
    }

    #[test]
    fn exhausted_map_retries_fail_the_job_without_hanging() {
        let job = wc_job(2);
        let cfg = EngineConfig::builder()
            .retry(RetryPolicy::attempts(2))
            .faults(
                FaultPlan::new()
                    .fail_map(0, 0, 0) // first attempt dies...
                    .fail_map(0, 1, 0), // ...and so does the retry
            )
            .build();
        let err = Engine::with_config(cfg).run(&job, input()).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
    }

    #[test]
    fn reduce_fault_retries_and_recovers() {
        let job = wc_job(2);
        let cfg = EngineConfig::builder()
            .retry(RetryPolicy::attempts(3))
            .faults(FaultPlan::new().fail_reduce(1, 0, 1))
            .build();
        let report = Engine::with_config(cfg).run(&job, input()).unwrap();
        assert_eq!(final_counts(&report), expected());
        assert_eq!(report.reduce_tasks, 2);
        assert!(report.reduce_attempts >= 3, "one reducer retried");
        assert!(report.failed_attempts >= 1);
    }

    #[test]
    fn speculative_clone_beats_straggler() {
        let job = wc_job(2);
        // Task 0's first attempt sleeps 25 ms per record; its clone runs
        // at full speed and must win. 3 records bound the cancelled
        // straggler's exit latency to one sleep.
        let lines: Vec<String> = (0..12).map(|i| format!("w{} a b", i % 5)).collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let input = splits(&refs, 3);
        let cfg = EngineConfig::builder()
            .speculation(SpeculationConfig {
                enabled: true,
                slow_factor: 2.0,
                min_completed: 1,
                poll: Duration::from_millis(2),
            })
            .faults(FaultPlan::new().straggle_map(0, 0, Duration::from_millis(25)))
            .build();
        let report = Engine::with_config(cfg).run(&job, input).unwrap();
        let mut want = BTreeMap::new();
        for line in &lines {
            for w in line.split(' ') {
                *want.entry(w.to_string()).or_insert(0u64) += 1;
            }
        }
        assert_eq!(
            final_counts(&report),
            want,
            "speculation must not change output"
        );
        assert!(report.speculative_launched >= 1, "straggler was cloned");
        assert!(report.speculative_wins >= 1, "clone finished first");
        assert_eq!(report.map_tasks, 4, "each task counted once");
    }

    #[test]
    fn zero_max_attempts_is_rejected() {
        let job = wc_job(1);
        let cfg = EngineConfig {
            retry: RetryPolicy {
                max_attempts: 0,
                backoff: Duration::ZERO,
            },
            ..Default::default()
        };
        let err = Engine::with_config(cfg).run(&job, input()).unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }
}
