//! End-to-end recovery tests: a seeded fault plan kills at least one map
//! and one reduce task mid-run, and the engine must finish with output
//! byte-identical to a clean run — under both spill backends. Exhausted
//! retry budgets must surface as `Err` without hanging.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use onepass_core::fault::FaultPlan;
use onepass_core::trace::Tracer;
use onepass_groupby::{EmitKind, SumAgg};
use onepass_runtime::prelude::*;

fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
    for w in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
        out.emit(w, &1u64.to_le_bytes());
    }
}

/// A deterministic multi-split workload big enough that every map task
/// and every reducer sees real data.
fn splits() -> Vec<Split> {
    (0..6)
        .map(|s| {
            Split::new(
                (0..200)
                    .map(|i| format!("w{} w{} common", (s * 7 + i) % 23, i % 11).into_bytes())
                    .collect(),
            )
        })
        .collect()
}

fn wc_job(preset_onepass: bool) -> JobSpec {
    let b = JobSpec::builder("wc-ft")
        .map_fn(Arc::new(word_map))
        .aggregate(Arc::new(SumAgg))
        .reducers(3);
    if preset_onepass {
        b.preset_onepass()
    } else {
        b.preset_hadoop()
    }
    .build()
    .unwrap()
}

fn finals(report: &JobReport) -> BTreeMap<Vec<u8>, Vec<u8>> {
    report
        .outputs
        .iter()
        .filter(|o| o.kind == EmitKind::Final)
        .map(|o| (o.key.clone(), o.value.clone()))
        .collect()
}

/// Find a seed whose plan kills at least one map and one reduce task.
/// `FaultPlan::seeded` always plans one of each, so any seed works; this
/// just documents the invariant the test relies on.
fn seeded_plan(seed: u64) -> FaultPlan {
    let plan = FaultPlan::seeded(seed, 6, 3);
    assert_eq!(plan.len(), 2, "one map kill + one reduce kill");
    plan
}

/// Nightly CI sweeps fault seeds by exporting `ONEPASS_FT_SEED`; local
/// and PR runs keep the fixed defaults so a failure reproduces exactly.
fn env_seed(default: u64) -> u64 {
    std::env::var("ONEPASS_FT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn recovery_roundtrip(spill: SpillBackend, preset_onepass: bool) {
    let seed = env_seed(42);
    let job = wc_job(preset_onepass);
    let clean = Engine::with_config(EngineConfig::builder().spill(spill).build())
        .run(&job, splits())
        .expect("clean run");

    let tracer = Tracer::enabled();
    let faulty = Engine::with_config(
        EngineConfig::builder()
            .spill(spill)
            .tracer(tracer.clone())
            .retry(RetryPolicy {
                max_attempts: 3,
                backoff: Duration::ZERO,
            })
            .faults(seeded_plan(seed))
            .build(),
    )
    .run(&job, splits())
    .unwrap_or_else(|e| panic!("recovered run failed (seed {seed}): {e:?}"));

    // Byte-identical output despite a map and a reduce task dying mid-run.
    assert_eq!(
        finals(&clean),
        finals(&faulty),
        "{spill:?} output differs (seed {seed})"
    );

    // The report accounts for the extra attempts, without double-counting
    // committed tasks.
    assert_eq!(faulty.map_tasks, clean.map_tasks);
    assert_eq!(faulty.map_attempts, clean.map_tasks + 1);
    assert_eq!(faulty.reduce_attempts, job.reducers + 1);
    assert_eq!(faulty.failed_attempts, 2);
    // A retried map must not double-count its output. The committed
    // record count is schedule-independent; the shuffled count is
    // physical (with worker-scoped in-node combining it depends on how
    // tasks landed on workers), so bound it instead of pinning it — the
    // byte-identical output check above is the true double-count guard.
    assert_eq!(faulty.map_output_records, clean.map_output_records);
    assert!(
        faulty.shuffled_records > 0 && faulty.shuffled_records <= faulty.map_output_records,
        "combining must not inflate shuffle traffic ({} shuffled, {} emitted)",
        faulty.shuffled_records,
        faulty.map_output_records
    );

    // The trace layer saw the recovery.
    let events = tracer.drain();
    let retries = events.iter().filter(|e| e.name == "retry").count();
    let failed = events.iter().filter(|e| e.name == "task_failed").count();
    assert_eq!(retries, 2, "one map retry + one reduce retry");
    assert_eq!(failed, 2);
}

#[test]
fn seeded_kill_recovers_byte_identical_memory_spill() {
    recovery_roundtrip(SpillBackend::Memory, true);
}

#[test]
fn seeded_kill_recovers_byte_identical_tempfile_spill() {
    recovery_roundtrip(SpillBackend::TempFiles, true);
}

#[test]
fn seeded_kill_recovers_on_the_hadoop_path_too() {
    recovery_roundtrip(SpillBackend::TempFiles, false);
}

#[test]
fn exhausted_retries_fail_cleanly_without_hanging() {
    // Attempts 0 and 1 of map 2 both die, but only 2 attempts are allowed.
    let plan = FaultPlan::new().fail_map(2, 0, 1).fail_map(2, 1, 1);
    let err = Engine::with_config(
        EngineConfig::builder()
            .retry(RetryPolicy::attempts(2))
            .faults(plan)
            .build(),
    )
    .run(&wc_job(true), splits());
    assert!(
        err.is_err(),
        "exhausting max_attempts must surface the error"
    );
}

#[test]
fn recovery_is_deterministic_across_runs() {
    let run = || {
        Engine::with_config(
            EngineConfig::builder()
                .retry(RetryPolicy::attempts(3))
                .faults(seeded_plan(env_seed(7)))
                .build(),
        )
        .run(&wc_job(true), splits())
        .expect("recovered run")
    };
    let a = run();
    let b = run();
    assert_eq!(finals(&a), finals(&b));
    assert_eq!(a.failed_attempts, b.failed_attempts);
}
