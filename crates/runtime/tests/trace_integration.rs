//! End-to-end check of the trace layer: run a real job with tracing on,
//! drain the event stream, and validate that it pairs into complete
//! spans, matches the report's task accounting, and renders as loadable
//! Chrome trace JSON.

use std::sync::Arc;

use onepass_core::json::Json;
use onepass_core::trace::{chrome_trace_json, complete_spans, Tracer};
use onepass_groupby::SumAgg;
use onepass_runtime::driver::EngineConfig;
use onepass_runtime::job::{JobSpec, MapEmitter, ReduceBackend};
use onepass_runtime::map_task::Split;
use onepass_runtime::{Engine, TaskKind};

fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
    for w in record.split(|&b| b == b' ') {
        if !w.is_empty() {
            out.emit(w, &1u64.to_le_bytes());
        }
    }
}

fn input() -> Vec<Split> {
    ["a b a", "c b", "a d c", "b a", "d d a", "c a b"]
        .chunks(2)
        .map(|c| Split::new(c.iter().map(|l| l.as_bytes().to_vec()).collect()))
        .collect()
}

fn run_traced(
    backend: Option<ReduceBackend>,
) -> (
    onepass_runtime::JobReport,
    Vec<onepass_core::trace::TraceEvent>,
) {
    let tracer = Tracer::enabled();
    let config = EngineConfig::builder().tracer(tracer.clone()).build();
    let mut builder = JobSpec::builder("wc-traced")
        .map_fn(Arc::new(word_map))
        .aggregate(Arc::new(SumAgg))
        .reducers(2);
    if let Some(b) = backend {
        builder = builder.backend(b);
    }
    let job = builder.build().unwrap();
    let report = Engine::with_config(config).run(&job, input()).unwrap();
    (report, tracer.drain())
}

#[test]
fn traced_job_produces_complete_spans_matching_the_report() {
    let (report, events) = run_traced(None);
    assert!(!events.is_empty(), "enabled tracer must record events");

    let spans = complete_spans(&events).expect("every begin must be closed");
    let task_spans: Vec<_> = spans.iter().filter(|s| s.cat == "task").collect();
    assert_eq!(
        task_spans.len(),
        report.map_tasks + report.reduce_tasks,
        "one task span per task"
    );

    // Each report task span has a matching trace span on its track.
    for t in &report.task_spans {
        let (group, name) = match t.kind {
            TaskKind::Map => ("map", "map_task"),
            TaskKind::Reduce => ("reduce", "reduce_task"),
        };
        assert!(
            task_spans
                .iter()
                .any(|s| s.name == name && s.track.group == group && s.track.id == t.id as u64),
            "missing trace span for {group} task {}",
            t.id
        );
    }

    // The driver's job span encloses every task span.
    let job = spans.iter().find(|s| s.name == "job").expect("job span");
    for s in &task_spans {
        assert!(s.start >= job.start && s.end <= job.end);
    }

    // Phase sub-spans exist (shuffle on every reducer, at minimum).
    let shuffles = spans
        .iter()
        .filter(|s| s.name == "shuffle" && s.cat == "phase")
        .count();
    assert_eq!(shuffles, report.reduce_tasks);
}

#[test]
fn traced_job_chrome_json_is_loadable() {
    let (report, events) = run_traced(None);
    let text = chrome_trace_json(&events);
    let doc = Json::parse(&text).expect("chrome trace must be valid JSON");
    let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert!(arr.len() > events.len(), "metadata records must be present");

    // Count B/E pairs with cat "task": one pair per task.
    let begins = arr
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("B")
                && e.get("cat").and_then(Json::as_str) == Some("task")
        })
        .count();
    let ends = arr
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("E")
                && e.get("cat").and_then(Json::as_str) == Some("task")
        })
        .count();
    assert_eq!(begins, report.map_tasks + report.reduce_tasks);
    assert_eq!(begins, ends);

    // Every event carries a pid/tid that metadata names.
    let named_pids: Vec<f64> = arr
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
        .map(|e| e.get("pid").and_then(Json::as_f64).unwrap())
        .collect();
    for e in arr {
        if e.get("ph").and_then(Json::as_str) == Some("M") {
            continue;
        }
        let pid = e.get("pid").and_then(Json::as_f64).unwrap();
        assert!(named_pids.contains(&pid), "pid {pid} has no process_name");
    }
}

#[test]
fn sortmerge_backend_emits_spill_instants_when_memory_is_tight() {
    let (_, events) = run_traced(Some(ReduceBackend::SortMerge {
        merge_factor: 2,
        snapshots: vec![],
    }));
    // Spans still pair even with merge/spill activity interleaved.
    complete_spans(&events).expect("balanced spans with sort-merge backend");
    // reduce_fn phase appears on reducer tracks.
    assert!(events
        .iter()
        .any(|e| e.name == "reduce_fn" && e.track.group == "reduce"));
}
