//! Equivalence property for staged query plans: a two-stage plan
//! (word count, then a histogram of the counts) produces byte-identical
//! sink output whether the stages run [`PlanMode::Pipelined`],
//! [`PlanMode::Barrier`], split across two plans with the edge carried
//! by the [`DatasetCache`] (`cache_output` → `cached_input`), or as two
//! hand-chained [`Engine::run`] calls with the edge encoded manually
//! through the edge codec — and all four match a pure-Rust reference.
//! The property sweeps all four reduce backends, both spill backends,
//! the memory-governor policies, both hash families, in-node combining
//! on/off, and a seeded fault plan that kills a map and a reduce task
//! mid-run, so edge streaming (and a cached round's replay) must
//! survive retries, spills, worker combine-table flushes, and
//! rebalancing without changing answers.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use onepass_groupby::SumAgg;
use onepass_runtime::codec::{decode_pair, encode_pair};
use onepass_runtime::prelude::*;
use onepass_runtime::transport::worker::spawn_local;
use proptest::prelude::*;

fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
    for w in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
        out.emit(w, &1u64.to_le_bytes());
    }
}

/// Stage-2 logic: one `(count, 1)` pair per distinct word, so the sink
/// aggregates "how many words occurred N times".
fn histogram_pair(value: &[u8], out: &mut dyn MapEmitter) {
    let mut c = [0u8; 8];
    c.copy_from_slice(&value[..8]);
    out.emit(&c, &1u64.to_le_bytes());
}

/// Random "documents" over a tiny alphabet so keys collide heavily.
fn docs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(0u8..12, 0..12).prop_map(|words| {
            words
                .iter()
                .map(|w| format!("w{w}"))
                .collect::<Vec<_>>()
                .join(" ")
                .into_bytes()
        }),
        1..40,
    )
}

fn mk_backend(tag: u8) -> ReduceBackend {
    match tag {
        0 => ReduceBackend::SortMerge {
            merge_factor: 3,
            snapshots: vec![],
        },
        1 => ReduceBackend::HybridHash { fanout: 4 },
        2 => ReduceBackend::IncHash { early: None },
        _ => ReduceBackend::FreqHash(Default::default()),
    }
}

fn mk_policy(tag: u8) -> MemoryPolicy {
    match tag {
        0 => MemoryPolicy::Static,
        1 => MemoryPolicy::Adaptive {
            policy: policy_by_name("largest-consumer").unwrap(),
            high_water: 0.85,
        },
        2 => MemoryPolicy::Adaptive {
            policy: policy_by_name("largest-bucket").unwrap(),
            high_water: 0.75,
        },
        3 => MemoryPolicy::Adaptive {
            policy: policy_by_name("coldest-keys").unwrap(),
            high_water: 0.85,
        },
        _ => MemoryPolicy::Adaptive {
            policy: policy_by_name("round-robin").unwrap(),
            high_water: 0.5,
        },
    }
}

fn count_job(backend: ReduceBackend, reducers: usize) -> JobSpec {
    JobSpec::builder("plan-eq-counts")
        .map_fn(Arc::new(word_map))
        .aggregate(Arc::new(SumAgg))
        .reducers(reducers)
        .backend(backend)
        .reduce_budget_bytes(2048) // small: force spills mid-stream
        .build()
        .unwrap()
}

fn histogram_job() -> JobSpec {
    JobSpec::builder("plan-eq-histogram")
        .aggregate(Arc::new(SumAgg))
        .reducers(1)
        .preset_onepass()
        .build()
        .unwrap()
}

/// `histogram of (word -> occurrences)` computed without the engine.
fn reference(records: &[Vec<u8>]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut counts: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for r in records {
        for w in r.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            *counts.entry(w.to_vec()).or_default() += 1;
        }
    }
    let mut hist: BTreeMap<u64, u64> = BTreeMap::new();
    for &c in counts.values() {
        *hist.entry(c).or_default() += 1;
    }
    hist.into_iter()
        .map(|(c, n)| (c.to_le_bytes().to_vec(), n.to_le_bytes().to_vec()))
        .collect()
}

fn mk_config(
    spill: SpillBackend,
    policy: MemoryPolicy,
    faults: Option<FaultPlan>,
    family: HashFamily,
    in_node: InNodeCombine,
) -> EngineConfig {
    let mut b = EngineConfig::builder()
        .spill(spill)
        .memory_policy(policy)
        .hash_family(family)
        .in_node_combine(in_node);
    if let Some(f) = faults {
        b = b
            .retry(RetryPolicy {
                max_attempts: 3,
                backoff: Duration::ZERO,
            })
            .faults(f);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn plan_modes_and_manual_stages_agree(
        records in docs(),
        backend_tag in 0u8..4,
        temp_files in any::<bool>(),
        fault_seed in any::<u64>(),
        reducers in 1usize..4,
        per_split in 1usize..10,
        policy_tag in 0u8..5,
        // Tiny edge splits exercise the streaming hand-off; larger ones
        // exercise batching. Either way the answer must not move.
        records_per_split in 1usize..64,
        innode_off in any::<bool>(),
        tabulation in any::<bool>(),
    ) {
        let family = if tabulation {
            HashFamily::Tabulation
        } else {
            HashFamily::MultiplyShift
        };
        let in_node = if innode_off {
            InNodeCombine::Off
        } else {
            InNodeCombine::On
        };
        let splits: Vec<Split> = records
            .chunks(per_split)
            .map(|c| Split::new(c.to_vec()))
            .collect();
        let spill = if temp_files {
            SpillBackend::TempFiles
        } else {
            SpillBackend::Memory
        };
        let backend = mk_backend(backend_tag);

        let mut b = Plan::builder();
        let counts = b.add_stage(count_job(backend.clone(), reducers));
        let hist = b.add_pair_stage(
            histogram_job(),
            Arc::new(|_key: &[u8], value: &[u8], out: &mut dyn MapEmitter| {
                histogram_pair(value, out);
            }),
        );
        b.connect(counts, hist);
        let plan = b.build().unwrap();

        // The fault plan is sized for stage 1 (the stage with real map
        // splits and multiple reducers); stage 2's task ids mostly miss
        // it, which is fine — the seeded kills land somewhere upstream.
        let faults = FaultPlan::seeded(fault_seed, splits.len(), reducers);

        let mut outputs = Vec::new();
        for mode in [PlanMode::Pipelined, PlanMode::Barrier] {
            let cfg = mk_config(spill, mk_policy(policy_tag), Some(faults.clone()), family, in_node);
            let mut pc = PlanConfig::new(mode);
            pc.records_per_split = records_per_split;
            let report = Engine::with_config(cfg)
                .run_plan(&plan, splits.clone(), &pc)
                .unwrap();
            for s in &report.stages {
                prop_assert_eq!(s.decode_errors, 0, "stage {} skipped edge records", s.stage);
            }
            outputs.push((mode.label(), report.sorted_final_outputs()));
        }

        // Cached leg: the same two stages split across two plans with
        // the edge carried by the DatasetCache — stage 1 caches its
        // finals, a second (record-input-free) plan histograms the
        // cached partitions. The same seeded fault plan applies to both
        // plans, so killed tasks must replay against (and into) the
        // cache without changing bytes.
        {
            let cache = DatasetCache::new(CacheConfig::default());
            let cfg = mk_config(spill, mk_policy(policy_tag), Some(faults.clone()), family, in_node);
            let engine = Engine::with_config(cfg);
            let mut pc = PlanConfig::new(if policy_tag % 2 == 0 {
                PlanMode::Pipelined
            } else {
                PlanMode::Barrier
            });
            pc.records_per_split = records_per_split;

            let mut b = Plan::builder();
            let s = b.add_stage(count_job(backend.clone(), reducers));
            b.cache_output(s, "counts");
            let p1 = b.build().unwrap();
            engine
                .run_plan_with_cache(&p1, splits.clone(), &pc, Some(&cache))
                .unwrap();

            struct HistFromEdge;
            impl MapFn for HistFromEdge {
                fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
                    let (_, value) = decode_pair(record).expect("valid edge");
                    histogram_pair(value, out);
                }
            }
            let mut hist = histogram_job();
            hist.map_fn = Arc::new(HistFromEdge);
            let mut b = Plan::builder();
            let s = b.add_stage(hist);
            b.cached_input(s, "counts");
            let p2 = b.build().unwrap();
            let report = engine
                .run_plan_with_cache(&p2, Vec::new(), &pc, Some(&cache))
                .unwrap();
            prop_assert!(cache.stats().hits > 0, "histogram plan must hit the cache");
            let mut cached_out = report.sorted_final_outputs();
            cached_out.sort();
            outputs.push(("cached", cached_out));
        }

        // Manual chaining: run each stage as a standalone job and carry
        // the edge by hand through the public edge codec. No faults —
        // this leg is the engine-level reference, kept deterministic.
        let r1 = Engine::with_config(mk_config(spill, mk_policy(policy_tag), None, family, in_node))
            .run(&count_job(backend, reducers), splits)
            .unwrap();
        let edge: Vec<Vec<u8>> = r1
            .outputs
            .iter()
            .filter(|o| o.kind == onepass_groupby::EmitKind::Final)
            .map(|o| encode_pair(&o.key, &o.value))
            .collect();
        let edge_splits: Vec<Split> = edge
            .chunks(records_per_split)
            .map(|c| Split::new(c.to_vec()))
            .collect();
        let mut job2 = histogram_job();
        job2.map_fn = Arc::new(|record: &[u8], out: &mut dyn MapEmitter| {
            let (_, value) = decode_pair(record).expect("valid edge");
            histogram_pair(value, out);
        });
        let r2 = if edge_splits.is_empty() {
            None
        } else {
            Some(
                Engine::with_config(mk_config(spill, mk_policy(policy_tag), None, family, in_node))
                    .run(&job2, edge_splits)
                    .unwrap(),
            )
        };
        let manual: Vec<(Vec<u8>, Vec<u8>)> = {
            let mut v: Vec<_> = r2
                .iter()
                .flat_map(|r| r.outputs.iter())
                .filter(|o| o.kind == onepass_groupby::EmitKind::Final)
                .map(|o| (o.key.clone(), o.value.clone()))
                .collect();
            v.sort();
            v
        };

        let expect = reference(&records);
        for (label, got) in &outputs {
            prop_assert_eq!(
                got,
                &expect,
                "{} sink output diverged from reference (backend {})",
                label,
                backend_tag
            );
        }
        prop_assert_eq!(
            &manual,
            &expect,
            "manually chained stages diverged from reference (backend {})",
            backend_tag
        );
    }
}

/// Build the two-stage plan the TCP property runs.
fn mk_plan(backend: ReduceBackend, reducers: usize) -> Plan {
    let mut b = Plan::builder();
    let counts = b.add_stage(count_job(backend, reducers));
    let hist = b.add_pair_stage(
        histogram_job(),
        Arc::new(|_key: &[u8], value: &[u8], out: &mut dyn MapEmitter| {
            histogram_pair(value, out);
        }),
    );
    b.connect(counts, hist);
    b.build().unwrap()
}

/// The registry a worker needs to serve both stages of the plan. Pair
/// stages get their map function replaced coordinator-side at run time;
/// remote workers rebuild the job from the registry instead, so the
/// histogram stage is registered with the edge decoding inlined.
fn plan_registry(backend: ReduceBackend, reducers: usize) -> JobRegistry {
    let r = JobRegistry::new();
    r.register_spec(count_job(backend, reducers));
    let mut hist = histogram_job();
    hist.map_fn = Arc::new(|record: &[u8], out: &mut dyn MapEmitter| {
        let (_, value) = decode_pair(record).expect("valid edge record");
        histogram_pair(value, out);
    });
    r.register_spec(hist);
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Transport equivalence for staged plans: the two-stage plan run
    /// over the TCP loopback fabric — in both plan modes, including with
    /// a worker seeded to sever its connections mid-job — matches the
    /// pure-Rust reference byte for byte. Interior stages keep their
    /// reduce local (the inter-stage tap), so this exercises remote maps
    /// feeding local reducers (stage 1) and the fully remote map+reduce
    /// path (stage 2) in the same run.
    #[test]
    fn plan_over_tcp_loopback_matches_reference(
        records in docs(),
        backend_tag in 0u8..4,
        reducers in 1usize..4,
        per_split in 1usize..10,
        records_per_split in 1usize..64,
        // Per-connection kill (0 = healthy): in pipelined mode the dying
        // worker severs both stage connections independently.
        die_after_tag in 0u64..3,
        barrier in any::<bool>(),
    ) {
        let backend = mk_backend(backend_tag);
        let splits: Vec<Split> = records
            .chunks(per_split)
            .map(|c| Split::new(c.to_vec()))
            .collect();
        let plan = mk_plan(backend.clone(), reducers);

        let die_after = (die_after_tag > 0).then_some(die_after_tag);
        let registry = plan_registry(backend, reducers);
        let w1 = spawn_local(
            registry.clone(),
            WorkerOptions {
                map_slots: 1,
                die_after_maps: die_after,
            },
        )
        .unwrap();
        let w2 = spawn_local(registry, WorkerOptions::default()).unwrap();

        let cfg = EngineConfig::builder()
            .transport(Transport::Tcp {
                workers: vec![w1.addr().to_string(), w2.addr().to_string()],
            })
            .build();
        let mode = if barrier {
            PlanMode::Barrier
        } else {
            PlanMode::Pipelined
        };
        let mut pc = PlanConfig::new(mode);
        pc.records_per_split = records_per_split;
        let report = Engine::with_config(cfg)
            .run_plan(&plan, splits, &pc)
            .unwrap();
        w1.shutdown();
        w2.shutdown();

        prop_assert_eq!(
            report.sorted_final_outputs(),
            reference(&records),
            "tcp plan output diverged from reference ({}, backend {}, die_after {:?})",
            mode.label(),
            backend_tag,
            die_after
        );
    }
}
