//! Property test: under any record order and window configuration, every
//! record lands in exactly one window or is counted as dropped-late —
//! never lost, never duplicated.

use std::collections::BTreeMap;
use std::sync::Arc;

use onepass_groupby::{CountAgg, EmitKind};
use onepass_runtime::window::{WindowConfig, WindowedSession};
use onepass_runtime::{JobSpec, MapEmitter, ReduceBackend};
use proptest::prelude::*;

fn ts_of(record: &[u8]) -> Option<u64> {
    let s = std::str::from_utf8(record).ok()?;
    s.split(':').next()?.parse().ok()
}

fn key_map(record: &[u8], out: &mut dyn MapEmitter) {
    if let Some(pos) = record.iter().position(|&b| b == b':') {
        out.emit(&record[pos + 1..], &[]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn records_window_exactly_once_or_drop_late(
        // (timestamp, key id) events in arbitrary order.
        events in prop::collection::vec((0u64..500, 0u8..6), 1..300),
        window_len in 1u64..60,
        lateness in 0u64..30,
        batch in 1usize..40,
    ) {
        let job = JobSpec::builder("w")
            .map_fn(Arc::new(key_map))
            .aggregate(Arc::new(CountAgg))
            .reducers(2)
            .backend(ReduceBackend::IncHash { early: None })
            .build()
            .unwrap();
        let mut session = WindowedSession::new(
            job,
            Arc::new(ts_of),
            WindowConfig { window_len, allowed_lateness: lateness },
        )
        .unwrap();

        let records: Vec<Vec<u8>> = events
            .iter()
            .map(|(ts, k)| format!("{ts}:k{k}").into_bytes())
            .collect();

        let mut per_window: BTreeMap<u64, u64> = BTreeMap::new();
        let mut seen_windows = std::collections::BTreeSet::new();
        for chunk in records.chunks(batch) {
            for w in session.feed(chunk.iter().map(|r| r.as_slice())).unwrap() {
                prop_assert!(
                    seen_windows.insert(w.start),
                    "window {} closed twice", w.start
                );
                let n: u64 = w
                    .answers
                    .iter()
                    .filter(|a| a.kind == EmitKind::Final)
                    .map(|a| u64::from_le_bytes(a.value.as_slice().try_into().unwrap()))
                    .sum();
                *per_window.entry(w.start).or_default() += n;
            }
        }
        let late = session.late_dropped();
        prop_assert_eq!(session.malformed(), 0);
        for w in session.flush().unwrap() {
            prop_assert!(seen_windows.insert(w.start), "window closed twice at flush");
            let n: u64 = w
                .answers
                .iter()
                .filter(|a| a.kind == EmitKind::Final)
                .map(|a| u64::from_le_bytes(a.value.as_slice().try_into().unwrap()))
                .sum();
            *per_window.entry(w.start).or_default() += n;
        }
        let windowed: u64 = per_window.values().sum();
        prop_assert_eq!(
            windowed + late,
            events.len() as u64,
            "every record must be windowed once or counted late"
        );
    }
}
