//! Equivalence property: jobs shuffled over the arena-backed
//! [`SegmentBuf`] path produce output whose unordered fingerprint is
//! byte-identical to the reference computation — across all four reduce
//! backends, both spill backends, both hash families, in-node combining
//! on and off (with map-side hash combine engaged so the worker combine
//! table actually runs), and with a seeded fault plan forcing a map and
//! a reduce retry mid-run. A single flipped, dropped, or duplicated byte
//! anywhere on the record path (arena framing, shuffle, spill, merge,
//! worker combine-table replay) changes the fingerprint.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use onepass_core::KvBuf;
use onepass_groupby::{EmitKind, SumAgg};
use onepass_runtime::prelude::*;
use proptest::prelude::*;

fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
    for w in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
        out.emit(w, &1u64.to_le_bytes());
    }
}

/// Random "documents" over a tiny alphabet so keys collide heavily.
fn docs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(0u8..12, 0..12).prop_map(|words| {
            words
                .iter()
                .map(|w| format!("w{w}"))
                .collect::<Vec<_>>()
                .join(" ")
                .into_bytes()
        }),
        1..40,
    )
}

fn mk_backend(tag: u8) -> ReduceBackend {
    match tag {
        0 => ReduceBackend::SortMerge {
            merge_factor: 3,
            snapshots: vec![],
        },
        1 => ReduceBackend::HybridHash { fanout: 4 },
        2 => ReduceBackend::IncHash { early: None },
        _ => ReduceBackend::FreqHash(Default::default()),
    }
}

fn reference(records: &[Vec<u8>]) -> BTreeMap<Vec<u8>, u64> {
    let mut t: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for r in records {
        for w in r.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            *t.entry(w.to_vec()).or_default() += 1;
        }
    }
    t
}

/// Order-insensitive fingerprint over `(key, value)` pairs, via the same
/// [`KvBuf`] mixing the engine's buffers use.
fn fingerprint<'a>(pairs: impl IntoIterator<Item = (&'a [u8], &'a [u8])>) -> u64 {
    let mut buf = KvBuf::new();
    for (k, v) in pairs {
        buf.push(0, k, v);
    }
    buf.unordered_fingerprint()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn segment_shuffle_fingerprint_matches_reference(
        records in docs(),
        backend_tag in 0u8..4,
        temp_files in any::<bool>(),
        fault_seed in any::<u64>(),
        reducers in 1usize..4,
        per_split in 1usize..10,
        // 0 = static; 1..=4 index the pluggable spill policies, exercising
        // governor rebalancing + shedding under the same fingerprint check.
        policy_tag in 0u8..5,
        // Map-side hash combine (the in-node-eligible configuration) vs
        // the sort-spill default, crossed with in-node on/off and both
        // hash families: answers must not move.
        hash_combine_map in any::<bool>(),
        innode_off in any::<bool>(),
        tabulation in any::<bool>(),
    ) {
        let mut builder = JobSpec::builder("seg-eq")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(reducers)
            .backend(mk_backend(backend_tag))
            .reduce_budget_bytes(2048); // small: force spills through the arena path
        if hash_combine_map {
            // Small push granularity: many flush points per task, so the
            // worker combine table absorbs multiple partial deltas.
            builder = builder
                .map_side(MapSideMode::HashCombine)
                .shuffle(ShuffleMode::Push { granularity: 512 });
        }
        let job = builder.build().unwrap();

        let splits: Vec<Split> = records
            .chunks(per_split)
            .map(|c| Split::new(c.to_vec()))
            .collect();
        let spill = if temp_files {
            SpillBackend::TempFiles
        } else {
            SpillBackend::Memory
        };
        // One seeded map kill + one seeded reduce kill mid-run: the replay
        // path (retained SegmentBuf clones) must reproduce the same bytes.
        let memory_policy = match policy_tag {
            0 => MemoryPolicy::Static,
            1 => MemoryPolicy::Adaptive {
                policy: policy_by_name("largest-consumer").unwrap(),
                high_water: 0.85,
            },
            2 => MemoryPolicy::Adaptive {
                policy: policy_by_name("largest-bucket").unwrap(),
                high_water: 0.75,
            },
            3 => MemoryPolicy::Adaptive {
                policy: policy_by_name("coldest-keys").unwrap(),
                high_water: 0.85,
            },
            _ => MemoryPolicy::Adaptive {
                policy: policy_by_name("round-robin").unwrap(),
                high_water: 0.5,
            },
        };
        let cfg = EngineConfig::builder()
            .spill(spill)
            .retry(RetryPolicy {
                max_attempts: 3,
                backoff: Duration::ZERO,
            })
            .faults(FaultPlan::seeded(fault_seed, splits.len(), reducers))
            .memory_policy(memory_policy)
            .hash_family(if tabulation {
                HashFamily::Tabulation
            } else {
                HashFamily::MultiplyShift
            })
            .in_node_combine(if innode_off {
                InNodeCombine::Off
            } else {
                InNodeCombine::On
            })
            .build();
        let report = Engine::with_config(cfg).run(&job, splits).unwrap();

        let got = fingerprint(
            report
                .outputs
                .iter()
                .filter(|o| o.kind == EmitKind::Final)
                .map(|o| (o.key.as_slice(), o.value.as_slice())),
        );
        let expect_map = reference(&records);
        let expect_enc: Vec<(Vec<u8>, [u8; 8])> = expect_map
            .into_iter()
            .map(|(k, c)| (k, c.to_le_bytes()))
            .collect();
        let expect = fingerprint(expect_enc.iter().map(|(k, v)| (k.as_slice(), &v[..])));
        prop_assert_eq!(got, expect, "fingerprint mismatch: backend {}", backend_tag);
    }
}
