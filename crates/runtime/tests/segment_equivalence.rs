//! Equivalence property: jobs shuffled over the arena-backed
//! [`SegmentBuf`] path produce output whose unordered fingerprint is
//! byte-identical to the reference computation — across all four reduce
//! backends, both spill backends, both hash families, in-node combining
//! on and off (with map-side hash combine engaged so the worker combine
//! table actually runs), and with a seeded fault plan forcing a map and
//! a reduce retry mid-run. A single flipped, dropped, or duplicated byte
//! anywhere on the record path (arena framing, shuffle, spill, merge,
//! worker combine-table replay) changes the fingerprint.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use onepass_core::KvBuf;
use onepass_groupby::{EmitKind, SumAgg};
use onepass_runtime::prelude::*;
use onepass_runtime::transport::worker::spawn_local;
use proptest::prelude::*;

fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
    for w in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
        out.emit(w, &1u64.to_le_bytes());
    }
}

/// Random "documents" over a tiny alphabet so keys collide heavily.
fn docs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(0u8..12, 0..12).prop_map(|words| {
            words
                .iter()
                .map(|w| format!("w{w}"))
                .collect::<Vec<_>>()
                .join(" ")
                .into_bytes()
        }),
        1..40,
    )
}

fn mk_backend(tag: u8) -> ReduceBackend {
    match tag {
        0 => ReduceBackend::SortMerge {
            merge_factor: 3,
            snapshots: vec![],
        },
        1 => ReduceBackend::HybridHash { fanout: 4 },
        2 => ReduceBackend::IncHash { early: None },
        _ => ReduceBackend::FreqHash(Default::default()),
    }
}

fn reference(records: &[Vec<u8>]) -> BTreeMap<Vec<u8>, u64> {
    let mut t: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for r in records {
        for w in r.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            *t.entry(w.to_vec()).or_default() += 1;
        }
    }
    t
}

/// Order-insensitive fingerprint over `(key, value)` pairs, via the same
/// [`KvBuf`] mixing the engine's buffers use.
fn fingerprint<'a>(pairs: impl IntoIterator<Item = (&'a [u8], &'a [u8])>) -> u64 {
    let mut buf = KvBuf::new();
    for (k, v) in pairs {
        buf.push(0, k, v);
    }
    buf.unordered_fingerprint()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn segment_shuffle_fingerprint_matches_reference(
        records in docs(),
        backend_tag in 0u8..4,
        temp_files in any::<bool>(),
        fault_seed in any::<u64>(),
        reducers in 1usize..4,
        per_split in 1usize..10,
        // 0 = static; 1..=4 index the pluggable spill policies, exercising
        // governor rebalancing + shedding under the same fingerprint check.
        policy_tag in 0u8..5,
        // Map-side hash combine (the in-node-eligible configuration) vs
        // the sort-spill default, crossed with in-node on/off and both
        // hash families: answers must not move.
        hash_combine_map in any::<bool>(),
        innode_off in any::<bool>(),
        tabulation in any::<bool>(),
    ) {
        let mut builder = JobSpec::builder("seg-eq")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(reducers)
            .backend(mk_backend(backend_tag))
            .reduce_budget_bytes(2048); // small: force spills through the arena path
        if hash_combine_map {
            // Small push granularity: many flush points per task, so the
            // worker combine table absorbs multiple partial deltas.
            builder = builder
                .map_side(MapSideMode::HashCombine)
                .shuffle(ShuffleMode::Push { granularity: 512 });
        }
        let job = builder.build().unwrap();

        let splits: Vec<Split> = records
            .chunks(per_split)
            .map(|c| Split::new(c.to_vec()))
            .collect();
        let spill = if temp_files {
            SpillBackend::TempFiles
        } else {
            SpillBackend::Memory
        };
        // One seeded map kill + one seeded reduce kill mid-run: the replay
        // path (retained SegmentBuf clones) must reproduce the same bytes.
        let memory_policy = match policy_tag {
            0 => MemoryPolicy::Static,
            1 => MemoryPolicy::Adaptive {
                policy: policy_by_name("largest-consumer").unwrap(),
                high_water: 0.85,
            },
            2 => MemoryPolicy::Adaptive {
                policy: policy_by_name("largest-bucket").unwrap(),
                high_water: 0.75,
            },
            3 => MemoryPolicy::Adaptive {
                policy: policy_by_name("coldest-keys").unwrap(),
                high_water: 0.85,
            },
            _ => MemoryPolicy::Adaptive {
                policy: policy_by_name("round-robin").unwrap(),
                high_water: 0.5,
            },
        };
        let cfg = EngineConfig::builder()
            .spill(spill)
            .retry(RetryPolicy {
                max_attempts: 3,
                backoff: Duration::ZERO,
            })
            .faults(FaultPlan::seeded(fault_seed, splits.len(), reducers))
            .memory_policy(memory_policy)
            .hash_family(if tabulation {
                HashFamily::Tabulation
            } else {
                HashFamily::MultiplyShift
            })
            .in_node_combine(if innode_off {
                InNodeCombine::Off
            } else {
                InNodeCombine::On
            })
            .build();
        let report = Engine::with_config(cfg).run(&job, splits).unwrap();

        let got = fingerprint(
            report
                .outputs
                .iter()
                .filter(|o| o.kind == EmitKind::Final)
                .map(|o| (o.key.as_slice(), o.value.as_slice())),
        );
        let expect_map = reference(&records);
        let expect_enc: Vec<(Vec<u8>, [u8; 8])> = expect_map
            .into_iter()
            .map(|(k, c)| (k, c.to_le_bytes()))
            .collect();
        let expect = fingerprint(expect_enc.iter().map(|(k, v)| (k.as_slice(), &v[..])));
        prop_assert_eq!(got, expect, "fingerprint mismatch: backend {}", backend_tag);
    }
}

/// Final `(key -> value)` outputs of a report, for byte-level comparison.
fn final_outputs(report: &JobReport) -> BTreeMap<Vec<u8>, Vec<u8>> {
    report
        .outputs
        .iter()
        .filter(|o| o.kind == EmitKind::Final)
        .map(|o| (o.key.clone(), o.value.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Transport equivalence: the same job run over the TCP loopback
    /// fabric — including with a worker seeded to sever its connection
    /// mid-job (the moral equivalent of `kill -9`) — produces output
    /// byte-identical to the in-proc run, across all four reduce
    /// backends, the three map-side modes, both spill backends and both
    /// hash families.
    #[test]
    fn tcp_loopback_matches_inproc(
        records in docs(),
        backend_tag in 0u8..4,
        temp_files in any::<bool>(),
        reducers in 1usize..4,
        per_split in 1usize..10,
        // 0 = both workers healthy; n > 0 = the first worker dies after
        // n completed maps, forcing map replay and (for partitions it
        // hosted) reduce-side log replay onto the survivor.
        die_after_tag in 0u64..3,
        mapside_tag in 0u8..3,
        tabulation in any::<bool>(),
    ) {
        let mut builder = JobSpec::builder("seg-eq-tcp")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(reducers)
            .backend(mk_backend(backend_tag))
            .reduce_budget_bytes(2048);
        builder = match mapside_tag {
            0 => builder, // SortSpill + Pull defaults
            1 => builder
                .map_side(MapSideMode::HashPartitionOnly)
                .shuffle(ShuffleMode::Push { granularity: 64 }),
            _ => builder
                .map_side(MapSideMode::HashCombine)
                .shuffle(ShuffleMode::Push { granularity: 512 }),
        };
        let job = builder.build().unwrap();
        let family = if tabulation {
            HashFamily::Tabulation
        } else {
            HashFamily::MultiplyShift
        };
        let spill = if temp_files {
            SpillBackend::TempFiles
        } else {
            SpillBackend::Memory
        };
        let mk_splits = || -> Vec<Split> {
            records
                .chunks(per_split)
                .map(|c| Split::new(c.to_vec()))
                .collect()
        };

        let base_cfg = EngineConfig::builder()
            .spill(spill)
            .hash_family(family)
            .in_node_combine(InNodeCombine::Off)
            .build();
        let base = Engine::with_config(base_cfg).run(&job, mk_splits()).unwrap();

        let die_after = (die_after_tag > 0).then_some(die_after_tag);
        let registry = JobRegistry::new();
        registry.register_spec(job.clone());
        let w1 = spawn_local(
            registry.clone(),
            WorkerOptions {
                map_slots: 1,
                die_after_maps: die_after,
            },
        )
        .unwrap();
        let w2 = spawn_local(registry, WorkerOptions::default()).unwrap();
        let tcp_cfg = EngineConfig::builder()
            .spill(spill)
            .hash_family(family)
            .transport(Transport::Tcp {
                workers: vec![w1.addr().to_string(), w2.addr().to_string()],
            })
            .build();
        let dist = Engine::with_config(tcp_cfg).run(&job, mk_splits()).unwrap();
        w1.shutdown();
        w2.shutdown();

        prop_assert_eq!(
            final_outputs(&base),
            final_outputs(&dist),
            "tcp output diverged from in-proc (backend {}, mapside {}, die_after {:?})",
            backend_tag,
            mapside_tag,
            die_after
        );

        // Both must also equal the pure-Rust reference, not just each other.
        let expect: BTreeMap<Vec<u8>, Vec<u8>> = reference(&records)
            .into_iter()
            .map(|(k, c)| (k, c.to_le_bytes().to_vec()))
            .collect();
        prop_assert_eq!(final_outputs(&dist), expect, "tcp output diverged from reference");
    }
}
