//! Property tests at the engine level: for random inputs and random
//! engine configurations, final output always equals the reference
//! computation — the MapReduce contract survives every combination of
//! map-side mode, shuffle mode, backend, split size and memory budget.

use std::collections::BTreeMap;
use std::sync::Arc;

use onepass_groupby::{EmitKind, SumAgg};
use onepass_runtime::map_task::Split;
use onepass_runtime::{
    Combine, Engine, JobSpec, MapEmitter, MapSideMode, ReduceBackend, ShuffleMode,
};
use proptest::prelude::*;

fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
    for w in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
        out.emit(w, &1u64.to_le_bytes());
    }
}

/// Random "documents" over a tiny alphabet so keys collide heavily.
fn docs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(0u8..12, 0..12).prop_map(|words| {
            words
                .iter()
                .map(|w| format!("w{w}"))
                .collect::<Vec<_>>()
                .join(" ")
                .into_bytes()
        }),
        0..60,
    )
}

fn backend_strategy() -> impl Strategy<Value = u8> {
    0u8..4
}

fn mk_backend(tag: u8) -> ReduceBackend {
    match tag {
        0 => ReduceBackend::SortMerge {
            merge_factor: 3,
            snapshots: vec![],
        },
        1 => ReduceBackend::HybridHash { fanout: 4 },
        2 => ReduceBackend::IncHash { early: None },
        _ => ReduceBackend::FreqHash(Default::default()),
    }
}

fn reference(records: &[Vec<u8>]) -> BTreeMap<Vec<u8>, u64> {
    let mut t: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for r in records {
        for w in r.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            *t.entry(w.to_vec()).or_default() += 1;
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_reference_under_any_configuration(
        records in docs(),
        backend_tag in backend_strategy(),
        map_side_tag in 0u8..3,
        push in any::<bool>(),
        granularity in 1usize..64,
        reducers in 1usize..5,
        per_split in 1usize..20,
        budget_kb in 1usize..64,
        combine in any::<bool>(),
    ) {
        let map_side = match map_side_tag {
            0 => MapSideMode::SortSpill,
            1 => MapSideMode::HashPartitionOnly,
            _ => MapSideMode::HashCombine,
        };
        // HashCombine requires combine to be on.
        let combine = combine || map_side == MapSideMode::HashCombine;
        let shuffle = if push {
            ShuffleMode::Push { granularity }
        } else {
            ShuffleMode::Pull
        };
        let job = JobSpec::builder("prop-wc")
            .map_fn(Arc::new(word_map))
            .aggregate(Arc::new(SumAgg))
            .reducers(reducers)
            .map_side(map_side)
            .shuffle(shuffle)
            .backend(mk_backend(backend_tag))
            .combine_mode(if combine { Combine::On } else { Combine::Off })
            .reduce_budget_bytes(budget_kb * 1024)
            .build()
            .unwrap();

        let splits: Vec<Split> = records
            .chunks(per_split)
            .map(|c| Split::new(c.to_vec()))
            .collect();
        let report = Engine::new().run(&job, splits).unwrap();

        let got: BTreeMap<Vec<u8>, u64> = report
            .outputs
            .iter()
            .filter(|o| o.kind == EmitKind::Final)
            .map(|o| {
                (
                    o.key.clone(),
                    u64::from_le_bytes(o.value.as_slice().try_into().unwrap()),
                )
            })
            .collect();
        let expect = reference(&records);
        prop_assert_eq!(got, expect);
        // No duplicate finals (one per key).
        prop_assert_eq!(
            report.groups_out as usize,
            report
                .outputs
                .iter()
                .filter(|o| o.kind == EmitKind::Final)
                .count()
        );
    }
}
