//! Distributed-mode integration tests: the same job must produce
//! byte-identical output (and identical transport-agnostic shuffle
//! accounting) whether it runs on the in-proc fabric or on TCP worker
//! processes — including when a worker is killed mid-job.

use std::collections::BTreeMap;
use std::sync::Arc;

use onepass_groupby::{EmitKind, SumAgg};
use onepass_runtime::prelude::*;
use onepass_runtime::transport::worker::spawn_local;

fn word_map(record: &[u8], out: &mut dyn MapEmitter) {
    for w in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
        out.emit(w, &1u64.to_le_bytes());
    }
}

fn splits() -> Vec<Split> {
    (0..6)
        .map(|s| {
            Split::new(
                (0..150)
                    .map(|i| format!("w{} w{} common", (s * 7 + i) % 23, i % 11).into_bytes())
                    .collect(),
            )
        })
        .collect()
}

/// Hash-partition-only map side with combining off: every emitted record
/// shuffles, so the volume accounting is exactly comparable between
/// transports.
fn wc_job() -> JobSpec {
    JobSpec::builder("wc-transport")
        .map_fn(Arc::new(word_map))
        .aggregate(Arc::new(SumAgg))
        .reducers(3)
        .map_side(MapSideMode::HashPartitionOnly)
        .shuffle(ShuffleMode::Push { granularity: 64 })
        .combine_mode(Combine::Off)
        .backend(ReduceBackend::HybridHash { fanout: 8 })
        .build()
        .unwrap()
}

fn registry() -> JobRegistry {
    let r = JobRegistry::new();
    r.register_spec(wc_job());
    r
}

fn finals(report: &JobReport) -> BTreeMap<Vec<u8>, Vec<u8>> {
    report
        .outputs
        .iter()
        .filter(|o| o.kind == EmitKind::Final)
        .map(|o| (o.key.clone(), o.value.clone()))
        .collect()
}

fn run_inproc() -> JobReport {
    Engine::with_config(
        EngineConfig::builder()
            .in_node_combine(InNodeCombine::Off)
            .build(),
    )
    .run(&wc_job(), splits())
    .unwrap()
}

fn run_tcp(workers: &[&str]) -> JobReport {
    let cfg = EngineConfig::builder()
        .transport(Transport::Tcp {
            workers: workers.iter().map(|s| s.to_string()).collect(),
        })
        .build();
    Engine::with_config(cfg).run(&wc_job(), splits()).unwrap()
}

#[test]
fn tcp_two_workers_matches_inproc_byte_for_byte() {
    let base = run_inproc();
    let w1 = spawn_local(registry(), WorkerOptions::default()).unwrap();
    let w2 = spawn_local(registry(), WorkerOptions::default()).unwrap();
    let dist = run_tcp(&[w1.addr(), w2.addr()]);
    assert_eq!(finals(&base), finals(&dist), "distributed output differs");
    assert_eq!(dist.map_tasks, base.map_tasks);
    assert_eq!(dist.reduce_tasks, base.reduce_tasks);
    w1.shutdown();
    w2.shutdown();
}

/// Satellite: `shuffled_records`/`shuffled_bytes` are counted at the
/// fabric, above the transport — the same job shuffles the same counted
/// volume on both transports.
#[test]
fn shuffle_accounting_is_transport_agnostic() {
    let base = run_inproc();
    let w1 = spawn_local(registry(), WorkerOptions::default()).unwrap();
    let w2 = spawn_local(registry(), WorkerOptions::default()).unwrap();
    let dist = run_tcp(&[w1.addr(), w2.addr()]);
    assert_eq!(
        dist.shuffled_records, base.shuffled_records,
        "shuffled record accounting differs between transports"
    );
    assert_eq!(
        dist.shuffled_bytes, base.shuffled_bytes,
        "shuffled byte accounting differs between transports"
    );
    w1.shutdown();
    w2.shutdown();
}

/// Kill one worker after its first completed map (the moral equivalent of
/// `kill -9` mid-job): the survivor absorbs replayed map attempts and
/// reduce partitions, and the output stays byte-identical.
#[test]
fn worker_killed_mid_job_is_byte_identical() {
    let base = run_inproc();
    let dying = spawn_local(
        registry(),
        WorkerOptions {
            map_slots: 1,
            die_after_maps: Some(1),
        },
    )
    .unwrap();
    let survivor = spawn_local(registry(), WorkerOptions::default()).unwrap();
    let dist = run_tcp(&[dying.addr(), survivor.addr()]);
    assert_eq!(
        finals(&base),
        finals(&dist),
        "output diverged after worker loss"
    );
    survivor.shutdown();
    dying.shutdown();
}

#[test]
fn unregistered_job_is_rejected_with_config_error() {
    let w = spawn_local(JobRegistry::new(), WorkerOptions::default()).unwrap();
    let cfg = EngineConfig::builder()
        .transport(Transport::Tcp {
            workers: vec![w.addr().to_string()],
        })
        .build();
    let err = Engine::with_config(cfg)
        .run(&wc_job(), splits())
        .unwrap_err();
    assert!(
        err.to_string().contains("not registered"),
        "expected a job-rejection error, got: {err}"
    );
    w.shutdown();
}

#[test]
fn empty_worker_list_is_a_config_error() {
    let cfg = EngineConfig::builder()
        .transport(Transport::Tcp { workers: vec![] })
        .build();
    let err = Engine::with_config(cfg)
        .run(&wc_job(), splits())
        .unwrap_err();
    assert!(err.to_string().contains("worker address"), "got: {err}");
}
