//! # onepass-bench
//!
//! Experiment drivers and Criterion benchmarks that regenerate every
//! table and figure of the paper. One binary per artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `exp_table1` | Table I — workloads, volumes, task counts, completion times |
//! | `exp_table2` | Table II — map-phase CPU split (map fn vs sort) |
//! | `exp_fig2` | Fig. 2(a)–(f) — sessionization timelines & utilization |
//! | `exp_fig3` | Fig. 3 — inverted-index task timeline |
//! | `exp_fig4` | Fig. 4 — MapReduce Online utilization & iowait |
//! | `exp_table3` | Table III — capability comparison matrix |
//! | `exp_section5` | §V — hash vs Hadoop: CPU, runtime, spill I/O |
//! | `exp_parsing` | §III-B.1 — text vs binary input parsing cost |
//! | `exp_mapwrite` | §III-B.2 — map-output write share of task time |
//!
//! Every binary prints the paper-reported values next to the measured
//! ones and writes CSVs under `results/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fs;
use std::path::PathBuf;

use onepass_core::metrics::Series;

/// Directory experiment CSVs are written to (`results/` under the CWD).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Save `content` as `results/<name>`; prints the path. Errors are
/// reported but do not abort the experiment (the console output stands).
pub fn save(name: &str, content: &str) {
    let path = results_dir().join(name);
    match fs::write(&path, content) {
        Ok(()) => println!("  [saved {}]", path.display()),
        Err(e) => eprintln!("  [could not save {}: {e}]", path.display()),
    }
}

/// Parse `--name value` from argv; falls back to env `ONEPASS_<NAME>`.
pub fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == format!("--{name}") {
            return args.get(i + 1).cloned();
        }
    }
    std::env::var(format!("ONEPASS_{}", name.to_uppercase().replace('-', "_"))).ok()
}

/// Append JSONL job-report lines to the file named by `--report-jsonl`
/// (or `ONEPASS_REPORT_JSONL`); a no-op when the flag is absent. Lets
/// experiment binaries emit machine-readable reports alongside their
/// console tables when `run_all_experiments.sh` forwards the flag —
/// appending, so one file collects every job of a whole sweep.
pub fn append_report_jsonl(jsonl: &str) {
    let Some(path) = arg("report-jsonl") else {
        return;
    };
    use std::io::Write;
    match fs::OpenOptions::new().create(true).append(true).open(&path) {
        Ok(mut f) => {
            if f.write_all(jsonl.as_bytes()).is_ok() {
                println!("  [appended report to {path}]");
            }
        }
        Err(e) => eprintln!("  [could not append to {path}: {e}]"),
    }
}

/// Parse a numeric flag with a default.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    arg(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Parse an integer flag with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    arg(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Render a series as a fixed-width ASCII chart (the experiment binaries'
/// stand-in for the paper's plots). Downsamples x into `width` columns by
/// averaging, scales y to `height` rows.
pub fn ascii_chart(series: &Series, width: usize, height: usize) -> String {
    if series.is_empty() || width == 0 || height == 0 {
        return String::from("(empty series)\n");
    }
    let n = series.points.len();
    let cols = width.min(n).max(1);
    let per_col = (n as f64 / cols as f64).max(1.0);
    let col_vals: Vec<f64> = (0..cols)
        .map(|c| {
            let lo = (c as f64 * per_col) as usize;
            let hi = (((c + 1) as f64 * per_col) as usize).min(n).max(lo + 1);
            series.points[lo..hi].iter().map(|&(_, y)| y).sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let max = col_vals.iter().cloned().fold(0.0_f64, f64::max).max(1e-9);
    let mut out = String::new();
    for row in (1..=height).rev() {
        let threshold = max * (row as f64 - 0.5) / height as f64;
        let label = if row == height {
            format!("{max:8.1} |")
        } else {
            String::from("         |")
        };
        out.push_str(&label);
        for &v in &col_vals {
            out.push(if v >= threshold { '#' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str("         +");
    out.push_str(&"-".repeat(cols));
    out.push('\n');
    let x_max = series.points.last().map(|&(x, _)| x).unwrap_or(0.0);
    out.push_str(&format!(
        "          0{:>width$.0}  ({})\n",
        x_max,
        series.name,
        width = cols.saturating_sub(1)
    ));
    out
}

/// Format a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Line colors for multi-series SVG charts.
const SVG_COLORS: &[&str] = &[
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b",
];

/// Render one or more series as a standalone SVG line chart — the
/// publication-style counterpart of [`ascii_chart`] (both are emitted by
/// the figure drivers; the SVGs land in `results/`).
pub fn svg_chart(title: &str, y_label: &str, series: &[&Series], w: u32, h: u32) -> String {
    let (ml, mr, mt, mb) = (56.0, 16.0, 28.0, 40.0);
    let pw = w as f64 - ml - mr;
    let ph = h as f64 - mt - mb;
    let x_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .fold(1e-9_f64, f64::max);
    let y_max = series
        .iter()
        .filter_map(|s| s.max_y())
        .fold(1e-9_f64, f64::max);

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\" font-size=\"11\">\n\
         <rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n\
         <text x=\"{}\" y=\"18\" text-anchor=\"middle\" font-size=\"13\">{}</text>\n",
        w as f64 / 2.0,
        xml_escape(title)
    ));
    // Axes.
    svg.push_str(&format!(
        "<line x1=\"{ml}\" y1=\"{mt}\" x2=\"{ml}\" y2=\"{}\" stroke=\"black\"/>\n\
         <line x1=\"{ml}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"black\"/>\n",
        mt + ph,
        ml + pw
    ));
    // Axis labels and ticks.
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let y = mt + ph * (1.0 - frac);
        svg.push_str(&format!(
            "<text x=\"{}\" y=\"{:.1}\" text-anchor=\"end\">{:.0}</text>\n",
            ml - 6.0,
            y + 4.0,
            y_max * frac
        ));
        let x = ml + pw * frac;
        svg.push_str(&format!(
            "<text x=\"{x:.1}\" y=\"{}\" text-anchor=\"middle\">{:.0}</text>\n",
            mt + ph + 16.0,
            x_max * frac
        ));
    }
    svg.push_str(&format!(
        "<text x=\"14\" y=\"{:.1}\" transform=\"rotate(-90 14 {0:.1})\" \
         text-anchor=\"middle\">{}</text>\n\
         <text x=\"{:.1}\" y=\"{}\" text-anchor=\"middle\">seconds</text>\n",
        mt + ph / 2.0,
        xml_escape(y_label),
        ml + pw / 2.0,
        h as f64 - 8.0
    ));
    // Series polylines + legend.
    for (i, s) in series.iter().enumerate() {
        if s.is_empty() {
            continue;
        }
        let color = SVG_COLORS[i % SVG_COLORS.len()];
        let mut points = String::new();
        for &(x, y) in &s.points {
            let px = ml + pw * (x / x_max);
            let py = mt + ph * (1.0 - (y / y_max).min(1.0));
            points.push_str(&format!("{px:.1},{py:.1} "));
        }
        svg.push_str(&format!(
            "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.2\" points=\"{}\"/>\n",
            points.trim_end()
        ));
        let lx = ml + 10.0 + (i as f64) * 130.0;
        svg.push_str(&format!(
            "<line x1=\"{lx}\" y1=\"{mt}\" x2=\"{}\" y2=\"{mt}\" stroke=\"{color}\" stroke-width=\"3\"/>\n\
             <text x=\"{}\" y=\"{}\">{}</text>\n",
            lx + 18.0,
            lx + 22.0,
            mt + 4.0,
            xml_escape(&s.name)
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_chart_renders_peaks() {
        let mut s = Series::new("demo");
        for i in 0..100 {
            s.push(i as f64, if i > 40 && i < 60 { 10.0 } else { 1.0 });
        }
        let chart = ascii_chart(&s, 50, 5);
        assert!(chart.contains('#'));
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 7);
        // The top row only covers the peak columns.
        let top_hashes = lines[0].matches('#').count();
        let bottom_hashes = lines[4].matches('#').count();
        assert!(top_hashes < bottom_hashes);
    }

    #[test]
    fn ascii_chart_handles_empty() {
        let s = Series::new("empty");
        assert!(ascii_chart(&s, 10, 3).contains("empty series"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.385), "38.5%");
    }

    #[test]
    fn svg_chart_is_wellformed() {
        let mut a = Series::new("cpu");
        let mut b = Series::new("iowait");
        for i in 0..50 {
            a.push(i as f64, (i % 10) as f64 * 10.0);
            b.push(i as f64, 100.0 - (i % 10) as f64 * 10.0);
        }
        let svg = svg_chart("demo <title>", "percent", &[&a, &b], 640, 300);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("demo &lt;title&gt;"));
        // Balanced tags for the simple subset used.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn svg_chart_empty_series_skipped() {
        let empty = Series::new("none");
        let svg = svg_chart("t", "y", &[&empty], 300, 200);
        assert_eq!(svg.matches("<polyline").count(), 0);
    }
}
