//! Fig. 3 — task timeline for inverted-index construction.
//!
//! "As shown in Fig. 3, the blocking merge phase is present in this
//! workload as well. Progress is stopped until local intermediate data is
//! merged on each node."

use onepass_bench::{arg_f64, ascii_chart, save, svg_chart};
use onepass_core::metrics::series_to_csv;
use onepass_simcluster::{
    run_sim_job, ClusterSpec, SimJobSpec, StorageConfig, SystemType, WorkloadProfile,
};

fn main() {
    let scale = arg_f64("scale", 1.0);
    println!("== Fig. 3: inverted-index task timeline (scale {scale}) ==\n");

    let r = run_sim_job(SimJobSpec::new(
        SystemType::StockHadoop,
        ClusterSpec::paper_cluster(StorageConfig::SingleHdd),
        WorkloadProfile::inverted_index().scaled(scale),
    ));
    onepass_bench::append_report_jsonl(&r.to_jsonl());
    println!(
        "Completion: {:.0} min (paper: 118 min); reduce spill {:.0} GB (paper: 150 GB)\n",
        r.completion_secs / 60.0,
        r.reduce_spill_total_mb() / 1024.0
    );

    for s in [
        &r.series.map_tasks,
        &r.series.shuffle_tasks,
        &r.series.merge_tasks,
        &r.series.reduce_tasks,
    ] {
        println!("{}", ascii_chart(s, 90, 6));
    }

    let merge_peak = r.series.merge_tasks.max_y().unwrap_or(0.0);
    println!(
        "Blocking-merge check: merge activity peaks at {merge_peak:.0} concurrent \
         merges; CPU in the merge window {:.0}% vs {:.0}% in the map phase.",
        r.mean_cpu_util(0.45, 0.62),
        r.mean_cpu_util(0.05, 0.35)
    );

    save(
        "fig3_timeline.svg",
        &svg_chart(
            "Fig 3 task timeline — inverted index, stock Hadoop",
            "running tasks",
            &[
                &r.series.map_tasks,
                &r.series.shuffle_tasks,
                &r.series.merge_tasks,
                &r.series.reduce_tasks,
            ],
            760,
            340,
        ),
    );
    save(
        "fig3_timeline.csv",
        &series_to_csv(&[
            r.series.map_tasks.clone(),
            r.series.shuffle_tasks.clone(),
            r.series.merge_tasks.clone(),
            r.series.reduce_tasks.clone(),
        ]),
    );
}
