//! Table I — workloads and their running time in the benchmark.
//!
//! Simulates all four workloads on the 10-node StockHadoop cluster at
//! full paper scale and prints each Table I row next to the paper's
//! reported value. Run with `--scale 0.1` for a quick pass (volumes and
//! task counts scale linearly; times roughly so).

use onepass_bench::{arg_f64, save};
use onepass_core::table::Table;
use onepass_simcluster::{
    run_sim_job, ClusterSpec, SimJobSpec, StorageConfig, SystemType, WorkloadProfile,
};

struct PaperRow {
    workload: &'static str,
    input_gb: f64,
    map_out_gb: f64,
    spill_gb: f64,
    inter_pct: f64,
    output_gb: f64,
    map_tasks: usize,
    completion_min: f64,
}

const PAPER: &[PaperRow] = &[
    PaperRow {
        workload: "sessionization",
        input_gb: 256.0,
        map_out_gb: 269.0,
        spill_gb: 370.0,
        inter_pct: 250.0,
        output_gb: 256.0,
        map_tasks: 3773,
        completion_min: 76.0,
    },
    PaperRow {
        workload: "page-frequency",
        input_gb: 508.0,
        map_out_gb: 1.8,
        spill_gb: 0.2,
        inter_pct: 0.4,
        output_gb: 0.02,
        map_tasks: 7580,
        completion_min: 40.0,
    },
    PaperRow {
        workload: "per-user-count",
        input_gb: 256.0,
        map_out_gb: 2.6,
        spill_gb: 1.4,
        inter_pct: 1.0,
        output_gb: 0.6,
        map_tasks: 3773,
        completion_min: 24.0,
    },
    PaperRow {
        workload: "inverted-index",
        input_gb: 427.0,
        map_out_gb: 150.0,
        spill_gb: 150.0,
        inter_pct: 70.0,
        output_gb: 103.0,
        map_tasks: 6803,
        completion_min: 118.0,
    },
];

fn main() {
    let scale = arg_f64("scale", 1.0);
    println!("== Table I: workloads and their running time (scale {scale}) ==\n");

    let mut table = Table::new(
        "Table I (simulated StockHadoop, 10 nodes | paper values in parentheses)",
        &[
            "workload",
            "input GB",
            "map-out GB",
            "spill GB",
            "inter/input",
            "output GB",
            "map tasks",
            "reducers",
            "completion",
        ],
    );
    let mut csv = String::from(
        "workload,input_gb,map_out_gb,spill_gb,inter_pct,output_gb,map_tasks,reducers,completion_min,paper_completion_min\n",
    );

    for paper in PAPER {
        let workload = match paper.workload {
            "sessionization" => WorkloadProfile::sessionization(),
            "page-frequency" => WorkloadProfile::page_frequency(),
            "per-user-count" => WorkloadProfile::per_user_count(),
            _ => WorkloadProfile::inverted_index(),
        }
        .scaled(scale);
        let spec = SimJobSpec::new(
            SystemType::StockHadoop,
            ClusterSpec::paper_cluster(StorageConfig::SingleHdd),
            workload,
        );
        let r = run_sim_job(spec);
        onepass_bench::append_report_jsonl(&r.to_jsonl());
        let gb = 1024.0;
        let min = r.completion_secs / 60.0;
        table.row(&[
            paper.workload.to_string(),
            format!("{:.0} ({:.0})", r.input_mb / gb, paper.input_gb * scale),
            format!(
                "{:.1} ({:.1})",
                r.map_output_mb / gb,
                paper.map_out_gb * scale
            ),
            format!(
                "{:.1} ({:.1})",
                r.reduce_spill_total_mb() / gb,
                paper.spill_gb * scale
            ),
            format!(
                "{:.0}% ({:.1}%)",
                r.intermediate_ratio() * 100.0,
                paper.inter_pct
            ),
            format!("{:.1} ({:.2})", r.output_mb / gb, paper.output_gb * scale),
            format!("{} ({:.0})", r.map_tasks, paper.map_tasks as f64 * scale),
            format!("{}", r.reduce_tasks),
            format!("{:.0} min ({:.0} min)", min, paper.completion_min * scale),
        ]);
        csv.push_str(&format!(
            "{},{:.1},{:.1},{:.1},{:.1},{:.2},{},{},{:.1},{:.1}\n",
            paper.workload,
            r.input_mb / gb,
            r.map_output_mb / gb,
            r.reduce_spill_total_mb() / gb,
            r.intermediate_ratio() * 100.0,
            r.output_mb / gb,
            r.map_tasks,
            r.reduce_tasks,
            min,
            paper.completion_min * scale,
        ));
    }

    println!("{}", table.to_text());
    println!(
        "Shape checks: per-user < page-freq < sessionization < inverted-index \
         ordering and the 250%/0.4%/1.0%/70% intermediate ratios."
    );
    save("table1.csv", &csv);
}
