//! Perf-regression gate: compare a freshly saved criterion baseline
//! against the committed `BENCH_BASELINE.json`.
//!
//! The vendored criterion harness appends one JSON line per benchmark
//! (`{"bench":..., "median_ns":..., "calibration_ns":...}`) when run with
//! `--save-baseline NAME`. `calibration_ns` is a deterministic spin loop
//! timed on the same machine as the medians, so this checker compares
//! *normalised* scores (`median / calibration`) and machine-speed
//! differences between the baseline author's box and the CI runner cancel
//! out to first order.
//!
//! Modes:
//!
//! * default (check): fail (exit 1) if any benchmark present in both
//!   files regressed by more than `--threshold` (default 0.15 = 15%), or
//!   if any `pipeline-*` group's `onepass` median does not beat its
//!   `hadoop` (sort-merge) median in the current run;
//! * `--refresh`: overwrite the committed baseline with the current file
//!   (used by `scripts/refresh_bench_baseline.sh`).
//!
//! Flags: `--current NAME` (baseline name saved by the bench run,
//! default `current`), `--baseline PATH` (committed file, default
//! `BENCH_BASELINE.json`), `--threshold F` (allowed regression fraction).

use std::collections::BTreeMap;
use std::process::ExitCode;

use onepass_bench::{arg, arg_f64, pct};
use onepass_core::table::Table;

/// One benchmark measurement from a baseline file.
#[derive(Debug, Clone, Copy)]
struct Sample {
    median_ns: f64,
    /// Sample minimum; the gate metric. Minima are far less sensitive to
    /// scheduler noise than medians on shared CI runners.
    min_ns: f64,
    calibration_ns: f64,
}

impl Sample {
    /// Score normalised by this line's own calibration (used to pick the
    /// best run among duplicates of one benchmark).
    fn score(&self) -> f64 {
        self.min_ns / self.calibration_ns.max(1.0)
    }

    /// Score normalised by the whole file's best calibration. The anchor
    /// itself jitters per invocation, so per-line pairing would inject
    /// that jitter into the comparison; the file-wide minimum is the
    /// machine's true single-core speed.
    fn file_score(&self, file_calibration: f64) -> f64 {
        self.min_ns / file_calibration.max(1.0)
    }
}

/// A parsed baseline: per-benchmark best samples plus the file-wide best
/// calibration anchor.
struct Baseline {
    samples: BTreeMap<String, Sample>,
    calibration_ns: f64,
}

/// Extract `"name":<number>` from a JSON line (the baseline format is
/// flat, so a full parser is not needed).
fn num_field(line: &str, name: &str) -> Option<f64> {
    let at = line.find(&format!("\"{name}\":"))?;
    let rest = &line[at + name.len() + 3..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract `"bench":"label"` from a JSON line. Labels are benchmark
/// paths (letters, digits, `/`, `_`, `-`) — no escapes to worry about.
fn bench_field(line: &str) -> Option<String> {
    let at = line.find("\"bench\":\"")?;
    let rest = &line[at + 9..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parse a baseline file. Bench runs append, so a benchmark may appear
/// several times (the refresh script and CI deliberately run each suite
/// repeatedly); the *best-scoring* line wins. Taking the across-run
/// minimum makes the gate robust to transient CI-runner contention — a
/// real slowdown shifts every run, a noisy neighbour only some.
fn parse_baseline(content: &str) -> Baseline {
    let mut out: BTreeMap<String, Sample> = BTreeMap::new();
    let mut file_cal = f64::MAX;
    for line in content.lines().filter(|l| !l.trim().is_empty()) {
        let (Some(bench), Some(median_ns), Some(calibration_ns)) = (
            bench_field(line),
            num_field(line, "median_ns"),
            num_field(line, "calibration_ns"),
        ) else {
            eprintln!("skipping malformed baseline line: {line}");
            continue;
        };
        // Older baseline files carry only medians.
        let min_ns = num_field(line, "min_ns").unwrap_or(median_ns);
        file_cal = file_cal.min(calibration_ns);
        let sample = Sample {
            median_ns,
            min_ns,
            calibration_ns,
        };
        out.entry(bench)
            .and_modify(|best| {
                if sample.score() < best.score() {
                    *best = sample;
                }
            })
            .or_insert(sample);
    }
    Baseline {
        samples: out,
        calibration_ns: if file_cal == f64::MAX { 1.0 } else { file_cal },
    }
}

/// The paper's headline claim, enforced: in every `pipeline-*` criterion
/// group where the current run measured both variants, the one-pass
/// configuration must finish ahead of the sort-merge (`hadoop`)
/// configuration. Both numbers come from the same file, machine, and run,
/// so raw medians compare directly — no normalisation needed. Returns the
/// losing groups as `(group, onepass_median_ns, hadoop_median_ns)`.
fn onepass_losses(current: &Baseline) -> Vec<(String, f64, f64)> {
    let mut losses = Vec::new();
    for (bench, one) in &current.samples {
        let Some(group) = bench
            .strip_suffix("/onepass")
            .filter(|g| g.starts_with("pipeline-"))
        else {
            continue;
        };
        if let Some(hadoop) = current.samples.get(&format!("{group}/hadoop")) {
            if one.median_ns >= hadoop.median_ns {
                losses.push((group.to_string(), one.median_ns, hadoop.median_ns));
            }
        }
    }
    losses
}

/// Locate the freshly saved baseline `NAME.json`. `cargo bench` runs
/// each bench binary with the package directory as its working directory,
/// while this checker usually runs from the workspace root — probe both,
/// plus an explicit `CRITERION_HOME`.
fn find_current(name: &str) -> Option<String> {
    let mut candidates = Vec::new();
    if let Ok(home) = std::env::var("CRITERION_HOME") {
        candidates.push(format!("{home}/{name}.json"));
    }
    candidates.push(format!("target/criterion/{name}.json"));
    candidates.push(format!("crates/bench/target/criterion/{name}.json"));
    candidates
        .into_iter()
        .find(|p| std::path::Path::new(p).exists())
}

fn main() -> ExitCode {
    let current_name = arg("current").unwrap_or_else(|| "current".into());
    let baseline_path = arg("baseline").unwrap_or_else(|| "BENCH_BASELINE.json".into());
    let threshold = arg_f64("threshold", 0.15);
    let refresh = std::env::args().any(|a| a == "--refresh");

    let Some(current_path) = find_current(&current_name) else {
        eprintln!(
            "no current baseline {current_name:?} found; run e.g.\n  \
             cargo bench -p onepass-bench --bench bench_segment -- --save-baseline {current_name}"
        );
        return ExitCode::FAILURE;
    };
    let current = parse_baseline(&std::fs::read_to_string(&current_path).expect("read current"));
    if current.samples.is_empty() {
        eprintln!("current baseline {current_path} holds no benchmarks");
        return ExitCode::FAILURE;
    }

    if refresh {
        let mut out = String::new();
        for (bench, s) in &current.samples {
            out.push_str(&format!(
                "{{\"bench\":{bench:?},\"median_ns\":{},\"min_ns\":{},\
                 \"calibration_ns\":{}}}\n",
                s.median_ns, s.min_ns, s.calibration_ns
            ));
        }
        std::fs::write(&baseline_path, out).expect("write baseline");
        println!(
            "refreshed {baseline_path} from {current_path} ({} benchmarks)",
            current.samples.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(content) => parse_baseline(&content),
        Err(e) => {
            eprintln!("cannot read committed baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut table = Table::new(
        format!(
            "Perf gate: {current_path} vs {baseline_path} (threshold {})",
            pct(threshold)
        ),
        &[
            "benchmark",
            "baseline min",
            "current min",
            "normalised delta",
            "verdict",
        ],
    );
    let mut regressions = 0usize;
    for (bench, cur) in &current.samples {
        let Some(base) = baseline.samples.get(bench) else {
            table.row(&[
                bench.clone(),
                "-".into(),
                format!("{:.0} ns", cur.min_ns),
                "-".into(),
                "new (no baseline)".into(),
            ]);
            continue;
        };
        let delta =
            cur.file_score(current.calibration_ns) / base.file_score(baseline.calibration_ns) - 1.0;
        let verdict = if delta > threshold {
            regressions += 1;
            "REGRESSED"
        } else if delta < -threshold {
            "improved"
        } else {
            "ok"
        };
        table.row(&[
            bench.clone(),
            format!("{:.0} ns", base.min_ns),
            format!("{:.0} ns", cur.min_ns),
            pct(delta),
            verdict.into(),
        ]);
    }
    for bench in baseline.samples.keys() {
        if !current.samples.contains_key(bench) {
            table.row(&[
                bench.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "missing from current run".into(),
            ]);
        }
    }
    println!("{}", table.to_text());

    let losses = onepass_losses(&current);
    for (group, one, hadoop) in &losses {
        eprintln!(
            "{group}: one-pass median {:.2} ms is not ahead of sort-merge {:.2} ms",
            one / 1e6,
            hadoop / 1e6
        );
    }
    if regressions > 0 || !losses.is_empty() {
        if regressions > 0 {
            eprintln!(
                "{regressions} benchmark(s) regressed more than {} (normalised); \
                 if intentional, run scripts/refresh_bench_baseline.sh and commit the result",
                pct(threshold)
            );
        }
        return ExitCode::FAILURE;
    }
    println!(
        "perf gate passed: no benchmark regressed more than {}, and one-pass \
         leads sort-merge on every measured pipeline-* group",
        pct(threshold)
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_lines_round_trip() {
        let content = "{\"bench\":\"g/a\",\"median_ns\":1500,\"min_ns\":1400,\"calibration_ns\":1000}\n\
                       {\"bench\":\"g/b\",\"median_ns\":200,\"calibration_ns\":1000}\n\
                       {\"bench\":\"g/a\",\"median_ns\":1600,\"min_ns\":1500,\"calibration_ns\":1000}\n\
                       not json\n";
        let parsed = parse_baseline(content);
        assert_eq!(parsed.samples.len(), 2);
        assert_eq!(
            parsed.samples["g/a"].min_ns, 1400.0,
            "best-scoring run wins"
        );
        assert_eq!(
            parsed.samples["g/b"].min_ns, 200.0,
            "min falls back to median"
        );
        assert_eq!(parsed.samples["g/b"].score(), 0.2);
        assert_eq!(parsed.calibration_ns, 1000.0);
    }

    #[test]
    fn onepass_must_beat_sort_merge_on_pipeline_groups() {
        let content = "{\"bench\":\"pipeline-pagefreq/onepass\",\"median_ns\":30,\"calibration_ns\":1}\n\
                       {\"bench\":\"pipeline-pagefreq/hadoop\",\"median_ns\":40,\"calibration_ns\":1}\n\
                       {\"bench\":\"pipeline-wc/onepass\",\"median_ns\":50,\"calibration_ns\":1}\n\
                       {\"bench\":\"pipeline-wc/hadoop\",\"median_ns\":45,\"calibration_ns\":1}\n\
                       {\"bench\":\"segment/onepass\",\"median_ns\":99,\"calibration_ns\":1}\n\
                       {\"bench\":\"segment/hadoop\",\"median_ns\":1,\"calibration_ns\":1}\n\
                       {\"bench\":\"pipeline-solo/onepass\",\"median_ns\":7,\"calibration_ns\":1}\n";
        let losses = onepass_losses(&parse_baseline(content));
        // pagefreq wins, wc loses; non-pipeline groups and groups missing
        // a hadoop counterpart are out of scope.
        assert_eq!(losses, vec![("pipeline-wc".to_string(), 50.0, 45.0)]);
    }

    #[test]
    fn normalisation_cancels_machine_speed() {
        // Same workload measured on a machine twice as slow: both median
        // and calibration double, the score is unchanged.
        let fast = Sample {
            median_ns: 110.0,
            min_ns: 100.0,
            calibration_ns: 50.0,
        };
        let slow = Sample {
            median_ns: 220.0,
            min_ns: 200.0,
            calibration_ns: 100.0,
        };
        assert_eq!(fast.score(), slow.score());
        // File-level anchors cancel the same way.
        assert_eq!(fast.file_score(50.0), slow.file_score(100.0));
    }
}
