//! Fig. 2 — sessionization on the simulated 10-node cluster.
//!
//! Panels:
//! * (a) task timeline — running map / shuffle / merge / reduce tasks;
//! * (b) CPU utilization (single HDD) — the mid-job valley;
//! * (c) CPU iowait — the matching spike;
//! * (d) disk bytes read — the merge re-read surge;
//! * (e) CPU utilization with HDD+SSD — faster, valley remains;
//! * (f) CPU utilization with separated storage/compute (5+5 nodes,
//!   input halved as in the paper) — valley remains.

use onepass_bench::{arg_f64, ascii_chart, save, svg_chart};
use onepass_core::metrics::series_to_csv;
use onepass_simcluster::{
    run_sim_job, ClusterSpec, SimJobSpec, SimReport, StorageConfig, SystemType, WorkloadProfile,
};

fn sim(storage: StorageConfig, scale: f64) -> SimReport {
    let r = run_sim_job(SimJobSpec::new(
        SystemType::StockHadoop,
        ClusterSpec::paper_cluster(storage),
        WorkloadProfile::sessionization().scaled(scale),
    ));
    onepass_bench::append_report_jsonl(&r.to_jsonl());
    r
}

fn main() {
    let scale = arg_f64("scale", 1.0);
    println!("== Fig. 2: sessionization on stock Hadoop (scale {scale}) ==\n");

    let base = sim(StorageConfig::SingleHdd, scale);
    println!(
        "Baseline completion: {:.0} min (paper: 76 min)\n",
        base.completion_secs / 60.0
    );

    println!("-- (a) task timeline --");
    for s in [
        &base.series.map_tasks,
        &base.series.shuffle_tasks,
        &base.series.merge_tasks,
        &base.series.reduce_tasks,
    ] {
        println!("{}", ascii_chart(s, 90, 6));
    }
    save(
        "fig2a_timeline.csv",
        &series_to_csv(&[
            base.series.map_tasks.clone(),
            base.series.shuffle_tasks.clone(),
            base.series.merge_tasks.clone(),
            base.series.reduce_tasks.clone(),
        ]),
    );
    save(
        "fig2a_timeline.svg",
        &svg_chart(
            "Fig 2(a) task timeline — sessionization, stock Hadoop",
            "running tasks",
            &[
                &base.series.map_tasks,
                &base.series.shuffle_tasks,
                &base.series.merge_tasks,
                &base.series.reduce_tasks,
            ],
            760,
            340,
        ),
    );

    println!("-- (b) CPU utilization, single HDD --");
    println!("{}", ascii_chart(&base.series.cpu_util_pct, 90, 8));
    save("fig2b_cpu.csv", &base.series.cpu_util_pct.to_csv());
    save(
        "fig2b_cpu.svg",
        &svg_chart(
            "Fig 2(b) CPU utilization — single HDD",
            "percent",
            &[&base.series.cpu_util_pct],
            760,
            300,
        ),
    );

    println!("-- (c) CPU iowait --");
    println!("{}", ascii_chart(&base.series.iowait_pct, 90, 8));
    save("fig2c_iowait.csv", &base.series.iowait_pct.to_csv());
    save(
        "fig2c_iowait.svg",
        &svg_chart(
            "Fig 2(c) CPU iowait",
            "percent",
            &[&base.series.iowait_pct],
            760,
            300,
        ),
    );

    println!("-- (d) disk MB read per second --");
    println!("{}", ascii_chart(&base.series.disk_read_mb, 90, 8));
    save("fig2d_diskread.csv", &base.series.disk_read_mb.to_csv());
    save(
        "fig2d_diskread.svg",
        &svg_chart(
            "Fig 2(d) disk MB read per second",
            "MB/s",
            &[&base.series.disk_read_mb],
            760,
            300,
        ),
    );

    let valley = base.mean_cpu_util(0.45, 0.62);
    let early = base.mean_cpu_util(0.05, 0.35);
    println!(
        "Valley check: map-phase CPU {:.0}% vs merge-window CPU {:.0}% \
         (iowait there: {:.0}%)\n",
        early,
        valley,
        base.mean_iowait(0.45, 0.62)
    );

    println!("-- (e) CPU utilization, HDD+SSD --");
    let ssd = sim(StorageConfig::HddPlusSsd, scale);
    println!("{}", ascii_chart(&ssd.series.cpu_util_pct, 90, 8));
    println!(
        "Completion {:.0} min vs {:.0} min baseline (paper: 43 vs 76); merge window \
         CPU {:.0}% — blocking remains.\n",
        ssd.completion_secs / 60.0,
        base.completion_secs / 60.0,
        ssd.mean_cpu_util(0.45, 0.62)
    );
    save("fig2e_cpu_ssd.csv", &ssd.series.cpu_util_pct.to_csv());
    save(
        "fig2e_cpu_ssd.svg",
        &svg_chart(
            "Fig 2(e) CPU utilization — HDD+SSD",
            "percent",
            &[&ssd.series.cpu_util_pct],
            760,
            300,
        ),
    );

    println!("-- (f) CPU utilization, separated storage/compute (input halved) --");
    let sep = sim(StorageConfig::Separated, scale * 0.5);
    println!("{}", ascii_chart(&sep.series.cpu_util_pct, 90, 8));
    println!(
        "Completion {:.0} min (paper: 55 min on halved input); merge-window CPU \
         {:.0}% — blocking and I/O remain (§III-C).",
        sep.completion_secs / 60.0,
        sep.mean_cpu_util(0.45, 0.62)
    );
    save("fig2f_cpu_separated.csv", &sep.series.cpu_util_pct.to_csv());
    save(
        "fig2f_cpu_separated.svg",
        &svg_chart(
            "Fig 2(f) CPU utilization — separated storage/compute",
            "percent",
            &[&sep.series.cpu_util_pct],
            760,
            300,
        ),
    );
}
