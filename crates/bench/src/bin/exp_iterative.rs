//! Cached vs uncached iterative PageRank — the M3R claim, measured.
//!
//! M3R (arXiv:1208.4168) argues that holding reusable datasets in
//! memory with partition-stable placement makes iterative MapReduce
//! dramatically faster than re-running the full job path every round.
//! This experiment runs the same fixed-point PageRank loop two ways
//! over an identical synthetic graph:
//!
//! * **cached** — round state rides the `DatasetCache`: each round
//!   reads the resident partitions as zero-copy map splits, shuffles
//!   only the 8-byte contributions, and zip-merges the new ranks into
//!   the in-place adjacency at the round boundary;
//! * **uncached** — each round's full state (ranks *and* adjacency) is
//!   serialized to text records on a file-backed store, read back,
//!   re-parsed, re-split, and re-shuffled — the way Hadoop chains
//!   iterative jobs through HDFS.
//!
//! Both paths use identical integer arithmetic, so their final ranks
//! must be **byte-identical** — to each other and to a single-threaded
//! pure-Rust reference. The parse round (round 0) is common to both
//! paths, so per-round cost is isolated by differencing a 1-round run
//! from the full run: `per_round = (t_full - t_parse) / (rounds - 1)`.
//!
//! Asserts: byte-identical finals across cached/uncached/reference, and
//! cached per-round ≥ 2× faster than uncached (best-of-trials).
//!
//! Flags: `--nodes N` (100k), `--max-out D` (2), `--rounds R` (10),
//! `--reducers R` (4), `--trials T` (3).

use std::time::{Duration, Instant};

use onepass_bench::{arg_usize, pct, save};
use onepass_core::config::fmt_secs;
use onepass_core::table::Table;
use onepass_runtime::{CacheConfig, DatasetCache, Engine};
use onepass_workloads::pagerank::{
    self, graph_records, GraphConfig, PageRankConfig, Ranks, SCALE,
};

fn cfg_for(nodes: usize, rounds: usize, reducers: usize) -> PageRankConfig {
    let mut cfg = PageRankConfig::new(nodes);
    cfg.rounds = rounds;
    cfg.eps = None; // fixed round count: the timing comparison needs it
    cfg.reducers = reducers;
    cfg
}

fn time_cached(records: &[Vec<u8>], cfg: &PageRankConfig) -> (Ranks, Duration) {
    let engine = Engine::new();
    let cache = DatasetCache::new(CacheConfig::default());
    let t = Instant::now();
    let (ranks, _) = pagerank::run_cached(&engine, &cache, records, cfg).expect("cached pagerank");
    (ranks, t.elapsed())
}

fn time_uncached(records: &[Vec<u8>], cfg: &PageRankConfig) -> (Ranks, Duration) {
    let engine = Engine::new();
    let t = Instant::now();
    let (ranks, _) = pagerank::run_uncached(&engine, records, cfg).expect("uncached pagerank");
    (ranks, t.elapsed())
}

fn main() {
    let nodes = arg_usize("nodes", 100_000);
    let max_out = arg_usize("max-out", 2);
    let rounds = arg_usize("rounds", 10).max(2);
    let reducers = arg_usize("reducers", 4);
    let trials = arg_usize("trials", 3);

    println!(
        "== cached vs uncached iterative PageRank: {nodes} nodes (max out-degree {max_out}), \
         {rounds} rounds, {reducers} reducers, {trials} trials ==\n"
    );

    let records = graph_records(GraphConfig {
        nodes,
        max_out,
        seed: 42,
    });
    let full = cfg_for(nodes, rounds, reducers);
    let parse_only = cfg_for(nodes, 1, reducers);

    let (want, _) = pagerank::reference(&records, &full);
    let mass: u64 = want.iter().map(|&(_, r)| r).sum();

    let mut table = Table::new(
        "PageRank wall clock, per trial",
        &["trial", "path", "parse round", "full loop", "per round", "output"],
    );
    let mut csv = String::from("trial,path,parse_s,full_s,per_round_s,matches_reference\n");
    let mut best_cached = Duration::MAX;
    let mut best_uncached = Duration::MAX;
    let mut all_match = true;

    for trial in 0..trials {
        for cached in [false, true] {
            let (timer, label): (fn(&[Vec<u8>], &PageRankConfig) -> (Ranks, Duration), _) =
                if cached {
                    (time_cached, "cached")
                } else {
                    (time_uncached, "uncached")
                };
            let (_, t_parse) = timer(&records, &parse_only);
            let (ranks, t_full) = timer(&records, &full);
            let per_round = t_full.saturating_sub(t_parse) / (rounds as u32 - 1);
            let matches = ranks == want;
            all_match &= matches;
            if cached {
                best_cached = best_cached.min(per_round);
            } else {
                best_uncached = best_uncached.min(per_round);
            }
            table.row(&[
                trial.to_string(),
                label.to_string(),
                fmt_secs(t_parse.as_secs_f64()),
                fmt_secs(t_full.as_secs_f64()),
                fmt_secs(per_round.as_secs_f64()),
                if matches { "identical" } else { "DIVERGED" }.to_string(),
            ]);
            csv.push_str(&format!(
                "{trial},{label},{:.6},{:.6},{:.6},{matches}\n",
                t_parse.as_secs_f64(),
                t_full.as_secs_f64(),
                per_round.as_secs_f64(),
            ));
        }
    }
    println!("{}", table.to_text());

    let speedup = best_uncached.as_secs_f64() / best_cached.as_secs_f64();
    println!(
        "Rank mass conserved: {mass} of {SCALE} ({} floor loss).",
        pct(1.0 - mass as f64 / SCALE as f64)
    );
    println!(
        "Best per-round:      uncached {} -> cached {} ({speedup:.1}x faster per round).",
        fmt_secs(best_uncached.as_secs_f64()),
        fmt_secs(best_cached.as_secs_f64()),
    );
    println!(
        "Outputs: {}.",
        if all_match {
            "cached, uncached, and reference ranks byte-identical"
        } else {
            "DIVERGENCE DETECTED"
        }
    );
    save("exp_iterative.csv", &csv);

    assert!(all_match, "cached/uncached/reference ranks diverged");
    assert!(
        speedup >= 2.0,
        "cached per-round must be >= 2x faster than uncached (got {speedup:.2}x)"
    );
}
