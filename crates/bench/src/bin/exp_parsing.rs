//! §III-B.1 — cost of parsing: line-oriented text input vs pre-parsed
//! binary input for the sessionization workload.
//!
//! Paper: "We ran the sessionization workload on these two inputs and
//! observed almost no difference in either running time or CPU
//! utilization ... input parsing is a negligible overall cost."

use onepass_bench::{arg_usize, pct, save};
use onepass_core::metrics::Phase;
use onepass_core::table::Table;
use onepass_runtime::{CollectOutput, Engine};
use onepass_workloads::{make_splits, sessionization, ClickGen, ClickGenConfig};

fn main() {
    let records = arg_usize("records", 400_000);
    println!("== §III-B.1: parsing cost, text vs pre-parsed binary input ({records} clicks) ==\n");

    let mut gen_a = ClickGen::new(ClickGenConfig::default());
    let mut gen_b = ClickGen::new(ClickGenConfig::default());
    let text = make_splits(gen_a.text_records(records), records / 16);
    let binary = make_splits(gen_b.binary_records(records), records / 16);

    let text_job = sessionization::job()
        .reducers(4)
        .collect_mode(CollectOutput::Discard)
        .preset_hadoop()
        .build()
        .unwrap();
    let bin_job = sessionization::job_binary()
        .reducers(4)
        .collect_mode(CollectOutput::Discard)
        .preset_hadoop()
        .build()
        .unwrap();

    let rt = Engine::new().run(&text_job, text).unwrap();
    let rb = Engine::new().run(&bin_job, binary).unwrap();
    onepass_bench::append_report_jsonl(&rt.to_jsonl());
    onepass_bench::append_report_jsonl(&rb.to_jsonl());

    let mut table = Table::new(
        "Parsing cost",
        &[
            "input format",
            "wall time",
            "map fn CPU",
            "map sort CPU",
            "map-fn share of map phase",
        ],
    );
    for (name, r) in [("text lines", &rt), ("binary records", &rb)] {
        let map_fn = r.map_profile.time(Phase::MapFn).as_secs_f64();
        let sort = r.map_profile.time(Phase::MapSort).as_secs_f64();
        table.row(&[
            name.to_string(),
            format!("{:.2} s", r.wall.as_secs_f64()),
            format!("{map_fn:.2} s"),
            format!("{sort:.2} s"),
            pct(map_fn / (map_fn + sort)),
        ]);
    }
    println!("{}", table.to_text());

    let ratio = rt.wall.as_secs_f64() / rb.wall.as_secs_f64();
    println!(
        "Wall-time ratio text/binary: {ratio:.2} (paper observed ≈1.0 — parsing \
         is not the bottleneck; the sort dominates either way)."
    );
    save(
        "parsing.csv",
        &format!(
            "format,wall_s,map_fn_s,sort_s\ntext,{:.3},{:.3},{:.3}\nbinary,{:.3},{:.3},{:.3}\n",
            rt.wall.as_secs_f64(),
            rt.map_profile.time(Phase::MapFn).as_secs_f64(),
            rt.map_profile.time(Phase::MapSort).as_secs_f64(),
            rb.wall.as_secs_f64(),
            rb.map_profile.time(Phase::MapFn).as_secs_f64(),
            rb.map_profile.time(Phase::MapSort).as_secs_f64(),
        ),
    );
}
