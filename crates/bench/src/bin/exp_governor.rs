//! Adaptive memory governor vs static per-reducer budgets.
//!
//! Sessionization with Zipf-skewed users hash-partitions very unevenly:
//! the reducer owning the hottest users needs far more state memory than
//! its siblings. A **static** split hands every reducer the same private
//! budget, so the hot reducer spills while the others sit on unused
//! slack. The **adaptive** governor pools the same global limit and
//! rebalances it on demand — the hot reducer escalates its lease before
//! spilling, borrowing the idle reducers' slack.
//!
//! For each reduce backend this experiment runs the identical job twice
//! (static vs adaptive, same global limit = per-reducer budget ×
//! reducers) and reports:
//!
//! * reduce-side spill traffic (bytes written + read) and the adaptive
//!   reduction — the headline metric (target: ≥25% on the skewed
//!   default workload);
//! * an order-insensitive fingerprint of the final output, which must be
//!   byte-identical between the two policies for every backend —
//!   governance must never change answers;
//! * governor activity (rebalances, sheds, push stalls, pool peak).
//!
//! Flags: `--records N` (default 200k clicks), `--reducers R` (4),
//! `--budget-kb K` per-reducer (0 = per-backend defaults, see
//! [`backends`]), `--skew S` (Zipf exponent, 1.0), `--policy NAME`
//! (largest-consumer).

use std::sync::Arc;

use onepass_bench::{arg, arg_f64, arg_usize, pct, save};
use onepass_core::config::fmt_bytes;
use onepass_core::governor::{policy_by_name, MemoryPolicy};
use onepass_core::table::Table;
use onepass_core::KvBuf;
use onepass_groupby::EmitKind;
use onepass_runtime::map_task::Split;
use onepass_runtime::{CollectOutput, Engine, EngineConfig, JobReport, ReduceBackend, ShuffleMode};
use onepass_workloads::{make_splits, sessionization, ClickGen, ClickGenConfig};

/// Each backend with a per-reducer budget (KiB) placing the hot reducer's
/// footprint above its static quarter but inside the pooled global limit.
/// Sort-merge buffers raw shuffle segments (~28 B/click); the hash
/// backends keep holistic per-user state (~8 B/click), so their memory
/// pressure sits ~3x lower for the same input. Static and adaptive always
/// run at the *same* global limit within a pair.
fn backends() -> Vec<(&'static str, ReduceBackend, usize)> {
    vec![
        (
            "sort-merge",
            ReduceBackend::SortMerge {
                merge_factor: 8,
                snapshots: vec![],
            },
            1536,
        ),
        ("hybrid-hash", ReduceBackend::HybridHash { fanout: 8 }, 640),
        ("inc-hash", ReduceBackend::IncHash { early: None }, 640),
        (
            "freq-hash",
            ReduceBackend::FreqHash(Default::default()),
            640,
        ),
    ]
}

/// Order-insensitive fingerprint of the job's final output.
fn output_fingerprint(report: &JobReport) -> u64 {
    let mut buf = KvBuf::new();
    for o in report.outputs.iter().filter(|o| o.kind == EmitKind::Final) {
        buf.push(0, &o.key, &o.value);
    }
    buf.unordered_fingerprint()
}

fn run_once(
    splits: &[Split],
    backend: &ReduceBackend,
    reducers: usize,
    budget_bytes: usize,
    policy: MemoryPolicy,
) -> JobReport {
    let job = sessionization::job()
        .reducers(reducers)
        .backend(backend.clone())
        .shuffle(ShuffleMode::Push { granularity: 64 })
        .collect_mode(CollectOutput::Collect)
        .reduce_budget_bytes(budget_bytes)
        // Disable the Hadoop segment-count merge trigger: this experiment
        // isolates *memory*-driven spilling, which is what governance moves.
        .inmem_merge_threshold(usize::MAX)
        .build()
        .expect("valid job");
    let cfg = EngineConfig::builder().memory_policy(policy).build();
    Engine::with_config(cfg)
        .run(&job, splits.to_vec())
        .expect("job failed")
}

fn main() {
    let records = arg_usize("records", 200_000);
    let reducers = arg_usize("reducers", 4);
    let budget_kb = arg_usize("budget-kb", 0); // 0 = per-backend defaults
    let skew = arg_f64("skew", 1.0);
    let policy_name = arg("policy").unwrap_or_else(|| "largest-consumer".into());
    let policy = policy_by_name(&policy_name)
        .unwrap_or_else(|| panic!("unknown spill policy {policy_name:?}"));

    println!(
        "== adaptive governor vs static split: sessionization, Zipf({skew}) users, \
         {records} clicks, {reducers} reducers ==\n",
    );

    let mut gen = ClickGen::new(ClickGenConfig {
        user_skew: skew,
        ..Default::default()
    });
    let splits = make_splits(gen.text_records(records), records / 16 + 1);

    let mut table = Table::new(
        format!("Reduce-side spill traffic, static vs adaptive ({policy_name})"),
        &[
            "backend",
            "global limit",
            "static spill",
            "adaptive spill",
            "reduction",
            "rebalances",
            "sheds",
            "stalls",
            "pool peak",
            "output",
        ],
    );
    let mut csv = String::from(
        "backend,global_limit_bytes,static_spill_bytes,adaptive_spill_bytes,reduction_frac,\
         rebalances,sheds,shed_bytes,stalls,pool_high_water,outputs_match\n",
    );
    let mut total_static = 0u64;
    let mut total_adaptive = 0u64;
    let mut all_match = true;

    for (label, backend, default_kb) in backends() {
        let budget_bytes = if budget_kb > 0 { budget_kb } else { default_kb } * 1024;
        let static_rep = run_once(
            &splits,
            &backend,
            reducers,
            budget_bytes,
            MemoryPolicy::Static,
        );
        let adaptive_rep = run_once(
            &splits,
            &backend,
            reducers,
            budget_bytes,
            MemoryPolicy::Adaptive {
                policy: Arc::clone(&policy),
                high_water: onepass_core::governor::DEFAULT_HIGH_WATER,
            },
        );
        onepass_bench::append_report_jsonl(&static_rep.to_jsonl());
        onepass_bench::append_report_jsonl(&adaptive_rep.to_jsonl());

        let s = static_rep.reduce_spill_traffic();
        let a = adaptive_rep.reduce_spill_traffic();
        total_static += s;
        total_adaptive += a;
        let reduction = if s > 0 {
            1.0 - (a as f64 / s as f64)
        } else {
            0.0
        };
        let matches = output_fingerprint(&static_rep) == output_fingerprint(&adaptive_rep);
        all_match &= matches;

        table.row(&[
            label.to_string(),
            fmt_bytes((budget_bytes * reducers) as u64),
            fmt_bytes(s),
            fmt_bytes(a),
            pct(reduction),
            adaptive_rep.mem_rebalances.to_string(),
            adaptive_rep.mem_sheds.to_string(),
            adaptive_rep.backpressure_stalls.to_string(),
            fmt_bytes(adaptive_rep.mem_pool_high_water),
            if matches { "identical" } else { "DIVERGED" }.to_string(),
        ]);
        csv.push_str(&format!(
            "{label},{},{s},{a},{reduction:.4},{},{},{},{},{},{}\n",
            budget_bytes * reducers,
            adaptive_rep.mem_rebalances,
            adaptive_rep.mem_sheds,
            adaptive_rep.mem_shed_bytes,
            adaptive_rep.backpressure_stalls,
            adaptive_rep.mem_pool_high_water,
            matches,
        ));
    }

    println!("{}", table.to_text());
    let overall = if total_static > 0 {
        1.0 - (total_adaptive as f64 / total_static as f64)
    } else {
        0.0
    };
    println!(
        "Overall reduce-side spill: static {} -> adaptive {} ({} reduction).",
        fmt_bytes(total_static),
        fmt_bytes(total_adaptive),
        pct(overall),
    );
    println!(
        "Output fingerprints: {}.",
        if all_match {
            "byte-identical across all backends and policies"
        } else {
            "DIVERGENCE DETECTED — governance changed answers"
        }
    );
    save("exp_governor.csv", &csv);

    assert!(all_match, "adaptive governance changed job output");
}
