//! §V initial results — hash-based system vs carefully tuned stock
//! Hadoop, on the real engine.
//!
//! Paper claims: "The hash-based system can save up to 48% of CPU
//! cycles, and up to 53% of running time. Furthermore, the I/O cost due
//! to internal data spills in the reduce phase can be reduced by three
//! orders of magnitude when the frequent algorithm is used together with
//! hashing."
//!
//! Both systems run the same generated click data with the same reducer
//! memory budget and the same split granularity (many small map tasks, as
//! in the paper's 3,773-task jobs — which is what drives Hadoop's
//! segment-count merge threshold and its spill-despite-ample-memory
//! behaviour, §III-B.4). `--records` (default 1.2M), `--budget-kb`
//! (default 1024) and `--split-records` (default 400) control the regime.

use onepass_bench::{arg_usize, pct, save};
use onepass_core::table::Table;
use onepass_runtime::report::JobReport;
use onepass_runtime::{CollectOutput, Engine, JobSpec};
use onepass_workloads::{make_splits, per_user_count, sessionization, ClickGen, ClickGenConfig};

fn run(job: JobSpec, records: usize, split_records: usize) -> JobReport {
    let mut gen = ClickGen::new(ClickGenConfig {
        users: 30_000,
        user_skew: 1.15,
        ..Default::default()
    });
    let splits = make_splits(gen.text_records(records), split_records);
    let report = Engine::new().run(&job, splits).expect("job runs");
    onepass_bench::append_report_jsonl(&report.to_jsonl());
    report
}

struct Comparison {
    workload: &'static str,
    cpu_saved: f64,
    time_saved: f64,
    spill_ratio: f64,
}

/// Run a job three times and keep the run with the median wall time —
/// sub-second engine walls are noisy on shared machines.
fn run_median(job: &JobSpec, records: usize, split_records: usize) -> JobReport {
    let mut runs: Vec<JobReport> = (0..3)
        .map(|_| run(job.clone(), records, split_records))
        .collect();
    runs.sort_by_key(|r| r.wall);
    runs.swap_remove(1)
}

fn compare(
    workload: &'static str,
    hadoop: JobSpec,
    onepass: JobSpec,
    records: usize,
    split_records: usize,
) -> (Comparison, String) {
    let h = run_median(&hadoop, records, split_records);
    let o = run_median(&onepass, records, split_records);
    let h_cpu = h.total_compute_cpu().as_secs_f64();
    let o_cpu = o.total_compute_cpu().as_secs_f64();
    let h_spill = h.reduce_spill_traffic().max(1);
    let o_spill = o.reduce_spill_traffic().max(1);
    let c = Comparison {
        workload,
        cpu_saved: 1.0 - o_cpu / h_cpu,
        time_saved: 1.0 - o.wall.as_secs_f64() / h.wall.as_secs_f64(),
        spill_ratio: h_spill as f64 / o_spill as f64,
    };
    let detail = format!(
        "{workload}: hadoop cpu={h_cpu:.2}s wall={:.2}s spill={}B | onepass cpu={o_cpu:.2}s wall={:.2}s spill={}B early_answers={}",
        h.wall.as_secs_f64(),
        h_spill,
        o.wall.as_secs_f64(),
        o_spill,
        o.early_emits,
    );
    (c, detail)
}

fn main() {
    let records = arg_usize("records", 1_200_000);
    let budget = arg_usize("budget-kb", 1024) * 1024;
    let split_records = arg_usize("split-records", 400);
    println!(
        "== §V: hash-based one-pass vs tuned stock Hadoop ({records} clicks, {budget} B reduce budget, {} map tasks) ==\n",
        records / split_records
    );

    let mut table = Table::new(
        "Section V initial results (paper: ≤48% CPU saved, ≤53% time saved, ~1000x less reduce spill)",
        &["workload", "CPU saved", "runtime saved", "reduce-spill reduction"],
    );
    let mut csv = String::from("workload,cpu_saved_pct,time_saved_pct,spill_ratio\n");
    let mut details = Vec::new();

    // Per-user count: the combiner-friendly counting workload, where the
    // frequent algorithm shines.
    let (c1, d1) = compare(
        "per-user-count",
        per_user_count::job()
            .reducers(4)
            .collect_mode(CollectOutput::Discard)
            .preset_hadoop()
            .reduce_budget_bytes(budget)
            .build()
            .unwrap(),
        per_user_count::job()
            .reducers(4)
            .collect_mode(CollectOutput::Discard)
            .preset_onepass()
            .reduce_budget_bytes(budget)
            .build()
            .unwrap(),
        records,
        split_records,
    );
    details.push(d1);

    // Sessionization: holistic reduce, no combiner — CPU savings come
    // purely from eliminating the sort; spill savings from hot users.
    let (c2, d2) = compare(
        "sessionization",
        sessionization::job()
            .reducers(4)
            .collect_mode(CollectOutput::Discard)
            .preset_hadoop()
            .reduce_budget_bytes(budget * 8)
            .build()
            .unwrap(),
        sessionization::job()
            .reducers(4)
            .collect_mode(CollectOutput::Discard)
            .preset_onepass()
            .reduce_budget_bytes(budget * 8)
            .build()
            .unwrap(),
        records,
        split_records,
    );
    details.push(d2);

    for c in [&c1, &c2] {
        table.row(&[
            c.workload.to_string(),
            pct(c.cpu_saved),
            pct(c.time_saved),
            format!("{:.0}x", c.spill_ratio),
        ]);
        csv.push_str(&format!(
            "{},{:.1},{:.1},{:.1}\n",
            c.workload,
            c.cpu_saved * 100.0,
            c.time_saved * 100.0,
            c.spill_ratio
        ));
    }

    println!("{}", table.to_text());
    for d in &details {
        println!("  {d}");
    }
    println!(
        "\nShape checks: large CPU/runtime savings on sessionization (the paper's \
         'up to' case) and orders-of-magnitude spill reduction on both. \
         Per-user-count CPU is near parity at laptop scale: its map function \
         (text parsing) dominates and is identical on both paths, and Rust's \
         sort baseline is far leaner than 2010 Java's."
    );
    save("section5.csv", &csv);
}
