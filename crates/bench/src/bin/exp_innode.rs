//! Worker-scoped in-node combining A/B, plus the sort-merge baseline.
//!
//! Runs the same page-frequency job (the `pipeline-pagefreq` bench
//! workload) under three configurations — one-pass with the in-node
//! combiner (the default), one-pass with per-task combining
//! (`--in-node-combine off`), and the Hadoop-style sort-merge preset —
//! and reports median wall time over `--iters` interleaved repetitions,
//! shuffle volume, and the map-side combine ratio (shuffled / emitted
//! records). Interleaving the repetitions round-robin decorrelates the
//! comparison from machine drift, which on small inputs is larger than
//! the effect itself if each configuration is timed in one contiguous
//! block.
//!
//! A final collected run per configuration cross-checks that all three
//! produce an identical unordered output fingerprint — the combiner must
//! move bytes, never answers.
//!
//! Flags: `--records N` (default 100k clicks), `--reducers R` (2),
//! `--iters I` (9), `--users U` (5000), `--urls W` (8000).

use std::time::Instant;

use onepass_bench::{arg_usize, pct, save};
use onepass_core::config::fmt_bytes;
use onepass_core::table::Table;
use onepass_core::KvBuf;
use onepass_groupby::EmitKind;
use onepass_runtime::map_task::Split;
use onepass_runtime::{CollectOutput, Engine, EngineConfig, InNodeCombine, JobReport, JobSpec};
use onepass_workloads::{make_splits, page_frequency, ClickGen, ClickGenConfig};

struct Config {
    label: &'static str,
    csv_label: &'static str,
    preset_onepass: bool,
    in_node: InNodeCombine,
}

fn configs() -> Vec<Config> {
    vec![
        Config {
            label: "one-pass, in-node combine",
            csv_label: "onepass-innode",
            preset_onepass: true,
            in_node: InNodeCombine::On,
        },
        Config {
            label: "one-pass, per-task combine",
            csv_label: "onepass-pertask",
            preset_onepass: true,
            in_node: InNodeCombine::Off,
        },
        Config {
            label: "hadoop sort-merge",
            csv_label: "hadoop",
            preset_onepass: false,
            in_node: InNodeCombine::On, // ineligible (sort-spill map side)
        },
    ]
}

fn job(c: &Config, reducers: usize, collect: CollectOutput) -> JobSpec {
    let b = page_frequency::job()
        .reducers(reducers)
        .collect_mode(collect);
    let b = if c.preset_onepass {
        b.preset_onepass()
    } else {
        b.preset_hadoop()
    };
    b.build().expect("valid job")
}

fn run_once(c: &Config, reducers: usize, splits: Vec<Split>, collect: CollectOutput) -> JobReport {
    let job = job(c, reducers, collect);
    let cfg = EngineConfig::builder().in_node_combine(c.in_node).build();
    Engine::with_config(cfg)
        .run(&job, splits)
        .expect("job failed")
}

/// Order-insensitive fingerprint of the job's final output.
fn output_fingerprint(report: &JobReport) -> u64 {
    let mut buf = KvBuf::new();
    for o in report.outputs.iter().filter(|o| o.kind == EmitKind::Final) {
        buf.push(0, &o.key, &o.value);
    }
    buf.unordered_fingerprint()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let records = arg_usize("records", 100_000);
    let reducers = arg_usize("reducers", 2);
    let iters = arg_usize("iters", 9).max(1);
    let users = arg_usize("users", 5_000);
    let urls = arg_usize("urls", 8_000);

    println!(
        "== in-node combining A/B: page-frequency, {records} clicks, \
         {users} users x {urls} urls, {reducers} reducers, {iters} interleaved iters ==\n"
    );

    let mut gen = ClickGen::new(ClickGenConfig {
        users,
        urls,
        ..Default::default()
    });
    let data = gen.text_records(records);
    let cs = configs();

    // Interleaved timing: iteration i runs every configuration once, so
    // slow phases of the machine hit all three equally.
    let mut walls: Vec<Vec<f64>> = cs.iter().map(|_| Vec::with_capacity(iters)).collect();
    let mut last: Vec<Option<JobReport>> = cs.iter().map(|_| None).collect();
    for _ in 0..iters {
        for (ci, c) in cs.iter().enumerate() {
            let splits = make_splits(data.clone(), 10_000);
            let t0 = Instant::now();
            let rep = run_once(c, reducers, splits, CollectOutput::Discard);
            walls[ci].push(t0.elapsed().as_secs_f64() * 1e3);
            last[ci] = Some(rep);
        }
    }

    // One collected run each for the answer cross-check.
    let fps: Vec<u64> = cs
        .iter()
        .map(|c| {
            let splits = make_splits(data.clone(), 10_000);
            output_fingerprint(&run_once(c, reducers, splits, CollectOutput::Collect))
        })
        .collect();
    let all_match = fps.iter().all(|&f| f == fps[0]);

    let mut table = Table::new(
        "In-node combining vs per-task combining vs sort-merge".to_string(),
        &[
            "configuration",
            "median wall",
            "shuffled",
            "records",
            "combine ratio",
            "output",
        ],
    );
    let mut csv =
        String::from("config,median_wall_ms,shuffled_bytes,shuffled_records,combine_ratio\n");
    let mut medians = Vec::new();
    for (ci, c) in cs.iter().enumerate() {
        let rep = last[ci].as_ref().expect("at least one iteration ran");
        let wall = median(&mut walls[ci]);
        medians.push(wall);
        let ratio = rep.shuffled_records as f64 / rep.map_output_records.max(1) as f64;
        table.row(&[
            c.label.to_string(),
            format!("{wall:.2} ms"),
            fmt_bytes(rep.shuffled_bytes),
            rep.shuffled_records.to_string(),
            pct(1.0 - ratio),
            if fps[ci] == fps[0] {
                "identical"
            } else {
                "DIVERGED"
            }
            .to_string(),
        ]);
        csv.push_str(&format!(
            "{},{wall:.3},{},{},{ratio:.4}\n",
            c.csv_label, rep.shuffled_bytes, rep.shuffled_records
        ));
    }
    println!("{}", table.to_text());

    let innode = medians[0];
    let pertask = medians[1];
    let sortmerge = medians[2];
    println!(
        "in-node vs per-task: {}  |  in-node vs sort-merge: {}",
        pct(1.0 - innode / pertask),
        pct(1.0 - innode / sortmerge),
    );
    if !all_match {
        println!("WARNING: output fingerprints diverged across configurations");
    }

    save("exp_innode.csv", &csv);
    save(
        "exp_innode.txt",
        &format!(
            "{}\nin-node vs per-task: {}\nin-node vs sort-merge: {}\noutputs_match: {all_match}\n",
            table.to_text(),
            pct(1.0 - innode / pertask),
            pct(1.0 - innode / sortmerge),
        ),
    );
}
