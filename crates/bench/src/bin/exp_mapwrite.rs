//! §III-B.2 — cost of the synchronous map-output write.
//!
//! Paper: "these writes took 1.3 seconds on average, while the average
//! map task running time took 21.6 seconds. This 6% time did not make a
//! significant contribution" — i.e. the map-output persistence write is
//! *not* the bottleneck; the sort is.
//!
//! This experiment runs sessionization with real temp-file spill I/O and
//! reports the MapWrite share of total map-task time.

use onepass_bench::{arg_usize, pct, save};
use onepass_core::metrics::Phase;
use onepass_core::table::Table;
use onepass_runtime::driver::{EngineConfig, SpillBackend};
use onepass_runtime::{CollectOutput, Engine};
use onepass_workloads::{make_splits, sessionization, ClickGen, ClickGenConfig};

fn main() {
    let records = arg_usize("records", 300_000);
    println!("== §III-B.2: map-output write cost ({records} clicks, real file I/O) ==\n");

    // Median of three runs: file-write latency is noisy on shared
    // machines, and the paper's number is itself an average.
    let mut runs = Vec::new();
    for _ in 0..3 {
        let mut gen = ClickGen::new(ClickGenConfig::default());
        let splits = make_splits(gen.text_records(records), records / 16);
        let job = sessionization::job()
            .reducers(4)
            .collect_mode(CollectOutput::Discard)
            .preset_hadoop()
            .build()
            .unwrap();
        let engine = Engine::with_config(
            EngineConfig::builder()
                .spill(SpillBackend::TempFiles)
                .build(),
        );
        let r = engine.run(&job, splits).unwrap();
        onepass_bench::append_report_jsonl(&r.to_jsonl());
        runs.push(r);
    }
    runs.sort_by(|a, b| {
        a.map_profile
            .time(Phase::MapWrite)
            .cmp(&b.map_profile.time(Phase::MapWrite))
    });
    let r = runs.swap_remove(1);

    let phases = [
        Phase::MapFn,
        Phase::MapSort,
        Phase::MapWrite,
        Phase::Combine,
    ];
    let total: f64 = phases
        .iter()
        .map(|&p| r.map_profile.time(p).as_secs_f64())
        .sum();
    let mut table = Table::new("Map-task time breakdown", &["phase", "CPU/IO s", "share"]);
    for &p in &phases {
        let t = r.map_profile.time(p).as_secs_f64();
        table.row(&[
            p.label().to_string(),
            format!("{t:.3} s"),
            pct(t / total.max(1e-9)),
        ]);
    }
    println!("{}", table.to_text());

    let write_share = r.map_profile.time(Phase::MapWrite).as_secs_f64() / total.max(1e-9);
    println!(
        "Map-output write share: {} of map-task *compute+write* time (paper: ~6% \
         of whole-task time, which includes the data-load wait our in-memory \
         splits do not have — so this figure is an upper bound on the comparable \
         share). Conclusion check: the write is minor next to the sort; \
         persisted {} of map output.",
        pct(write_share),
        onepass_core::config::fmt_bytes(r.map_write_io.bytes_written)
    );
    save(
        "mapwrite.csv",
        &format!(
            "phase,seconds\nmap_fn,{:.4}\nmap_sort,{:.4}\nmap_write,{:.4}\n",
            r.map_profile.time(Phase::MapFn).as_secs_f64(),
            r.map_profile.time(Phase::MapSort).as_secs_f64(),
            r.map_profile.time(Phase::MapWrite).as_secs_f64(),
        ),
    );
}
