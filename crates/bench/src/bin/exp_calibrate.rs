//! Calibration loop: measure per-MB CPU costs on the real engine and
//! derive the simulator's cost model from them — evidence that the
//! simulator's constants reflect measured per-record behaviour rather
//! than hand-picked numbers (DESIGN.md's "calibrated from our real
//! engine's measurements" claim, made executable).

use onepass_bench::{arg_usize, save};
use onepass_core::table::Table;
use onepass_simcluster::{
    run_sim_job, ClusterSpec, CostModel, SimJobSpec, StorageConfig, SystemType, WorkloadProfile,
};
use onepass_workloads::calibrate::calibrate;

fn main() {
    let records = arg_usize("records", 200_000);
    println!(
        "== Calibration: engine-measured CPU costs -> simulator cost model ({records} clicks) ==\n"
    );

    let cal = calibrate(records);
    let reference = CostModel::calibrated();

    let mut table = Table::new(
        "CPU seconds per MB",
        &[
            "operation",
            "measured (this machine)",
            "derived model",
            "shipped default",
        ],
    );
    let rows = [
        (
            "map function",
            cal.measured.map_s_mb,
            cal.model.cpu_map_s_mb,
            reference.cpu_map_s_mb,
        ),
        (
            "map sort",
            cal.measured.sort_s_mb,
            cal.model.cpu_sort_s_mb,
            reference.cpu_sort_s_mb,
        ),
        (
            "hash partition",
            cal.measured.hash_s_mb,
            cal.model.cpu_hash_s_mb,
            reference.cpu_hash_s_mb,
        ),
        (
            "merge",
            cal.measured.merge_s_mb,
            cal.model.cpu_merge_s_mb,
            reference.cpu_merge_s_mb,
        ),
        (
            "incremental update",
            cal.measured.inc_update_s_mb,
            cal.model.cpu_inc_update_s_mb,
            reference.cpu_inc_update_s_mb,
        ),
    ];
    let mut csv = String::from("operation,measured_s_mb,derived_s_mb,default_s_mb\n");
    for (name, m, d, r) in rows {
        table.row(&[
            name.to_string(),
            format!("{m:.5}"),
            format!("{d:.5}"),
            format!("{r:.5}"),
        ]);
        csv.push_str(&format!("{name},{m:.6},{d:.6},{r:.6}\n"));
    }
    println!("{}", table.to_text());
    println!(
        "machine factor: {:.2}x (this machine vs the reference 2010-era node)\n\
         The defining inequalities carry over: hash < sort, and merge is cheap \
         CPU-wise (its cost is I/O, which the simulator models separately).",
        cal.machine_factor
    );
    save("calibration.csv", &csv);

    // Cross-validation: simulate sessionization with the derived model;
    // the paper-shape conclusions must be model-robust.
    let mut spec = SimJobSpec::new(
        SystemType::StockHadoop,
        ClusterSpec::paper_cluster(StorageConfig::SingleHdd),
        WorkloadProfile::sessionization().scaled(0.25),
    );
    spec.reduce_mem_mb *= 0.25;
    let mut derived_spec = spec.clone();
    derived_spec.cost = cal.model;
    let default_run = run_sim_job(spec);
    onepass_bench::append_report_jsonl(&default_run.to_jsonl());
    let derived_run = run_sim_job(derived_spec);
    onepass_bench::append_report_jsonl(&derived_run.to_jsonl());
    println!(
        "
cross-validation (sessionization @25% scale): completion {} min with the          shipped model vs {} min with the machine-derived model; the merge valley          (mid-job CPU {{shipped {:.0}%, derived {:.0}%}} below map-phase CPU          {{{:.0}%, {:.0}%}}) survives either way.",
        (default_run.completion_secs / 60.0).round(),
        (derived_run.completion_secs / 60.0).round(),
        default_run.mean_cpu_util(0.48, 0.6),
        derived_run.mean_cpu_util(0.48, 0.6),
        default_run.mean_cpu_util(0.1, 0.4),
        derived_run.mean_cpu_util(0.1, 0.4),
    );
    assert!(
        derived_run.mean_cpu_util(0.48, 0.6) < derived_run.mean_cpu_util(0.1, 0.4),
        "merge valley must survive the derived cost model"
    );
}
