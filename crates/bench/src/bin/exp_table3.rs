//! Table III — comparison between Hadoop, MapReduce Online, and the
//! ideal incremental one-pass system, generated from the engine's actual
//! capability descriptors (not hand-typed strings): each row is probed
//! from the corresponding `JobSpec` preset.

use std::sync::Arc;

use onepass_bench::save;
use onepass_core::table::Table;
use onepass_groupby::SumAgg;
use onepass_runtime::{JobSpec, MapSideMode, ReduceBackend, ShuffleMode};

struct SystemRow {
    name: &'static str,
    job: JobSpec,
    in_memory: &'static str,
}

fn group_by_label(job: &JobSpec) -> &'static str {
    match (&job.backend, job.map_side) {
        (ReduceBackend::SortMerge { .. }, MapSideMode::SortSpill) => "Sort-Merge",
        (ReduceBackend::SortMerge { .. }, _) => "Sort-Merge (hash map side)",
        _ => "Hash only",
    }
}

fn shuffle_label(job: &JobSpec) -> &'static str {
    match job.shuffle {
        ShuffleMode::Pull => "Pull",
        ShuffleMode::Push { .. } => "Push / Pull",
    }
}

fn incremental_label(job: &JobSpec) -> &'static str {
    match &job.backend {
        ReduceBackend::SortMerge { snapshots, .. } if snapshots.is_empty() => "No",
        ReduceBackend::SortMerge { .. } => "No (periodic snapshot-based output only)",
        ReduceBackend::HybridHash { .. } => "No (blocking hash)",
        _ => "Fully incremental",
    }
}

fn main() {
    println!("== Table III: Hadoop vs MapReduce Online vs incremental one-pass ==\n");

    let rows = vec![
        SystemRow {
            name: "Hadoop",
            job: JobSpec::builder("hadoop")
                .aggregate(Arc::new(SumAgg))
                .preset_hadoop()
                .build()
                .unwrap(),
            in_memory: "No",
        },
        SystemRow {
            name: "MR Online",
            job: JobSpec::builder("hop")
                .aggregate(Arc::new(SumAgg))
                .preset_hop()
                .build()
                .unwrap(),
            in_memory: "No",
        },
        SystemRow {
            name: "Incremental One-pass",
            job: JobSpec::builder("onepass")
                .aggregate(Arc::new(SumAgg))
                .preset_onepass()
                .build()
                .unwrap(),
            in_memory: "Yes if data < memory; otherwise in-memory for important (hot) keys",
        },
    ];

    let mut table = Table::new(
        "Table III",
        &["", "Group By", "Shuffling", "Incremental", "In-memory"],
    );
    for r in &rows {
        table.row(&[
            r.name.to_string(),
            group_by_label(&r.job).to_string(),
            shuffle_label(&r.job).to_string(),
            incremental_label(&r.job).to_string(),
            r.in_memory.to_string(),
        ]);
    }
    println!("{}", table.to_text());

    // Cross-check against the paper's matrix.
    assert_eq!(group_by_label(&rows[0].job), "Sort-Merge");
    assert_eq!(shuffle_label(&rows[0].job), "Pull");
    assert_eq!(incremental_label(&rows[0].job), "No");
    assert_eq!(group_by_label(&rows[1].job), "Sort-Merge");
    assert!(incremental_label(&rows[1].job).contains("snapshot"));
    assert_eq!(group_by_label(&rows[2].job), "Hash only");
    assert_eq!(incremental_label(&rows[2].job), "Fully incremental");
    println!("All capability assertions hold (probed from live JobSpecs).");

    save("table3.csv", &table.to_csv());
}
