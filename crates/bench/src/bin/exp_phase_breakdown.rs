//! Per-phase CPU breakdown: sort-merge vs incremental hash, stacked.
//!
//! The paper's core cost argument (§II-B, §V) is that the sort-merge
//! path spends a large, avoidable share of its CPU sorting and
//! re-merging intermediate data, while the hash path replaces both with
//! cheap hash grouping. This experiment runs the *real* engine over
//! pre-parsed binary click logs (parsing would otherwise dilute the
//! sort share) and reports where each configuration's CPU actually
//! went, folded into the five buckets of
//! [`onepass_runtime::PhaseBreakdown`]: map (read+map+combine+hash),
//! sort, spill, merge, reduce.
//!
//! Outputs `phase_breakdown.csv` and `phase_breakdown.json` plus ASCII
//! stacked bars; `--records` (default 400k) scales the input.

use onepass_bench::{arg_usize, save};
use onepass_core::table::Table;
use onepass_groupby::SumAgg;
use onepass_runtime::{CollectOutput, Combine, Engine, JobSpec, JobSpecBuilder, PhaseBreakdown};
use onepass_workloads::{
    make_splits, page_frequency::PageFreqMapBinary, sessionization, ClickGen, ClickGenConfig,
};
use std::sync::Arc;

/// Page-frequency over binary click logs (the text variant's parse cost
/// would swamp the sort/merge signal this experiment isolates).
fn page_frequency_binary() -> JobSpecBuilder {
    JobSpec::builder("page-frequency-binary")
        .map_fn(Arc::new(PageFreqMapBinary))
        .aggregate(Arc::new(SumAgg))
        .combine_mode(Combine::On)
}

fn run(builder: JobSpecBuilder, sort_merge: bool, records: usize) -> PhaseBreakdown {
    let builder = builder.reducers(4).collect_mode(CollectOutput::Discard);
    let job = if sort_merge {
        builder.preset_hadoop()
    } else {
        builder.preset_onepass()
    }
    .build()
    .expect("valid job");
    let mut gen = ClickGen::new(ClickGenConfig::default());
    let splits = make_splits(gen.binary_records(records), records / 16);
    let report = Engine::new().run(&job, splits).expect("job runs");
    onepass_bench::append_report_jsonl(&report.to_jsonl());
    PhaseBreakdown::from_report(&report)
}

/// One ASCII stacked bar: each bucket's share of the row's total CPU.
fn stacked_bar(b: &PhaseBreakdown, width: usize) -> String {
    let total = b.total().as_secs_f64();
    if total <= 0.0 {
        return String::new();
    }
    let glyphs = ['m', 's', 'w', 'g', 'r'];
    let mut bar = String::new();
    for (share, glyph) in b.seconds().iter().zip(glyphs) {
        let cells = (share / total * width as f64).round() as usize;
        bar.extend(std::iter::repeat_n(glyph, cells));
    }
    bar
}

/// (workload, system label, job builder, sort-merge?) — one bar.
type Case = (&'static str, &'static str, fn() -> JobSpecBuilder, bool);

fn main() {
    let records = arg_usize("records", 400_000);
    println!(
        "== Phase-cost breakdown: sort-merge vs incremental hash ({records} binary clicks) ==\n"
    );

    let cases: Vec<Case> = vec![
        ("page-frequency", "sort-merge", page_frequency_binary, true),
        ("page-frequency", "inc-hash", page_frequency_binary, false),
        (
            "sessionization",
            "sort-merge",
            sessionization::job_binary,
            true,
        ),
        (
            "sessionization",
            "inc-hash",
            sessionization::job_binary,
            false,
        ),
    ];

    let mut table = Table::new(
        "Per-phase CPU (seconds)",
        &[
            "workload", "system", "map", "sort", "spill", "merge", "reduce", "total",
        ],
    );
    let mut csv = format!("workload,system,{}\n", PhaseBreakdown::csv_header());
    let mut json = String::from("[");
    let mut sort_share = std::collections::BTreeMap::new();

    for (i, (workload, system, builder, sort_merge)) in cases.iter().enumerate() {
        let b = run(builder(), *sort_merge, records);
        let s = b.seconds();
        let total = b.total().as_secs_f64();
        table.row(&[
            workload.to_string(),
            system.to_string(),
            format!("{:.2}", s[0]),
            format!("{:.2}", s[1]),
            format!("{:.2}", s[2]),
            format!("{:.2}", s[3]),
            format!("{:.2}", s[4]),
            format!("{total:.2}"),
        ]);
        csv.push_str(&format!("{workload},{system},{}\n", b.csv_row()));
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"workload\":\"{workload}\",\"system\":\"{system}\",\"breakdown\":{}}}",
            b.to_json()
        ));
        sort_share.insert((*workload, *system), (s[1] / total.max(1e-12), b));
        println!("{workload:>16} {system:<10} |{}|", stacked_bar(&b, 48));
    }
    json.push(']');
    println!("\n(m = map+combine, s = sort, w = spill write, g = merge/group, r = reduce)\n");
    println!("{}", table.to_text());

    // The paper's claim, checked against this machine's runs: map-side
    // sort is a visible share of the sort-merge bars and absent from the
    // hash bars.
    for workload in ["page-frequency", "sessionization"] {
        let (sm_share, _) = sort_share[&(workload, "sort-merge")];
        let (ih_share, _) = sort_share[&(workload, "inc-hash")];
        println!(
            "{workload}: sorting is {:.0}% of sort-merge CPU vs {:.0}% under inc-hash",
            sm_share * 100.0,
            ih_share * 100.0
        );
        assert!(
            sm_share > ih_share,
            "{workload}: sort share should shrink under the hash path"
        );
    }

    save("phase_breakdown.csv", &csv);
    save("phase_breakdown.json", &json);
}
