//! Table II — average CPU cycles in the map phase, split between the map
//! function and sorting.
//!
//! Paper (256 GB WorldCup dataset): sessionization 566 s map fn (61%) /
//! 369 s sorting (39%); per-user count 440 s (52%) / 406 s (48%).
//!
//! This experiment runs the *real* engine (Hadoop configuration:
//! sort-spill map side) over generated click logs and reports the
//! measured split. The split is a per-MB CPU property, so it holds at
//! laptop scale; `--records` (default 400k) adjusts the input size.

use onepass_bench::{arg_usize, pct, save};
use onepass_core::metrics::Phase;
use onepass_core::table::Table;
use onepass_runtime::{CollectOutput, Engine, JobSpec};
use onepass_workloads::{make_splits, per_user_count, sessionization, ClickGen, ClickGenConfig};

fn run(job: JobSpec, records: usize) -> (f64, f64) {
    let mut gen = ClickGen::new(ClickGenConfig::default());
    let splits = make_splits(gen.text_records(records), records / 16);
    let report = Engine::new().run(&job, splits).expect("job runs");
    onepass_bench::append_report_jsonl(&report.to_jsonl());
    let map_fn = report.map_profile.time(Phase::MapFn).as_secs_f64();
    let sort = report.map_profile.time(Phase::MapSort).as_secs_f64();
    (map_fn, sort)
}

fn main() {
    let records = arg_usize("records", 400_000);
    println!("== Table II: map-phase CPU split, map function vs sorting ({records} clicks) ==\n");

    let mut table = Table::new(
        "Table II (measured | paper in parentheses)",
        &[
            "workload",
            "map fn CPU",
            "sorting CPU",
            "map fn %",
            "sorting %",
        ],
    );
    let mut csv = String::from(
        "workload,map_fn_s,sort_s,map_fn_pct,sort_pct,paper_map_fn_pct,paper_sort_pct\n",
    );

    let cases: Vec<(&str, JobSpec, f64, f64)> = vec![
        (
            "sessionization",
            sessionization::job()
                .reducers(4)
                .collect_mode(CollectOutput::Discard)
                .preset_hadoop()
                .build()
                .unwrap(),
            0.61,
            0.39,
        ),
        (
            "per-user-count",
            per_user_count::job()
                .reducers(4)
                .collect_mode(CollectOutput::Discard)
                .preset_hadoop()
                .build()
                .unwrap(),
            0.52,
            0.48,
        ),
    ];

    for (name, job, paper_map, paper_sort) in cases {
        let (map_fn, sort) = run(job, records);
        let total = map_fn + sort;
        let fm = map_fn / total;
        let fs = sort / total;
        table.row(&[
            name.to_string(),
            format!("{map_fn:.2} s"),
            format!("{sort:.2} s"),
            format!("{} ({})", pct(fm), pct(paper_map)),
            format!("{} ({})", pct(fs), pct(paper_sort)),
        ]);
        csv.push_str(&format!(
            "{name},{map_fn:.3},{sort:.3},{:.1},{:.1},{:.0},{:.0}\n",
            fm * 100.0,
            fs * 100.0,
            paper_map * 100.0,
            paper_sort * 100.0
        ));
    }

    println!("{}", table.to_text());
    println!(
        "Conclusion check (§III-B.3): sorting is a substantial share of map-phase \
         CPU, and a larger share for per-user-count (whose map fn is trivial) \
         than for sessionization."
    );
    save("table2.csv", &csv);
}
