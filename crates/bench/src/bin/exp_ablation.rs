//! Ablations of the Hadoop-side design knobs the study holds fixed —
//! how sensitive are the paper's conclusions to them?
//!
//! 1. **Merge factor F** (`io.sort.factor`): smaller F ⇒ more multi-pass
//!    rewrites ⇒ more reduce-side I/O and a longer merge valley.
//! 2. **Reducer shuffle buffer**: smaller buffers ⇒ more, smaller runs ⇒
//!    more merge work.
//!
//! Both sweeps run sessionization on the simulated cluster; the hash
//! one-pass system is shown alongside as the knob-free alternative (its
//! numbers do not move, because it has no merge at all).

use onepass_bench::{arg_f64, save};
use onepass_core::table::Table;
use onepass_simcluster::{
    run_sim_job, ClusterSpec, SimJobSpec, StorageConfig, SystemType, WorkloadProfile,
};

fn spec(scale: f64) -> SimJobSpec {
    let mut s = SimJobSpec::new(
        SystemType::StockHadoop,
        ClusterSpec::paper_cluster(StorageConfig::SingleHdd),
        WorkloadProfile::sessionization().scaled(scale),
    );
    s.reduce_mem_mb *= scale; // keep the runs-per-reducer regime
    s
}

fn main() {
    let scale = arg_f64("scale", 0.25);
    println!(
        "== Ablations: merge factor F and reducer buffer (sessionization, scale {scale}) ==\n"
    );

    let mut csv = String::from("knob,value,completion_min,merge_rewrite_gb,spill_gb\n");

    let mut t1 = Table::new(
        "merge factor F sweep (stock Hadoop)",
        &[
            "F",
            "completion",
            "merge rewrites GB",
            "total reduce spill GB",
        ],
    );
    for f in [2usize, 5, 10, 20, 100] {
        let mut s = spec(scale);
        s.merge_factor = f;
        let r = run_sim_job(s);
        onepass_bench::append_report_jsonl(&r.to_jsonl());
        t1.row(&[
            f.to_string(),
            format!("{:.0} min", r.completion_secs / 60.0),
            format!("{:.1}", r.merge_written_mb / 1024.0),
            format!("{:.1}", r.reduce_spill_total_mb() / 1024.0),
        ]);
        csv.push_str(&format!(
            "merge_factor,{f},{:.1},{:.2},{:.2}\n",
            r.completion_secs / 60.0,
            r.merge_written_mb / 1024.0,
            r.reduce_spill_total_mb() / 1024.0
        ));
    }
    println!("{}", t1.to_text());

    let mut t2 = Table::new(
        "reducer buffer sweep (stock Hadoop)",
        &[
            "buffer MB",
            "completion",
            "merge rewrites GB",
            "total reduce spill GB",
        ],
    );
    for frac in [0.25, 0.5, 1.0, 2.0] {
        let mut s = spec(scale);
        s.reduce_mem_mb *= frac;
        let buffer_mb = s.reduce_mem_mb;
        let r = run_sim_job(s);
        onepass_bench::append_report_jsonl(&r.to_jsonl());
        t2.row(&[
            format!("{buffer_mb:.0}"),
            format!("{:.0} min", r.completion_secs / 60.0),
            format!("{:.1}", r.merge_written_mb / 1024.0),
            format!("{:.1}", r.reduce_spill_total_mb() / 1024.0),
        ]);
        csv.push_str(&format!(
            "reduce_mem_mb,{buffer_mb:.0},{:.1},{:.2},{:.2}\n",
            r.completion_secs / 60.0,
            r.merge_written_mb / 1024.0,
            r.reduce_spill_total_mb() / 1024.0
        ));
    }
    println!("{}", t2.to_text());

    // The knob-free alternative.
    let mut s = spec(scale);
    s.system = SystemType::HashOnePass;
    let hash = run_sim_job(s);
    onepass_bench::append_report_jsonl(&hash.to_jsonl());
    println!(
        "hash one-pass, same workload: {:.0} min, 0.0 GB merge rewrites, {:.1} GB \
         cold spill — no F, no buffer tuning, nothing to ablate (§IV's point).",
        hash.completion_secs / 60.0,
        hash.spill_written_mb / 1024.0
    );
    csv.push_str(&format!(
        "hash_one_pass,-,{:.1},0.0,{:.2}\n",
        hash.completion_secs / 60.0,
        hash.spill_written_mb / 1024.0
    ));
    save("ablation.csv", &csv);
}
