//! Multi-tenant serving at scale: one pool, a thousand tenants.
//!
//! Boots the in-process serving core (`runtime::serve`) with the
//! standard query catalog, admits `--tenants` concurrent subscribers
//! assigned to queries by a Zipf draw (the realistic case: a few hot
//! queries, a long tail), and streams one shared synthetic feed — clicks
//! plus documents — through all of them under a single job-wide memory
//! governor pool. Every tenant runs its own plan instance; the pool's
//! spill policy arbitrates shed pressure *across* tenants.
//!
//! Reported:
//!
//! * **TTFA** (time to first answer) per tenant, p50/p99, measured
//!   client-side from subscription to the first early/final answer;
//! * **Jain's fairness index** over per-tenant TTFA — 1.0 means every
//!   tenant saw its first answer equally fast, the fair-share admission
//!   story in one number;
//! * **byte-identity**: each tenant's finals are compared against a solo
//!   (ungoverned, unmultiplexed) run of its query over the same records.
//!   Any divergence fails the experiment — multiplexing must never
//!   change answers.
//!
//! Flags: `--tenants N` (default 1000), `--records N` clicks (5000),
//! `--doc-records N` (records/100+1), `--batch B` (512), `--pool-mb MB`
//! (64), `--shards S` (4), `--policy NAME` (largest-consumer),
//! `--zipf S` (1.0).

use std::sync::Arc;
use std::time::{Duration, Instant};

use onepass_bench::{arg, arg_f64, arg_usize, save};
use onepass_core::config::{fmt_bytes, fmt_secs};
use onepass_core::governor::policy_by_name;
use onepass_runtime::serve::{
    dump_final_answers, DlqConfig, ServeConfig, Server, TenantEvent, TenantSession,
};
use onepass_runtime::stream::SessionOptions;
use onepass_workloads::serving::{
    ingest_family, standard_catalog, CatalogConfig, CLICKS_INGEST, DOCS_INGEST,
};
use onepass_workloads::tenantgen::{assign_tenants, TenantGenConfig};
use onepass_workloads::{ClickGen, ClickGenConfig, DocGen, DocGenConfig};

/// What one tenant's collector thread brings home.
struct Outcome {
    query: String,
    ttfa: Option<Duration>,
    dump: String,
    error: Option<String>,
}

fn main() {
    let tenants = arg_usize("tenants", 1000);
    let records = arg_usize("records", 5_000);
    let doc_records = arg_usize("doc-records", records / 100 + 1);
    let batch = arg_usize("batch", 512).max(1);
    let pool_mb = arg_usize("pool-mb", 64);
    let shards = arg_usize("shards", 4).max(1);
    let policy_name = arg("policy").unwrap_or_else(|| "largest-consumer".into());
    let zipf = arg_f64("zipf", 1.0);

    let catalog = standard_catalog(CatalogConfig::default());
    let clicks = ClickGen::new(ClickGenConfig::default()).text_records(records);
    let docs = DocGen::new(DocGenConfig::default()).records(doc_records);

    println!("== exp_serving: {tenants} tenants over one {pool_mb} MiB pool ==");
    println!(
        "   {} click + {} doc records, batch {batch}, {shards} shard(s), policy {policy_name}, zipf s={zipf}\n",
        clicks.len(),
        docs.len()
    );

    let mut config = ServeConfig {
        pool_bytes: pool_mb << 20,
        policy: policy_by_name(&policy_name).expect("known --policy"),
        shards,
        ..ServeConfig::default()
    };
    config.admission.max_tenants = tenants.max(config.admission.max_tenants);
    let server = Arc::new(Server::start(config, catalog.clone(), None).expect("start server"));

    let specs = assign_tenants(
        tenants,
        &catalog.names(),
        &TenantGenConfig {
            zipf_s: zipf,
            ..TenantGenConfig::default()
        },
    );

    // Subscribe everyone, with one lightweight collector thread per
    // tenant stamping the arrival of its first answer.
    let t_subscribe = Instant::now();
    let collectors: Vec<std::thread::JoinHandle<Outcome>> = specs
        .iter()
        .map(|spec| {
            let handle = server
                .subscribe(&spec.id, &spec.query)
                .expect("admit tenant");
            let query = spec.query.clone();
            let subscribed = Instant::now();
            std::thread::Builder::new()
                .name(format!("collect-{}", spec.id))
                .stack_size(256 * 1024)
                .spawn(move || {
                    let mut ttfa = None;
                    loop {
                        match handle.events().recv() {
                            Ok(TenantEvent::Early(a)) => {
                                if ttfa.is_none() && !a.is_empty() {
                                    ttfa = Some(subscribed.elapsed());
                                }
                            }
                            Ok(TenantEvent::Final(close)) => {
                                if ttfa.is_none() && !close.answers.is_empty() {
                                    ttfa = Some(subscribed.elapsed());
                                }
                                return Outcome {
                                    query,
                                    ttfa,
                                    dump: dump_final_answers(&close.answers),
                                    error: None,
                                };
                            }
                            Ok(TenantEvent::Error(e)) => {
                                return Outcome {
                                    query,
                                    ttfa,
                                    dump: String::new(),
                                    error: Some(e),
                                };
                            }
                            Err(_) => {
                                return Outcome {
                                    query,
                                    ttfa,
                                    dump: String::new(),
                                    error: Some("server went away before close".into()),
                                };
                            }
                        }
                    }
                })
                .expect("spawn collector")
        })
        .collect();
    println!(
        "subscribed {} tenant(s) in {}",
        server.active_tenants(),
        fmt_secs(t_subscribe.elapsed().as_secs_f64())
    );

    // One shared stream, interleaved proportionally.
    let t_feed = Instant::now();
    let mut docs_fed = 0usize;
    for (i, chunk) in clicks.chunks(batch).enumerate() {
        server
            .feed(CLICKS_INGEST, chunk.to_vec())
            .expect("feed clicks");
        let due = docs.len() * ((i + 1) * batch).min(clicks.len()) / clicks.len().max(1);
        while docs_fed < due {
            let n = batch.min(due - docs_fed);
            server
                .feed(DOCS_INGEST, docs[docs_fed..docs_fed + n].to_vec())
                .expect("feed docs");
            docs_fed += n;
        }
    }
    while docs_fed < docs.len() {
        let n = batch.min(docs.len() - docs_fed);
        server
            .feed(DOCS_INGEST, docs[docs_fed..docs_fed + n].to_vec())
            .expect("feed docs");
        docs_fed += n;
    }
    server.close().expect("close server");
    let wall = t_feed.elapsed();

    let outcomes: Vec<Outcome> = collectors
        .into_iter()
        .map(|c| c.join().expect("collector thread"))
        .collect();

    // Solo references, one per distinct query over the same records.
    let mut diverged = 0usize;
    let mut failed = 0usize;
    for query in catalog.names() {
        let of_query: Vec<&Outcome> = outcomes.iter().filter(|o| o.query == query).collect();
        if of_query.is_empty() {
            continue;
        }
        let reference = solo_dump(
            &catalog,
            &query,
            if ingest_family(&query) == DOCS_INGEST {
                &docs
            } else {
                &clicks
            },
        );
        let bad = of_query
            .iter()
            .filter(|o| o.error.is_none() && o.dump != reference)
            .count();
        let errs = of_query.iter().filter(|o| o.error.is_some()).count();
        diverged += bad;
        failed += errs;
        println!(
            "{query:<16} {:>5} tenant(s)  identical to solo: {}",
            of_query.len(),
            if bad == 0 && errs == 0 {
                "yes".to_string()
            } else {
                format!("NO ({bad} diverged, {errs} failed)")
            }
        );
    }

    let mut ttfas: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.ttfa.map(|d| d.as_secs_f64()))
        .collect();
    ttfas.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| ttfas[((ttfas.len() - 1) as f64 * p).round() as usize];
    let jain = {
        let sum: f64 = ttfas.iter().sum();
        let sq: f64 = ttfas.iter().map(|x| x * x).sum();
        (sum * sum) / (ttfas.len() as f64 * sq).max(f64::MIN_POSITIVE)
    };
    let counters = server.admission_counters();

    println!();
    println!(
        "ingest wall:       {} ({} records through every matching tenant)",
        fmt_secs(wall.as_secs_f64()),
        server.ingest_records()
    );
    println!(
        "ttfa:              p50 {} p99 {} over {} tenant(s)",
        fmt_secs(pct(0.50)),
        fmt_secs(pct(0.99)),
        ttfas.len()
    );
    println!("jain fairness:     {jain:.3} (1.0 = perfectly even)");
    println!(
        "admission:         {} admitted, {} queued, {} rejected; pool {}",
        counters.admitted,
        counters.queued,
        counters.rejected,
        fmt_bytes((pool_mb << 20) as u64)
    );

    let mut csv = String::from("query,tenants,ttfa_p50_s,ttfa_p99_s,jain,identical\n");
    for query in catalog.names() {
        let of_query: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.query == query)
            .filter_map(|o| o.ttfa.map(|d| d.as_secs_f64()))
            .collect();
        if of_query.is_empty() {
            continue;
        }
        let mut qs = of_query.clone();
        qs.sort_by(|a, b| a.total_cmp(b));
        let qp = |p: f64| qs[((qs.len() - 1) as f64 * p).round() as usize];
        csv.push_str(&format!(
            "{query},{},{:.6},{:.6},{jain:.4},{}\n",
            qs.len(),
            qp(0.50),
            qp(0.99),
            (diverged == 0) as u8
        ));
    }
    save("serving.csv", &csv);

    if diverged > 0 || failed > 0 {
        eprintln!("FAILED: {diverged} diverged, {failed} errored");
        std::process::exit(1);
    }
}

/// A solo (ungoverned, unmultiplexed) run of `query` over `records` —
/// the reference every served tenant must match byte-for-byte.
fn solo_dump(
    catalog: &onepass_runtime::serve::QueryCatalog,
    query: &str,
    records: &[Vec<u8>],
) -> String {
    let compiled = catalog.resolve(query).expect("known query");
    let mut session = TenantSession::open(
        "solo",
        query,
        &compiled,
        &SessionOptions::default(),
        DlqConfig::default(),
    )
    .expect("open solo session");
    for chunk in records.chunks(512) {
        session.feed(chunk).expect("solo feed");
    }
    dump_final_answers(&session.close().expect("solo close").answers)
}
