//! Fig. 4 — MapReduce Online (HOP) under the sessionization workload:
//! (a) CPU utilization, (b) CPU iowait.
//!
//! Expected shape (§III-D): the mid-job utilization dip and iowait spike
//! persist — pipelining does not remove the blocking multi-pass merge —
//! and total running time is *longer* than stock Hadoop (finer-grained
//! transfers increase network cost; some sorting moves to reducers).

use onepass_bench::{arg_f64, ascii_chart, save, svg_chart};
use onepass_simcluster::{
    run_sim_job, ClusterSpec, SimJobSpec, StorageConfig, SystemType, WorkloadProfile,
};

fn main() {
    let scale = arg_f64("scale", 1.0);
    println!("== Fig. 4: MapReduce Online, sessionization (scale {scale}) ==\n");

    let cluster = ClusterSpec::paper_cluster(StorageConfig::SingleHdd);
    let hop = run_sim_job(SimJobSpec::new(
        SystemType::Hop,
        cluster.clone(),
        WorkloadProfile::sessionization().scaled(scale),
    ));
    onepass_bench::append_report_jsonl(&hop.to_jsonl());
    let stock = run_sim_job(SimJobSpec::new(
        SystemType::StockHadoop,
        cluster,
        WorkloadProfile::sessionization().scaled(scale),
    ));
    onepass_bench::append_report_jsonl(&stock.to_jsonl());

    println!("-- (a) CPU utilization --");
    println!("{}", ascii_chart(&hop.series.cpu_util_pct, 90, 8));
    save("fig4a_cpu.csv", &hop.series.cpu_util_pct.to_csv());
    save(
        "fig4a_cpu.svg",
        &svg_chart(
            "Fig 4(a) CPU utilization — MapReduce Online",
            "percent",
            &[&hop.series.cpu_util_pct],
            760,
            300,
        ),
    );

    println!("-- (b) CPU iowait --");
    println!("{}", ascii_chart(&hop.series.iowait_pct, 90, 8));
    save("fig4b_iowait.csv", &hop.series.iowait_pct.to_csv());
    save(
        "fig4b_iowait.svg",
        &svg_chart(
            "Fig 4(b) CPU iowait — MapReduce Online",
            "percent",
            &[&hop.series.iowait_pct],
            760,
            300,
        ),
    );

    println!(
        "HOP completion {:.0} min vs stock {:.0} min — HOP is slower, as the paper \
         observed (§III-D).",
        hop.completion_secs / 60.0,
        stock.completion_secs / 60.0
    );
    println!(
        "Snapshots taken: {} (25/50/75%); blocking check: utilization dips to \
         {:.0}% late in the job with iowait {:.0}%.",
        hop.snapshots,
        hop.mean_cpu_util(0.6, 0.8),
        hop.mean_iowait(0.6, 0.8)
    );
}
