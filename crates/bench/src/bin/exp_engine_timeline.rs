//! Real-engine task timeline — the laptop-scale analogue of Fig. 2(a),
//! built from the engine's actual task spans rather than the simulator.
//!
//! Renders a Gantt-style chart of map tasks and reduce tasks for the
//! per-user-count workload under the Hadoop configuration (whose many
//! small map segments trip the reducer's segment-count merge threshold,
//! §III-B.4), and the same job under the one-pass configuration — whose
//! reducers hold ready count states and finish almost immediately after
//! the last map. Sessionization would not show this contrast: its reduce
//! function is holistic, so the at-finish sessionize pass dominates the
//! tail under either backend.

use onepass_bench::{append_report_jsonl, arg, arg_usize, save};
use onepass_core::trace::{chrome_trace_json, Tracer};
use onepass_runtime::driver::EngineConfig;
use onepass_runtime::report::{JobReport, TaskKind};
use onepass_runtime::{CollectOutput, Engine, JobSpec};
use onepass_workloads::{make_splits, per_user_count, ClickGen, ClickGenConfig};

fn gantt(report: &JobReport, width: usize) -> String {
    let wall = report.wall.as_secs_f64().max(1e-9);
    let mut spans: Vec<_> = report.task_spans.iter().collect();
    spans.sort_by(|a, b| {
        (a.kind == TaskKind::Reduce)
            .cmp(&(b.kind == TaskKind::Reduce))
            .then(a.start.cmp(&b.start))
            .then(a.id.cmp(&b.id))
    });
    let mut out = String::new();
    for s in spans {
        let from = ((s.start.as_secs_f64() / wall) * width as f64) as usize;
        let to = (((s.end.as_secs_f64() / wall) * width as f64) as usize).clamp(from + 1, width);
        let (label, ch) = match s.kind {
            TaskKind::Map => (format!("map {:>3}", s.id), '='),
            TaskKind::Reduce => (format!("red {:>3}", s.id), '#'),
        };
        out.push_str(&format!(
            "{label} |{}{}{}|\n",
            " ".repeat(from),
            ch.to_string().repeat(to - from),
            " ".repeat(width - to)
        ));
    }
    out.push_str(&format!("        0{:>width$.3}s\n", wall, width = width));
    out
}

fn csv(report: &JobReport) -> String {
    let mut s = String::from("kind,id,start_s,end_s\n");
    for span in &report.task_spans {
        s.push_str(&format!(
            "{},{},{:.6},{:.6}\n",
            match span.kind {
                TaskKind::Map => "map",
                TaskKind::Reduce => "reduce",
            },
            span.id,
            span.start.as_secs_f64(),
            span.end.as_secs_f64()
        ));
    }
    s
}

fn run(job: JobSpec, records: usize, map_tasks: usize, tracer: Tracer) -> JobReport {
    let mut gen = ClickGen::new(ClickGenConfig::default());
    let splits = make_splits(gen.text_records(records), (records / map_tasks).max(1));
    let config = EngineConfig::builder().tracer(tracer).build();
    let report = Engine::with_config(config)
        .run(&job, splits)
        .expect("job runs");
    append_report_jsonl(&report.to_jsonl());
    report
}

fn main() {
    let records = arg_usize("records", 300_000);
    // Gantt rows only stay readable for ~a dozen maps; the CSV records
    // the full picture. Use 12 for the chart, but the tail comparison
    // below re-runs with 1500 tasks (above the reducers' segment-count
    // merge threshold, so Hadoop actually merges).
    println!("== Real-engine task timeline (per-user-count, {records} clicks) ==\n");

    let chart_job = |onepass: bool| {
        let b = per_user_count::job()
            .reducers(3)
            .collect_mode(CollectOutput::Discard)
            .reduce_budget_bytes(4 * 1024 * 1024);
        if onepass {
            b.preset_onepass()
        } else {
            b.preset_hadoop()
        }
        .build()
        .unwrap()
    };
    // With --trace-out, the Hadoop chart run also records a Chrome
    // trace: the file shows Fig. 2a's lane structure in Perfetto.
    let trace_out = arg("trace-out");
    let tracer = if trace_out.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let hadoop = run(chart_job(false), records, 12, tracer.clone());
    if let Some(path) = &trace_out {
        match std::fs::write(path, chrome_trace_json(&tracer.drain())) {
            Ok(()) => println!("  [wrote Chrome trace to {path}]"),
            Err(e) => eprintln!("  [could not write {path}: {e}]"),
        }
    }
    println!("-- stock Hadoop configuration (12 map tasks, chart view) --");
    println!("{}", gantt(&hadoop, 80));
    save("engine_timeline_hadoop.csv", &csv(&hadoop));

    let onepass = run(chart_job(true), records, 12, Tracer::disabled());
    println!("-- one-pass configuration (12 map tasks, chart view) --");
    println!("{}", gantt(&onepass, 80));
    save("engine_timeline_onepass.csv", &csv(&onepass));

    // Tail measurement at realistic task counts.
    let hadoop = run(chart_job(false), records, 1500, Tracer::disabled());
    let onepass = run(chart_job(true), records, 1500, Tracer::disabled());

    // Reduce tail: how long reducers keep running after the last map.
    let tail = |r: &JobReport| {
        let last_map = r
            .task_spans
            .iter()
            .filter(|s| s.kind == TaskKind::Map)
            .map(|s| s.end)
            .max()
            .unwrap_or_default();
        let last_reduce = r
            .task_spans
            .iter()
            .filter(|s| s.kind == TaskKind::Reduce)
            .map(|s| s.end)
            .max()
            .unwrap_or_default();
        last_reduce.saturating_sub(last_map).as_secs_f64()
    };
    println!(
        "reduce tail after last map (1500 map tasks): hadoop {:.3}s vs one-pass \
         {:.3}s — Hadoop's reducers still face the merge of their spilled \
         segment runs after input ends, while the incremental hash holds \
         finished counts (Fig. 2a's structure at engine scale).",
        tail(&hadoop),
        tail(&onepass)
    );
}
